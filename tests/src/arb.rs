//! Shared random-case generators for the engine property suites.
//!
//! Both the whole-frame engine suite (`compiled_engine_props.rs`) and the
//! cone-architecture suite (`tiled_engine_props.rs`) draw random stencil
//! patterns, borders and frames from here, so the two suites exercise the
//! same expression space.

use crate::prop::Rng;

use isl_hls::ir::{BinaryOp, Expr, FieldId, FieldKind, Offset, StencilPattern, UnaryOp};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

/// Random expression over every op kind, any declared field, bounded depth
/// and radius ≤ 2. Values may blow up under iteration — irrelevant for the
/// equivalence properties, since Inf/NaN must propagate identically through
/// both engines.
pub fn arb_expr(rng: &mut Rng, fields: &[FieldId], n_params: usize, depth: u32) -> Expr {
    let leaf = |rng: &mut Rng| {
        match rng.weighted(&[4, 2, if n_params > 0 { 2 } else { 0 }]) {
            0 => {
                let f = fields[rng.usize_in(0, fields.len() - 1)];
                Expr::input(f, Offset::d2(rng.i32_in(-2, 2), rng.i32_in(-2, 2)))
            }
            1 => Expr::constant((rng.f64_in(-2.0, 2.0) * 8.0).round() / 8.0),
            _ => Expr::param(isl_hls::ir::ParamId::new(
                rng.usize_in(0, n_params - 1) as u16
            )),
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.weighted(&[3, 5, 2, 2]) {
        0 => leaf(rng),
        1 => {
            let op = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Min,
                BinaryOp::Max,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
            ][rng.usize_in(0, 9)];
            let lhs = arb_expr(rng, fields, n_params, depth - 1);
            let rhs = arb_expr(rng, fields, n_params, depth - 1);
            Expr::binary(op, lhs, rhs)
        }
        2 => {
            let op = [UnaryOp::Neg, UnaryOp::Abs, UnaryOp::Sqrt][rng.usize_in(0, 2)];
            Expr::unary(op, arb_expr(rng, fields, n_params, depth - 1))
        }
        _ => {
            let c = arb_expr(rng, fields, n_params, depth - 1);
            let t = arb_expr(rng, fields, n_params, depth - 1);
            let e = arb_expr(rng, fields, n_params, depth - 1);
            Expr::select(c, t, e)
        }
    }
}

/// Random pattern: 1–3 fields (first dynamic, rest mixed), 0–2 parameters,
/// one random update per dynamic field.
pub fn arb_pattern(rng: &mut Rng) -> StencilPattern {
    let mut p = StencilPattern::new(2).with_name("vmrand");
    let n_fields = rng.usize_in(1, 3);
    let mut ids = Vec::new();
    for i in 0..n_fields {
        let kind = if i == 0 || rng.bool() {
            FieldKind::Dynamic
        } else {
            FieldKind::Static
        };
        ids.push((p.add_field(format!("f{i}"), kind), kind));
    }
    let n_params = rng.usize_in(0, 2);
    for j in 0..n_params {
        p.add_param(format!("p{j}"), (rng.f64_in(-1.0, 1.0) * 8.0).round() / 8.0);
    }
    let all_ids: Vec<FieldId> = ids.iter().map(|(id, _)| *id).collect();
    for (id, kind) in &ids {
        if *kind == FieldKind::Dynamic {
            let depth = rng.u32_in(1, 4);
            let e = arb_expr(rng, &all_ids, n_params, depth);
            p.set_update(*id, e).expect("dynamic field");
        }
    }
    p
}

/// Any border mode (incl. wrap — golden-only).
pub fn arb_border(rng: &mut Rng) -> BorderMode {
    match rng.weighted(&[1, 1, 1, 1]) {
        0 => BorderMode::Clamp,
        1 => BorderMode::Mirror,
        2 => BorderMode::Wrap,
        _ => BorderMode::Constant(rng.f64_in(-1.0, 1.0)),
    }
}

/// A *local* border mode — what the tiled executor accepts (no wrap).
pub fn arb_local_border(rng: &mut Rng) -> BorderMode {
    match rng.weighted(&[1, 1, 1]) {
        0 => BorderMode::Clamp,
        1 => BorderMode::Mirror,
        _ => BorderMode::Constant(rng.f64_in(-1.0, 1.0)),
    }
}

/// A random output window: square, rectangular or a 1-element degenerate.
pub fn arb_window(rng: &mut Rng) -> Window {
    match rng.weighted(&[3, 3, 1]) {
        0 => Window::square(rng.u32_in(1, 6)),
        1 => Window::rect(rng.u32_in(1, 7), rng.u32_in(1, 5)),
        _ => Window::square(1),
    }
}

/// One noise frame per pattern field.
pub fn frames_for(p: &StencilPattern, w: usize, h: usize, seed: u64) -> FrameSet {
    FrameSet::from_frames(
        p.fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed ^ (i as u64) << 32))
            .collect(),
    )
    .expect("congruent")
}

/// Bit-for-bit frame-set equality with a diagnostic on the first mismatch.
pub fn assert_bitwise_eq(a: &FrameSet, b: &FrameSet, what: &str) {
    assert_eq!(a.len(), b.len());
    for fi in 0..a.len() {
        for (i, (x, y)) in a
            .frame(fi)
            .as_slice()
            .iter()
            .zip(b.frame(fi).as_slice())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: field {fi} slot {i}: {x} ({:#x}) vs {y} ({:#x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }
}
