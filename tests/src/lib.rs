//! Integration tests for the ISL HLS flow live in the `tests/` directory of this package.
