//! Integration tests for the ISL HLS flow live in the `tests/` directory of
//! this package; this library hosts their shared support code.

#![forbid(unsafe_code)]

pub mod arb;
pub mod prop;
