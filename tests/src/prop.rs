//! A minimal deterministic property-testing harness.
//!
//! The repository builds fully offline, so the property suites cannot use
//! `proptest`. This module provides the piece that matters for these tests:
//! running a closure over many reproducibly-seeded random cases, with the
//! failing case's seed reported on panic so a failure replays exactly.
//! (There is no shrinking — generators here are small enough that the raw
//! counterexample is readable.)

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub use isl_hls::sim::synthetic::SplitMix64;

/// A deterministic case generator wrapping [`SplitMix64`].
#[derive(Debug, Clone)]
pub struct Rng {
    inner: SplitMix64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: SplitMix64::new(seed),
        }
    }

    /// Next raw value.
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.next_f64()
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi);
        lo + (self.u64() % (i64::from(hi) - i64::from(lo) + 1) as u64) as i32
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi);
        lo + (self.u64() % (hi - lo + 1) as u64) as usize
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi);
        lo + (self.u64() % (u64::from(hi) - u64::from(lo) + 1)) as u32
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// Index drawn with the given relative weights (proptest's
    /// `prop_oneof![w => ...]`).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut roll = self.u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            let w = u64::from(w);
            if roll < w {
                return i;
            }
            roll -= w;
        }
        unreachable!("roll bounded by total weight")
    }
}

/// Run `f` over `cases` independently-seeded random cases. On failure the
/// case index and seed are printed before the panic propagates, so the run
/// reproduces with `Rng::new(seed)`.
pub fn check(name: &str, cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = 0x15C1_5EED_u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::new(seed);
        if let Err(e) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("property `{name}` failed at case {case}/{cases} (seed {seed:#x})");
            resume_unwind(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_in_range() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.i32_in(-3, 5);
            assert!((-3..=5).contains(&v));
            let u = r.usize_in(2, 2);
            assert_eq!(u, 2);
            let x = r.f64_in(0.25, 0.5);
            assert!((0.25..0.5).contains(&x));
            let w = r.weighted(&[3, 1, 1]);
            assert!(w < 3);
        }
        // Full-width ranges must not overflow intermediate arithmetic.
        let big = r.u32_in(u32::MAX - 1, u32::MAX);
        assert!(big >= u32::MAX - 1);
    }

    #[test]
    fn check_runs_every_case() {
        let mut n = 0;
        check("counter", 17, |_| n += 1);
        assert_eq!(n, 17);
    }
}
