// fuzz: width=31 frac=20 border=constant:0.25 window=4x2 depth=2 threads=4 frames=10x8 iters=5 seed=0x22
#pragma isl iterations 5
void coupled(const float a[H][W], float a_out[H][W], const float b[H][W], float b_out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float t0 = fminf(a[y][x - 1], b[y - 1][x]);
            float t1 = fmaxf(a[y][x + 1], b[y + 1][x]);
            a_out[y][x] = (t0 + b[y][x] * 0.5f) / 2.0f;
            b_out[y][x] = (t1 - a[y][x] * 0.25f) / 4.0f;
        }
    }
}
