// fuzz: width=8 frac=5 border=mirror window=3x4 depth=3 threads=2 frames=9x7 iters=4 seed=0x11
#pragma isl iterations 4
void blur(const float a[H][W], float a_out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            a_out[y][x] = (a[y][x] + a[y][x - 1] + a[y - 1][x] + a[y][x + 1] + a[y + 1][x]) / 8.0f;
        }
    }
}
