// fuzz: width=63 frac=31 border=wrap window=2x2 depth=1 threads=1 frames=5x4 iters=5 seed=0x73dd883e2b65c92e
// Found by the differential fuzzer (seed 0x15cf022, iteration 17): at
// width 63 the raw response words exceed f64's 53-bit mantissa, and
// verify_vectors used to dequantise stimuli to f64 before re-evaluating —
// certifying golden vectors against a rounded shadow of themselves. The
// checker now evaluates in the raw-word domain (eval_fixed_raw).
#pragma isl iterations 4
void fuzzed(const float a[H][W], float a_out[H][W], const float g[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            a_out[y][x] = ((a[y][x] + 1.0f) * (1.0f + a[y + 1][x - 1]));
        }
    }
}
