// fuzz: width=64 frac=32 border=clamp window=5x3 depth=4 threads=4 frames=12x9 iters=6 seed=0x44
#pragma isl iterations 6
#pragma isl param tau 0.25
void guided(const float a[H][W], float a_out[H][W], const float g[H][W], float tau) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float t0 = a[y][x] + tau * (g[y][x] - a[y][x]);
            float t1 = (a[y - 1][x] + a[y + 1][x] + a[y][x - 1] + a[y][x + 1]) / 4.0f;
            a_out[y][x] = t0 * 0.5f + t1 * 0.5f;
        }
    }
}
