// fuzz: width=18 frac=12 border=mirror window=2x5 depth=3 threads=2 frames=8x10 iters=4 seed=0x55
#pragma isl iterations 4
void clampdiff(const float a[H][W], float a_out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float d = a[y][x + 1] - a[y][x - 1];
            float m = fabsf(d) / (fabsf(a[y][x]) + 0.5f);
            if (m < 0.125f) {
                d = 0.0f;
            }
            a_out[y][x] = ((d > 0.0f) ? a[y][x] + sqrtf(fabsf(d)) : a[y][x] - m) * 0.5f;
        }
    }
}
