// crash fixture: a 60x60x60 constant loop nest must hit the step budget
void k(const float a[N], float a_out[N]) {
    for (int x = 0; x < N; x++) {
        float t = a[x];
        for (int i = 0; i < 60; i++) {
            for (int j = 0; j < 60; j++) {
                for (int m = 0; m < 60; m++) {
                    t = t + 1.0f;
                }
            }
        }
        a_out[x] = t;
    }
}
