// crash fixture: a subscript past i32 must be OffsetTooLarge, not a silent truncation
void k(const float a[N], float a_out[N]) {
    for (int x = 0; x < N; x++) {
        a_out[x] = a[x + 4294967296];
    }
}
