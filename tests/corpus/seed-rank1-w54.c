// fuzz: width=54 frac=30 border=wrap window=4x1 depth=2 threads=1 frames=11x1 iters=5 seed=0x33
#pragma isl iterations 5
void smooth1d(const float a[N], float a_out[N]) {
    for (int x = 0; x < N; x++) {
        a_out[x] = (a[x - 2] + 2.0f * a[x - 1] + 3.0f * a[x] + 2.0f * a[x + 1] + a[x + 2]) / 16.0f;
    }
}
