//! Fixed-point numerics: the VHDL data path (modeled bit-accurately by
//! `isl_fpga::eval_fixed`) must track the `f64` reference within the
//! tolerance the generated testbenches assert, for every built-in algorithm.

use isl_hls::algorithms::all;
use isl_hls::fpga::eval_fixed;
use isl_hls::ir::{FieldId, Point};
use isl_hls::prelude::*;

fn stimulus(f: FieldId, p: Point) -> f64 {
    let i = (p.x + 7 * p.y + 13 * f.index() as i32).rem_euclid(23);
    i as f64 / 16.0 // non-negative, well inside Q8.10 range
}

#[test]
fn fixed_point_tracks_f64_within_tb_tolerance() {
    let fmt = FixedFormat::default();
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let depth = flow.iterations().min(2);
        let cone = flow.build_cone(Window::square(2), depth).unwrap();
        let params = algo.default_params();
        let fixed = eval_fixed(&cone, fmt, stimulus, &params);
        let float = cone.eval(stimulus, &params);
        for ((f1, p1, a), (f2, p2, b)) in fixed.iter().zip(float.iter()) {
            assert_eq!((f1, p1), (f2, p2));
            // The testbench tolerance is 16 LSBs; stay within it except for
            // steep nonlinearities (divide chains amplify one LSB of the
            // denominator), where we allow a small relative slack.
            let tol = 16.0 * fmt.resolution() + 0.01 * b.abs().max(1.0) * 0.5;
            assert!(
                (a - b).abs() <= tol,
                "{} at {p1}: fixed {a} vs f64 {b} (tol {tol})",
                algo.name
            );
        }
    }
}

#[test]
fn life_is_bit_exact_in_fixed_point() {
    // Integer-valued data and half-integer thresholds: quantisation must not
    // flip a single cell.
    let algo = isl_hls::algorithms::game_of_life();
    let flow = IslFlow::from_algorithm(&algo).unwrap();
    let cone = flow.build_cone(Window::square(3), 2).unwrap();
    let board = |_f: FieldId, p: Point| f64::from((p.x * 3 + p.y * 5).rem_euclid(4) == 0);
    let fixed = eval_fixed(&cone, FixedFormat::default(), board, &[]);
    let float = cone.eval(board, &[]);
    for ((_, p, a), (_, _, b)) in fixed.iter().zip(float.iter()) {
        assert_eq!(a, b, "cell {p} differs");
    }
}

#[test]
fn narrower_formats_degrade_gracefully() {
    let flow = IslFlow::from_algorithm(&isl_hls::algorithms::gaussian_igf()).unwrap();
    let cone = flow.build_cone(Window::square(3), 3).unwrap();
    let float = cone.eval(stimulus, &[]);
    let max_err = |fmt: FixedFormat| {
        eval_fixed(&cone, fmt, stimulus, &[])
            .iter()
            .zip(float.iter())
            .map(|((_, _, a), (_, _, b))| (a - b).abs())
            .fold(0.0f64, f64::max)
    };
    let q6 = max_err(FixedFormat::new(14, 6));
    let q10 = max_err(FixedFormat::default());
    let q16 = max_err(FixedFormat::new(26, 16));
    assert!(q16 <= q10 && q10 <= q6, "{q16} <= {q10} <= {q6} violated");
    assert!(q16 < 1e-3);
}
