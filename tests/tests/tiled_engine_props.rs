//! Property tests for the compiled cone-architecture paths.
//!
//! `Simulator::run_tiled` (compiled halo-buffer levels) must match the
//! tree-walking `run_tiled_reference` **bit for bit** — on random patterns
//! over every operator, every *local* border mode, random window shapes and
//! depths (including non-divisor remainders), for an explicit worker-pool
//! thread matrix `{1, 2, 4}`. Likewise `run_cone_dag` (lowered cone
//! bytecode) must match `run_cone_dag_reference` exactly, and stay golden-
//! equal on the frame interior.

use isl_tests::arb::{
    arb_border, arb_local_border, arb_pattern, arb_window, assert_bitwise_eq, frames_for,
};
use isl_tests::prop::check;

use isl_hls::prelude::*;

const THREAD_MATRIX: [usize; 3] = [1, 2, 4];

/// Compiled tiled execution equals the golden tree-walking tiled reference
/// bit-for-bit: random patterns, local borders, window shapes, depths with
/// remainders, and every thread count of the matrix.
#[test]
fn compiled_tiled_matches_reference_bitwise() {
    check("compiled_tiled_matches_reference_bitwise", 48, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_local_border(rng);
        let (w, h) = (rng.usize_in(1, 24), rng.usize_in(1, 24));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 4);
        let iters = rng.u32_in(1, 6); // frequently a non-multiple of depth
        let init = frames_for(&pattern, w, h, rng.u64());
        let reference = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .run_tiled_reference(&init, iters, window, depth)
            .expect("reference runs");
        for threads in THREAD_MATRIX {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(threads);
            let tiled = sim
                .run_tiled(&init, iters, window, depth)
                .expect("compiled tiled runs");
            assert_bitwise_eq(
                &tiled,
                &reference,
                &format!(
                    "{w}x{h} border {border} window {window} depth {depth} iters {iters} threads {threads}"
                ),
            );
        }
    });
}

/// Compiled tiled execution also stays bit-identical to the *golden
/// whole-frame* run (the stronger architecture claim of the paper) for
/// local borders.
#[test]
fn compiled_tiled_matches_golden_bitwise() {
    check("compiled_tiled_matches_golden_bitwise", 32, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_local_border(rng);
        let (w, h) = (rng.usize_in(1, 20), rng.usize_in(1, 20));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let iters = rng.u32_in(1, 5);
        let init = frames_for(&pattern, w, h, rng.u64());
        let sim = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border);
        let golden = sim.run(&init, iters).expect("golden runs");
        let tiled = sim
            .run_tiled(&init, iters, window, depth)
            .expect("tiled runs");
        assert_bitwise_eq(
            &tiled,
            &golden,
            &format!("{w}x{h} border {border} window {window} depth {depth} iters {iters}"),
        );
    });
}

/// The compiled cone-DAG engine equals the graph-walking cone reference
/// bit-for-bit — any border (cones resolve borders at the base only),
/// any window/depth, every thread count of the matrix.
#[test]
fn compiled_cone_dag_matches_reference_bitwise() {
    check("compiled_cone_dag_matches_reference_bitwise", 40, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 20), rng.usize_in(1, 20));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let iters = rng.u32_in(1, 5);
        let init = frames_for(&pattern, w, h, rng.u64());
        let reference = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .run_cone_dag_reference(&init, iters, window, depth)
            .expect("reference runs");
        for threads in THREAD_MATRIX {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(threads);
            let dag = sim
                .run_cone_dag(&init, iters, window, depth)
                .expect("compiled cone dag runs");
            assert_bitwise_eq(
                &dag,
                &reference,
                &format!(
                    "{w}x{h} border {border} window {window} depth {depth} iters {iters} threads {threads}"
                ),
            );
        }
    });
}

/// Every built-in algorithm through the compiled tiled path, against the
/// tiled reference, bit for bit, on all local borders and the thread matrix.
#[test]
fn builtin_algorithms_tiled_bitwise() {
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Constant(0.5),
        ] {
            let init = frames_for(&pattern, 21, 17, 0xC0DE ^ algo.name.len() as u64);
            let reference = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .run_tiled_reference(&init, 5, Window::square(4), 2)
                .expect("reference runs");
            for threads in THREAD_MATRIX {
                let sim = Simulator::new(&pattern)
                    .expect("valid pattern")
                    .with_border(border)
                    .with_threads(threads);
                let tiled = sim
                    .run_tiled(&init, 5, Window::square(4), 2)
                    .expect("tiled runs");
                assert_bitwise_eq(
                    &tiled,
                    &reference,
                    &format!("{} border {border} threads {threads}", algo.name),
                );
            }
        }
    }
}

/// `run_cone_dag` still matches the golden run on the frame interior
/// (distance ≥ radius × iterations from every edge) for the builtins —
/// the streaming-hardware contract.
#[test]
fn cone_dag_matches_golden_in_interior() {
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        let sim = Simulator::new(&pattern).expect("valid pattern");
        let (w, h, iters) = (28usize, 24usize, 3u32);
        let margin = (pattern.radius() * iters) as usize;
        if margin * 2 >= w.min(h) {
            continue; // no interior to compare at this radius
        }
        let init = frames_for(&pattern, w, h, 0xD46 ^ algo.name.len() as u64);
        let golden = sim.run(&init, iters).expect("golden runs");
        let dag = sim
            .run_cone_dag(&init, iters, Window::square(5), 2)
            .expect("cone dag runs");
        for fi in 0..init.len() {
            for y in margin..h - margin {
                for x in margin..w - margin {
                    let a = golden.frame(fi).get(x, y);
                    let b = dag.frame(fi).get(x, y);
                    assert!(
                        (a - b).abs() < 1e-9 || (a.is_nan() && b.is_nan()),
                        "{}: field {fi} ({x},{y}): {a} vs {b}",
                        algo.name
                    );
                }
            }
        }
    }
}
