//! Property tests for Pareto extraction — the DSE's final step must be
//! sound (no dominated point on the front) and complete (every off-front
//! point is dominated) for arbitrary point clouds.

use isl_tests::prop::{check, Rng};

use isl_hls::dse::{dominates, pareto_front};

fn arb_points(rng: &mut Rng, min: usize, max: usize) -> Vec<(f64, f64)> {
    let n = rng.usize_in(min, max);
    (0..n)
        .map(|_| (rng.f64_in(1.0, 1000.0), rng.f64_in(1.0, 1000.0)))
        .collect()
}

#[test]
fn front_is_sound_and_complete() {
    check("front_is_sound_and_complete", 128, |rng| {
        let points = arb_points(rng, 1, 119);
        let front = pareto_front(&points);
        assert!(!front.is_empty());

        // Soundness.
        for &i in &front {
            for (j, &p) in points.iter().enumerate() {
                if i != j {
                    assert!(
                        !dominates(p, points[i]),
                        "point {j} {:?} dominates front member {i} {:?}",
                        p,
                        points[i]
                    );
                }
            }
        }
        // Completeness: every non-front point is dominated by some front
        // point or is a duplicate of one.
        for (j, &p) in points.iter().enumerate() {
            if front.contains(&j) {
                continue;
            }
            let covered = front
                .iter()
                .any(|&i| dominates(points[i], p) || points[i] == p);
            assert!(covered, "point {j} {p:?} neither dominated nor duplicate");
        }
    });
}

#[test]
fn front_is_a_staircase() {
    check("front_is_a_staircase", 128, |rng| {
        let points = arb_points(rng, 1, 119);
        let front = pareto_front(&points);
        let coords: Vec<(f64, f64)> = front.iter().map(|&i| points[i]).collect();
        for w in coords.windows(2) {
            assert!(w[0].0 < w[1].0, "areas must strictly increase");
            assert!(w[0].1 > w[1].1, "times must strictly decrease");
        }
    });
}

#[test]
fn front_invariant_under_permutation() {
    check("front_invariant_under_permutation", 128, |rng| {
        let points = arb_points(rng, 2, 59);
        let rotation = rng.usize_in(0, 58);
        let mut rotated = points.clone();
        let k = rotation % points.len();
        rotated.rotate_left(k);
        let a: Vec<(f64, f64)> = pareto_front(&points).iter().map(|&i| points[i]).collect();
        let b: Vec<(f64, f64)> = pareto_front(&rotated).iter().map(|&i| rotated[i]).collect();
        assert_eq!(a, b);
    });
}

#[test]
fn adding_a_dominated_point_changes_nothing() {
    check("adding_a_dominated_point_changes_nothing", 128, |rng| {
        let points = arb_points(rng, 1, 59);
        let base: Vec<(f64, f64)> = pareto_front(&points).iter().map(|&i| points[i]).collect();
        // A point dominated by the first front member.
        let (a, t) = base[0];
        let mut extended = points.clone();
        extended.push((a + 1.0, t + 1.0));
        let after: Vec<(f64, f64)> =
            pareto_front(&extended).iter().map(|&i| extended[i]).collect();
        assert_eq!(base, after);
    });
}
