//! Property tests for Pareto extraction — the DSE's final step must be
//! sound (no dominated point on the front) and complete (every off-front
//! point is dominated) for arbitrary point clouds.

use proptest::prelude::*;

use isl_hls::dse::{dominates, pareto_front};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_is_sound_and_complete(
        points in prop::collection::vec((1.0f64..1000.0, 1.0f64..1000.0), 1..120)
    ) {
        let front = pareto_front(&points);
        prop_assert!(!front.is_empty());

        // Soundness.
        for &i in &front {
            for (j, &p) in points.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !dominates(p, points[i]),
                        "point {j} {:?} dominates front member {i} {:?}",
                        p,
                        points[i]
                    );
                }
            }
        }
        // Completeness: every non-front point is dominated by some front
        // point or is a duplicate of one.
        for (j, &p) in points.iter().enumerate() {
            if front.contains(&j) {
                continue;
            }
            let covered = front
                .iter()
                .any(|&i| dominates(points[i], p) || points[i] == p);
            prop_assert!(covered, "point {j} {p:?} neither dominated nor duplicate");
        }
    }

    #[test]
    fn front_is_a_staircase(
        points in prop::collection::vec((1.0f64..1000.0, 1.0f64..1000.0), 1..120)
    ) {
        let front = pareto_front(&points);
        let coords: Vec<(f64, f64)> = front.iter().map(|&i| points[i]).collect();
        for w in coords.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "areas must strictly increase");
            prop_assert!(w[0].1 > w[1].1, "times must strictly decrease");
        }
    }

    #[test]
    fn front_invariant_under_permutation(
        points in prop::collection::vec((1.0f64..1000.0, 1.0f64..1000.0), 2..60),
        rotation in 0usize..59,
    ) {
        let mut rotated = points.clone();
        rotated.rotate_left(rotation % points.len());
        let a: Vec<(f64, f64)> = pareto_front(&points).iter().map(|&i| points[i]).collect();
        let b: Vec<(f64, f64)> = pareto_front(&rotated).iter().map(|&i| rotated[i]).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn adding_a_dominated_point_changes_nothing(
        points in prop::collection::vec((1.0f64..1000.0, 1.0f64..1000.0), 1..60),
    ) {
        let base: Vec<(f64, f64)> = pareto_front(&points).iter().map(|&i| points[i]).collect();
        // A point dominated by the first front member.
        let (a, t) = base[0];
        let mut extended = points.clone();
        extended.push((a + 1.0, t + 1.0));
        let after: Vec<(f64, f64)> =
            pareto_front(&extended).iter().map(|&i| extended[i]).collect();
        prop_assert_eq!(base, after);
    }
}
