//! The paper's headline experimental claims, encoded as assertions against
//! this reproduction (quantities are summarised in `EXPERIMENTS.md`).

use isl_hls::algorithms::{chambolle, gaussian_igf};
use isl_hls::baselines::{CommercialHls, FrameBufferModel, HlsFailure};
use isl_hls::prelude::*;

/// Figures 5 & 8: the Eq. 1 area model, calibrated from two syntheses per
/// depth, stays within single-digit percent of actual synthesis.
#[test]
fn area_model_single_digit_errors() {
    let device = Device::virtex6_xc6vlx760();
    for (algo, paper_max, paper_avg) in
        [(gaussian_igf(), 6.58, 2.93), (chambolle(), 6.36, 2.19)]
    {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let windows: Vec<Window> = (1..=6).map(Window::square).collect();
        let v = flow
            .validate_area_model(&device, &windows, &[1, 2, 3], 2)
            .unwrap();
        assert!(
            v.max_error_pct < 2.0 * paper_max,
            "{}: max error {:.2}% (paper {paper_max}%)",
            algo.name,
            v.max_error_pct
        );
        assert!(
            v.avg_error_pct < 3.0 * paper_avg,
            "{}: avg error {:.2}% (paper {paper_avg}%)",
            algo.name,
            v.avg_error_pct
        );
    }
}

/// Section 3.3: estimating the space costs a tiny fraction of synthesising
/// it ("the synthesis may take days of CPU time").
#[test]
fn estimation_is_far_cheaper_than_synthesis() {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let windows: Vec<Window> = (1..=8).map(Window::square).collect();
    let v = flow
        .validate_area_model(&device, &windows, &[1, 2, 3, 4, 5], 2)
        .unwrap();
    assert!(
        v.full_synthesis_cpu_s > 10.0 * v.calibration_cpu_s,
        "full {:.0}s vs calibration {:.0}s",
        v.full_synthesis_cpu_s,
        v.calibration_cpu_s
    );
    // The full grid is hours of modeled tool time.
    assert!(v.full_synthesis_cpu_s > 3600.0);
}

/// Figure 7: with N = 10, the shallow divisor depths beat the non-divisors,
/// which pay for an extra remainder core (at a representative window size).
#[test]
fn divisor_depths_beat_non_divisors() {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let w = flow.workload(1024, 768);
    let fps = |d: u32| {
        flow.best_on_device(&device, Window::square(7), d, w)
            .map(|r| r.fps)
            .unwrap_or(0.0)
    };
    let (f1, f2, f3, f4, f5) = (fps(1), fps(2), fps(3), fps(4), fps(5));
    assert!(f1 > f4 && f2 > f4, "divisors must beat depth 4: {f1:.1}/{f2:.1} vs {f4:.1}");
    assert!(f2 > f3, "depth 2 must beat depth 3: {f2:.1} vs {f3:.1}");
    assert!(f5 > f4, "divisor depth 5 must beat non-divisor 4: {f5:.1} vs {f4:.1}");
}

/// Section 4.1: the IGF architectures land in the paper's throughput range
/// (~110 fps at 1024x768 on the Virtex-6), within a small factor.
#[test]
fn igf_throughput_in_paper_range() {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let mut best = 0.0f64;
    for side in 4..=9 {
        for depth in [1, 2, 5] {
            if let Ok(r) =
                flow.best_on_device(&device, Window::square(side), depth, flow.workload(1024, 768))
            {
                best = best.max(r.fps);
            }
        }
    }
    assert!(
        (55.0..330.0).contains(&best),
        "IGF best fps {best:.1} should be within 2x of the paper's 110"
    );
}

/// Section 4.2: Chambolle is an order of magnitude heavier than the IGF —
/// deep/wide cones become infeasible and the best throughput drops to the
/// tens of fps.
#[test]
fn chambolle_is_the_heavy_case_study() {
    let device = Device::virtex6_xc6vlx760();
    let igf = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let cham = IslFlow::from_algorithm(&chambolle()).unwrap();
    let w = |f: &IslFlow| f.workload(1024, 768);

    // Same window/depth: Chambolle is far slower.
    let igf_fps = igf
        .best_on_device(&device, Window::square(6), 1, w(&igf))
        .unwrap()
        .fps;
    let cham_fps = cham
        .best_on_device(&device, Window::square(6), 1, w(&cham))
        .unwrap()
        .fps;
    assert!(igf_fps > 4.0 * cham_fps);

    // Deep, wide Chambolle cones stop fitting the device entirely —
    // the feasibility rule in action.
    assert!(cham
        .best_on_device(&device, Window::square(9), 4, w(&cham))
        .is_err());
}

/// Section 4.3: the commercial-HLS model reproduces the failure modes and
/// the orders-of-magnitude gap.
#[test]
fn commercial_hls_fails_and_crawls() {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let tool = CommercialHls::new(&device);
    let (best, failures, _) = tool.explore(flow.pattern(), flow.workload(1024, 768));
    let best = best.unwrap();

    // Sub-fps best (paper: 0.14 fps).
    assert!(best.fps < 1.0, "commercial best {:.2} fps", best.fps);
    // Both failure modes observed.
    assert!(failures.iter().any(|(_, e)| *e == HlsFailure::DataDependency));
    assert!(failures
        .iter()
        .any(|(_, e)| matches!(e, HlsFailure::OutOfMemory { .. })));

    // Orders of magnitude vs the cone flow.
    let cone_fps = flow
        .best_on_device(&device, Window::square(8), 2, flow.workload(1024, 768))
        .unwrap()
        .fps;
    assert!(
        cone_fps / best.fps > 100.0,
        "cone {cone_fps:.1} fps vs tool {:.2} fps",
        best.fps
    );
}

/// Section 2.2: the frame-buffer baseline's on-chip memory demand scales
/// with the frame while the cone architecture's does not.
#[test]
fn cone_memory_is_frame_size_independent() {
    let device = Device::virtex6_xc6vlx760();
    let flow = IslFlow::from_algorithm(&gaussian_igf()).unwrap();
    let model = FrameBufferModel::new(&device);

    let small = model.evaluate(flow.pattern(), flow.workload(256, 256)).unwrap();
    let large = model.evaluate(flow.pattern(), flow.workload(1920, 1080)).unwrap();
    assert!(large.buffer_bytes_required > 30 * small.buffer_bytes_required);
    assert!(!large.fits_on_chip, "Full-HD ping-pong buffers must spill");

    // The cone's window buffer is identical for any frame size.
    let cone = flow.build_cone(Window::square(8), 2).unwrap();
    let window_elems = cone.inputs().len();
    assert!(window_elems < 400); // a few hundred elements, not megabytes
}
