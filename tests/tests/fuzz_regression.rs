//! The standing reliability gates: corpus replay, bounded fuzz smoke, and
//! fault-campaign smoke.
//!
//! * every entry of `tests/corpus/` replays through **all execution
//!   semantics** at its recorded adversarial configuration, bitwise;
//! * every entry of `tests/corpus/crashes/` must be *rejected with a
//!   structured error* — these are the inputs that once crashed (or were
//!   designed to crash) the frontend and symbolic executor;
//! * a small fixed-seed differential campaign and a frontend mutation
//!   campaign run end to end with zero findings;
//! * a stuck-at + bit-flip fault campaign runs through the staged session
//!   API and classifies every injected fault.

use std::path::Path;

use isl_fuzz::{load_dir, run_campaign, DiffOutcome};
use isl_hls::prelude::*;
use isl_hls::IslSession;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Every persisted fuzz finding (and hand-seeded adversarial case) keeps
/// replaying clean: four semantics, bitwise, at the recorded config.
#[test]
fn corpus_replays_clean_across_all_semantics() {
    let entries = load_dir(corpus_dir()).expect("corpus loads");
    assert!(entries.len() >= 5, "seed corpus went missing");
    for entry in entries {
        match isl_fuzz::run_differential(&entry.source, &entry.config) {
            DiffOutcome::Agree { checks } => {
                assert!(checks > 0, "`{}` ran no checks", entry.name);
            }
            DiffOutcome::CompileError(e) => {
                panic!("corpus entry `{}` stopped compiling: {e}", entry.name)
            }
            DiffOutcome::Mismatch(m) => panic!(
                "corpus entry `{}` regressed: {} — {}",
                entry.name, m.check, m.detail
            ),
        }
    }
}

/// Inputs that once crashed (or target the crash surface of) the frontend
/// stay structured rejections: an `Err`, never a panic, stack overflow or
/// hang.
#[test]
fn crash_fixtures_are_rejected_with_structured_errors() {
    let dir = corpus_dir().join("crashes");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("crash fixture dir")
        .filter_map(Result::ok)
        .map(|d| d.path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 6, "crash fixtures went missing");
    for p in paths {
        let src = std::fs::read_to_string(&p).expect("fixture reads");
        let err = isl_hls::symexec::compile_str(&src)
            .expect_err(&format!("{} must be rejected", p.display()));
        assert!(!err.to_string().is_empty());
    }
}

/// Bounded fixed-seed differential smoke: a fresh slice of generated
/// programs cross-checks clean on every CI run.
#[test]
fn bounded_differential_fuzz_is_mismatch_free() {
    let report = run_campaign(40, 0x15C_F022, 150);
    assert!(
        report.failures.is_empty(),
        "differential mismatch found:\n{}",
        report.failures[0].to_text()
    );
    assert!(report.agreed > 0, "no generated program compiled");
    assert!(report.checks >= report.agreed * 8, "check matrix shrank");
}

/// Bounded frontend mutation smoke: mangled kernels never panic the
/// frontend.
#[test]
fn bounded_mutation_fuzz_finds_no_panics() {
    let seeds = [
        isl_hls::algorithms::gaussian::SOURCE,
        isl_hls::algorithms::chambolle::SOURCE,
    ];
    let report = isl_fuzz::fuzz_frontend(&seeds, 250, 0xBAD_F00D);
    assert!(
        report.panics.is_empty(),
        "frontend panicked: {}",
        report.panics[0].message
    );
    assert_eq!(report.compiled + report.rejected, 250);
}

/// The stage-level reliability API: certify an architecture, then sweep
/// stuck-at and bit-flip faults over its cone programs. Every fault must
/// be classified, every detection triaged to its instruction.
#[test]
fn session_fault_campaign_classifies_and_triages() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let session = IslSession::from_algorithm(&algo).expect("session builds");
    let init = isl_fuzz::frames_for(session.pattern(), 12, 9, 0x7A11);
    let certified = session
        .certify(&init, Architecture::new(Window::square(3), 2, 1))
        .expect("certifies");
    let schedule = isl_hls::cosim::MaskSchedule::lsb();
    let report = certified.fault_campaign(&init, &schedule).expect("campaign runs");

    assert_eq!(report.faults, report.detected + report.masked + report.silent);
    assert!(report.faults >= report.instructions, "sweep skipped instructions");
    assert_eq!(report.triaged, report.detected, "a detection escaped triage");
    assert!(report.detected > 0, "nothing detected — campaign is vacuous");
    let by_level: usize = report.by_level.iter().map(|l| l.detected).sum();
    assert_eq!(by_level, report.detected);
    let by_model: usize = report.by_model.iter().map(|m| m.faults).sum();
    assert_eq!(by_model, report.faults);
    // The report prints the quantified coverage summary.
    let text = report.to_string();
    assert!(text.contains("detected"), "{text}");
}
