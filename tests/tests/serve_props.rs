//! The serving front-end: concurrent clients on one warm service,
//! single-flight de-duplication of identical requests, and warm restarts
//! proven through the wire (`stats` op), not just through in-process
//! counters.

use std::path::{Path, PathBuf};

use isl_serve::{Client, Op, Request, ServeConfig, Server};

fn state_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "isl-serve-props-{}-{test}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(dir: &Path) -> isl_serve::ServerHandle {
    Server::start(ServeConfig {
        state_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    })
    .unwrap()
}

fn certify_request(seed: u64) -> Request {
    Request {
        op: Op::Certify,
        algo: "igf".into(),
        width: 20,
        height: 14,
        seed,
        window: 2,
        depth: 1,
        cores: 1,
        ..Request::default()
    }
}

/// Two clients racing the *same* request trigger exactly one compute:
/// the store's single-flight builds the certificate once and both
/// responses are byte-identical.
#[test]
fn concurrent_identical_requests_compute_once() {
    let dir = state_dir("single-flight");
    let handle = start(&dir);
    let addr = handle.addr();

    let threads: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.request(certify_request(3)).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(results[0], results[1], "racing clients saw different answers");

    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats("igf").unwrap();
    assert_eq!(stats.certificate_misses, 1, "the race computed twice");
    assert_eq!(stats.vector_misses, 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Four concurrent clients with a mixed workload, then a restart on the
/// same state directory: the restarted service replays every request
/// with **zero** build misses — the warm-restart evidence arrives over
/// the wire via the `stats` op.
#[test]
fn restarted_service_answers_warm() {
    let dir = state_dir("restart-warm");

    let drive = |addr: std::net::SocketAddr| -> Vec<String> {
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.ping().unwrap();
                    let request = match i {
                        0 => Request {
                            op: Op::Explore,
                            algo: "igf".into(),
                            width: 20,
                            height: 14,
                            max_side: 3,
                            max_depth: 2,
                            max_cores: 2,
                            ..Request::default()
                        },
                        1 | 2 => certify_request(3),
                        _ => Request {
                            op: Op::SearchFormat,
                            algo: "igf".into(),
                            width: 20,
                            height: 14,
                            seed: 3,
                            window: 2,
                            depth: 1,
                            cores: 1,
                            max_abs: 1e-2,
                            ..Request::default()
                        },
                    };
                    format!("{:?}", client.request(request).unwrap())
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    };

    // Cold service: builds everything, checkpoints after each batch.
    let handle = start(&dir);
    let first = drive(handle.addr());
    let mut client = Client::connect(handle.addr()).unwrap();
    let cold = client.stats("igf").unwrap();
    assert!(cold.build_misses() > 0, "cold service must build");
    drop(client);
    handle.shutdown();

    // Restarted service: same state dir, fresh process state. The whole
    // mixed workload replays from disk — zero new builds of any kind.
    let handle = start(&dir);
    let second = drive(handle.addr());
    let mut client = Client::connect(handle.addr()).unwrap();
    let warm = client.stats("igf").unwrap();
    assert_eq!(
        warm.build_misses(),
        0,
        "restarted service rebuilt artifacts: {warm:?}"
    );
    assert!(warm.disk_hits > 0, "nothing was served from disk");
    assert_eq!(warm.corrupt, 0);

    // Same answers, byte for byte (results are parsed+normalised JSON).
    let (mut a, mut b) = (first.clone(), second.clone());
    a.sort();
    b.sort();
    assert_eq!(a, b, "restart changed an answer");
    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
