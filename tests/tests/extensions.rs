//! Extension coverage: 3D stencils in the IR, pattern composition as an
//! independent oracle for cone construction, and fixed-point convergence
//! (the "potentially unbounded" ISL variant of Section 2).

use isl_tests::prop::{check, Rng};

use isl_hls::ir::{
    BinaryOp, Cone, Expr, FieldId, FieldKind, Offset, Point, StencilPattern, Window,
};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

// -- 3D stencils -------------------------------------------------------------

fn heat_3d() -> StencilPattern {
    let mut p = StencilPattern::new(3).with_name("heat3d");
    let f = p.add_field("f", FieldKind::Dynamic);
    let sum = Expr::sum([
        Expr::input(f, Offset::d3(-1, 0, 0)),
        Expr::input(f, Offset::d3(1, 0, 0)),
        Expr::input(f, Offset::d3(0, -1, 0)),
        Expr::input(f, Offset::d3(0, 1, 0)),
        Expr::input(f, Offset::d3(0, 0, -1)),
        Expr::input(f, Offset::d3(0, 0, 1)),
    ]);
    p.set_update(
        f,
        Expr::binary(BinaryOp::Mul, sum, Expr::constant(1.0 / 6.0)),
    )
    .unwrap();
    p
}

#[test]
fn three_dimensional_cones_build_and_evaluate() {
    let p = heat_3d();
    p.validate().unwrap();
    let cone = Cone::build(&p, Window::cube3(2, 2, 2), 2).unwrap();
    assert_eq!(cone.outputs().len(), 8);
    // The input extent grows on all three axes.
    let ext = cone.input_extent();
    assert_eq!(ext.lo, Point::d3(-2, -2, -2));
    assert_eq!(ext.hi, Point::d3(3, 3, 3));
    // A linear field is a fixed point of the 6-neighbour average.
    let out = cone.eval(|_, pt| (pt.x + pt.y + pt.z) as f64, &[]);
    for (_, pt, v) in out {
        assert!(
            (v - (pt.x + pt.y + pt.z) as f64).abs() < 1e-12,
            "at {pt}: {v}"
        );
    }
}

#[test]
fn three_dimensional_cones_synthesize() {
    let p = heat_3d();
    let device = Device::virtex6_xc6vlx760();
    let synth = Synthesizer::new(&device);
    let small = synth.synthesize(&p, Window::cube3(1, 1, 1), 1, 1).unwrap();
    let large = synth.synthesize(&p, Window::cube3(2, 2, 2), 2, 1).unwrap();
    assert!(large.luts > small.luts);
    assert!(large.registers > small.registers);
}

// -- composition as a cone oracle ---------------------------------------------

fn arb_simple_pattern(rng: &mut Rng) -> StencilPattern {
    let mut p = StencilPattern::new(2).with_name("randc");
    let f = p.add_field("f", FieldKind::Dynamic);
    let n = rng.usize_in(2, 4);
    let terms: Vec<Expr> = (0..n)
        .map(|_| {
            let (dx, dy) = (rng.i32_in(-1, 1), rng.i32_in(-1, 1));
            let w = rng.u32_in(1, 7);
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(f, Offset::d2(dx, dy)),
                Expr::constant(f64::from(w) / 16.0),
            )
        })
        .collect();
    p.set_update(f, Expr::sum(terms)).expect("valid field");
    p
}

/// `Cone(p, w, m)` and `Cone(p^m, w, 1)` compute the same function —
/// two completely different code paths (level-wise memoised expansion
/// vs. algebraic substitution) must agree.
#[test]
fn composed_pattern_matches_deep_cone() {
    check("composed_pattern_matches_deep_cone", 32, |rng| {
        let pattern = arb_simple_pattern(rng);
        let m = rng.u32_in(1, 3);
        let seed = rng.u64() % 500;
        let composed = pattern.composed(m).expect("composable");
        let deep = Cone::build(&pattern, Window::square(2), m).expect("builds");
        let flat = Cone::build(&composed, Window::square(2), 1).expect("builds");
        let read = move |_f: FieldId, pt: Point| {
            let mut z = (seed ^ ((pt.x as u64) << 17) ^ ((pt.y as u64) << 33))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z ^= z >> 31;
            (z % 997) as f64 / 997.0
        };
        let a = deep.eval(read, &[]);
        let b = flat.eval(read, &[]);
        assert_eq!(a.len(), b.len());
        for ((fa, pa, va), (fb, pb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!((fa, pa), (fb, pb));
            assert!((va - vb).abs() < 1e-9, "{} vs {}", va, vb);
        }
    });
}

/// Composed radius: r(p^m) <= m · r(p), with equality for patterns whose
/// extremal taps survive (weights here are strictly positive).
#[test]
fn composed_radius_bound() {
    check("composed_radius_bound", 32, |rng| {
        let pattern = arb_simple_pattern(rng);
        let m = rng.u32_in(1, 4);
        let composed = pattern.composed(m).expect("composable");
        assert!(composed.radius() <= m * pattern.radius());
    });
}

// -- fixed-point iteration ----------------------------------------------------

#[test]
fn convergence_detection_matches_direct_iteration() {
    // Damped Jacobi (f' = f/2 + avg/2) converges for every mode — plain
    // Jacobi's checkerboard mode oscillates forever under mirror borders,
    // which is itself worth knowing when picking fixed-point kernels.
    let mut p = StencilPattern::new(2).with_name("damped");
    let f = p.add_field("f", FieldKind::Dynamic);
    let avg = Expr::binary(
        BinaryOp::Mul,
        Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]),
        Expr::constant(0.125),
    );
    let update = Expr::binary(
        BinaryOp::Add,
        Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::ZERO), Expr::constant(0.5)),
        avg,
    );
    p.set_update(f, update).unwrap();
    let flow = IslFlow::from_pattern(p, 100).with_border(BorderMode::Mirror);
    let sim = flow.simulator().unwrap();
    let init = FrameSet::from_frames(vec![synthetic::noise(10, 10, 77)]).unwrap();
    let eps = 1e-8;
    let (fixed, report) = sim.run_until_converged(&init, eps, 10_000).unwrap();
    assert!(report.converged);
    let once_more = sim.run(&fixed, 1).unwrap();
    assert!(fixed.max_abs_diff(&once_more) < eps);
    // And the tiled executor lands on the same fixed point.
    let tiled = sim
        .run_tiled(&init, report.iterations, Window::square(3), 2)
        .unwrap();
    assert!(tiled.max_abs_diff(&fixed) < 1e-9);
}

#[test]
fn workload_accessors() {
    let w = Workload::image(1024, 768, 10);
    assert_eq!(w.frame_elements(), 786_432);
    assert_eq!(w.bytes_per_element, 2);
}
