//! End-to-end integration: every built-in algorithm through every phase of
//! the flow — C source → pattern → cones → VHDL → estimation → exploration
//! → functional equivalence.

use isl_hls::algorithms::{all, Algorithm};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::vhdl::check;

fn initial_frames(algo: &Algorithm, pattern: &StencilPattern, w: usize, h: usize) -> FrameSet {
    let frames: Vec<Frame> = pattern
        .fields()
        .iter()
        .enumerate()
        .map(|(i, decl)| match decl.kind {
            isl_hls::ir::FieldKind::Dynamic if algo.name == "life" => {
                Frame::from_fn(w, h, |x, y| f64::from((x * 7 + y * 3) % 5 == 0))
            }
            isl_hls::ir::FieldKind::Dynamic => synthetic::noise(w, h, 11 + i as u64),
            isl_hls::ir::FieldKind::Static => synthetic::gaussian_spots(w, h, 50 + i as u64, 2),
        })
        .collect();
    FrameSet::from_frames(frames).expect("congruent frames")
}

#[test]
fn every_algorithm_runs_the_whole_flow() {
    let device = Device::virtex6_xc6vlx760();
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name));

        // Cones build and expose sane geometry.
        let depth = flow.iterations().min(2);
        let cone = flow.build_cone(Window::square(3), depth).unwrap();
        assert!(!cone.inputs().is_empty(), "{}", algo.name);
        assert_eq!(
            cone.outputs().len(),
            9 * flow.pattern().dynamic_fields().len(),
            "{}",
            algo.name
        );

        // VHDL generates and passes the structural checker.
        let bundle = flow.generate_vhdl(Window::square(3), depth).unwrap();
        check::validate(&bundle.entity).unwrap_or_else(|e| panic!("{}: {e}", algo.name));
        check::validate_package(&bundle.package).unwrap();

        // A small exploration finds feasible points.
        let space = DesignSpace::new(1..=3, 1..=depth.max(1), 2);
        let result = flow
            .explore(&device, flow.workload(96, 96), &space)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name));
        assert!(!result.pareto().is_empty(), "{}", algo.name);
    }
}

#[test]
fn tiled_execution_is_exact_for_every_algorithm() {
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let sim = flow.simulator().unwrap();
        let init = initial_frames(&algo, flow.pattern(), 21, 17);
        let iters = flow.iterations().min(6);
        let golden = sim.run(&init, iters).unwrap();
        for (window, depth) in [(Window::square(4), 2), (Window::square(5), 3)] {
            let depth = depth.min(iters.max(1));
            let tiled = sim.run_tiled(&init, iters, window, depth).unwrap();
            let diff = golden.max_abs_diff(&tiled);
            assert!(
                diff < 1e-9,
                "{}: tiled != golden (window {window}, depth {depth}, diff {diff})",
                algo.name
            );
        }
    }
}

#[test]
fn native_references_agree_with_extracted_patterns() {
    for algo in all() {
        let Some(native) = algo.native_step else {
            continue;
        };
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let sim = flow.simulator().unwrap();
        let init = initial_frames(&algo, flow.pattern(), 15, 12);
        let params = algo.default_params();
        let iters = flow.iterations().min(4);
        let mut expect = init.clone();
        for _ in 0..iters {
            expect = native(&expect, flow.border(), &params);
        }
        let got = sim.run(&init, iters).unwrap();
        assert!(
            got.max_abs_diff(&expect) < 1e-9,
            "{}: symexec pattern disagrees with the hand-written reference",
            algo.name
        );
    }
}

#[test]
fn exploration_estimates_match_synthesis_for_pareto_points() {
    // The flow's core promise: the Pareto set chosen on Eq. 1 estimates is
    // trustworthy against "real" synthesis.
    let device = Device::virtex6_xc6vlx760();
    let algo = isl_hls::algorithms::gaussian_igf();
    let flow = IslFlow::from_algorithm(&algo).unwrap();
    let space = DesignSpace::new(1..=6, 1..=3, 4);
    let result = flow.explore(&device, flow.workload(256, 192), &space).unwrap();
    let synth = Synthesizer::new(&device);
    for p in result.pareto() {
        let actual = synth
            .synthesize(flow.pattern(), p.arch.window, p.arch.depth, p.arch.cores)
            .unwrap();
        let rem = flow.iterations() % p.arch.depth;
        let rem_luts = if rem > 0 {
            synth
                .synthesize(flow.pattern(), p.arch.window, rem, 1)
                .unwrap()
                .luts
        } else {
            0
        };
        let actual_total = (actual.luts + rem_luts) as f64;
        let err = (p.estimated_luts - actual_total).abs() / actual_total;
        assert!(
            err < 0.20,
            "pareto point {} d{} x{}: estimate {:.0} vs actual {:.0} ({:.1}%)",
            p.arch.window,
            p.arch.depth,
            p.arch.cores,
            p.estimated_luts,
            actual_total,
            err * 100.0
        );
    }
}

#[test]
fn deeper_cones_trade_area_for_fewer_levels() {
    let flow = IslFlow::from_algorithm(&isl_hls::algorithms::jacobi4()).unwrap();
    let shallow = flow.build_cone(Window::square(4), 1).unwrap();
    let deep = flow.build_cone(Window::square(4), 6).unwrap();
    assert!(deep.registers() > shallow.registers());
    // Register reuse keeps the deep cone orders below the naive tree, whose
    // size grows exponentially in depth (~4^d for the 4-point stencil).
    assert!((deep.registers() as f64) < 0.05 * deep.tree_op_count());
}
