//! Property tests: the architecture-template equivalence (Section 3.1's
//! central claim) holds for *randomly generated* stencils, windows, depths
//! and borders — not just the hand-picked algorithms.

use isl_tests::prop::{check, Rng};

use isl_hls::ir::{BinaryOp, Expr, FieldId, FieldKind, Offset, StencilPattern};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

/// A random "safe" stencil expression: affine combinations plus min/max over
/// a 3x3 neighbourhood, so iteration stays numerically bounded.
fn arb_update(field: FieldId, rng: &mut Rng) -> Expr {
    let tap = |rng: &mut Rng| {
        let dx = rng.i32_in(-1, 1);
        let dy = rng.i32_in(-1, 1);
        let w = (rng.f64_in(0.05, 0.3) * 16.0).round() / 16.0;
        Expr::binary(
            BinaryOp::Mul,
            Expr::input(field, Offset::d2(dx, dy)),
            Expr::constant(w),
        )
    };
    match rng.weighted(&[3, 1, 1]) {
        0 => {
            // Linear combination of 2..6 weighted taps.
            let n = rng.usize_in(2, 5);
            Expr::sum((0..n).map(|_| tap(rng)).collect::<Vec<_>>())
        }
        1 => {
            // min/max over two taps.
            let (ax, ay) = (rng.i32_in(-1, 1), rng.i32_in(-1, 1));
            let (bx, by) = (rng.i32_in(-1, 1), rng.i32_in(-1, 1));
            Expr::binary(
                if rng.bool() { BinaryOp::Min } else { BinaryOp::Max },
                Expr::input(field, Offset::d2(ax, ay)),
                Expr::input(field, Offset::d2(bx, by)),
            )
        }
        _ => {
            // Mean of 2..4 unweighted taps.
            let n = rng.usize_in(2, 4);
            let taps: Vec<Expr> = (0..n)
                .map(|_| {
                    Expr::input(field, Offset::d2(rng.i32_in(-1, 1), rng.i32_in(-1, 1)))
                })
                .collect();
            Expr::binary(BinaryOp::Div, Expr::sum(taps), Expr::constant(n as f64))
        }
    }
}

fn arb_pattern(rng: &mut Rng) -> StencilPattern {
    if rng.bool() {
        // Two coupled dynamic fields: a reads b's update and vice versa.
        let mut p = StencilPattern::new(2).with_name("rand2");
        let a = p.add_field("a", FieldKind::Dynamic);
        let b = p.add_field("b", FieldKind::Dynamic);
        let ua = arb_update(a, rng);
        let ub = arb_update(b, rng);
        p.set_update(a, ub).expect("valid field");
        p.set_update(b, ua).expect("valid field");
        p
    } else {
        let mut p = StencilPattern::new(2).with_name("rand1");
        let f = p.add_field("f", FieldKind::Dynamic);
        let u = arb_update(f, rng);
        p.set_update(f, u).expect("valid field");
        p
    }
}

fn arb_border(rng: &mut Rng) -> BorderMode {
    match rng.weighted(&[1, 1, 1]) {
        0 => BorderMode::Clamp,
        1 => BorderMode::Mirror,
        _ => BorderMode::Constant(rng.f64_in(0.0, 1.0)),
    }
}

/// Window-by-window cone execution is bit-identical to the golden
/// whole-frame iteration for random stencils and tilings.
#[test]
fn tiled_equals_golden() {
    check("tiled_equals_golden", 48, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let seed = rng.u64() % 1000;
        let iters = rng.u32_in(1, 5);
        let depth = rng.u32_in(1, 3);
        let (tw, th) = (rng.u32_in(1, 5), rng.u32_in(1, 5));
        let (w, h) = (rng.usize_in(7, 19), rng.usize_in(7, 19));

        let sim = Simulator::new(&pattern).expect("valid pattern").with_border(border);
        let frames: Vec<Frame> = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed + i as u64))
            .collect();
        let init = FrameSet::from_frames(frames).expect("congruent");
        let golden = sim.run(&init, iters).expect("golden runs");
        let tiled = sim
            .run_tiled(&init, iters, Window::rect(tw, th), depth)
            .expect("tiled runs");
        assert!(
            golden.max_abs_diff(&tiled) < 1e-9,
            "diff {}",
            golden.max_abs_diff(&tiled)
        );
    });
}

/// The hash-consed cone DAG (what the VHDL implements) computes the same
/// values as the golden run on the frame interior.
#[test]
fn cone_dag_interior_equals_golden() {
    check("cone_dag_interior_equals_golden", 48, |rng| {
        let pattern = arb_pattern(rng);
        let seed = rng.u64() % 1000;
        let iters = rng.u32_in(1, 3);
        let depth = rng.u32_in(1, 3);

        let (w, h) = (20usize, 20usize);
        let sim = Simulator::new(&pattern).expect("valid pattern");
        let frames: Vec<Frame> = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed + 77 * i as u64))
            .collect();
        let init = FrameSet::from_frames(frames).expect("congruent");
        let golden = sim.run(&init, iters).expect("golden runs");
        let dag = sim
            .run_cone_dag(&init, iters, Window::square(3), depth)
            .expect("dag runs");
        let margin = (iters * pattern.radius()) as usize;
        for fi in 0..init.len() {
            for y in margin..h - margin {
                for x in margin..w - margin {
                    let a = golden.frame(fi).get(x, y);
                    let b = dag.frame(fi).get(x, y);
                    assert!((a - b).abs() < 1e-9, "({x},{y}) field {fi}: {a} vs {b}");
                }
            }
        }
    });
}

/// Register reuse never changes semantics: evaluating the interned cone
/// graph equals evaluating the raw (unsimplified) one.
#[test]
fn simplification_preserves_cone_semantics() {
    check("simplification_preserves_cone_semantics", 48, |rng| {
        let pattern = arb_pattern(rng);
        let seed = rng.u64() % 1000;
        let depth = rng.u32_in(1, 3);

        let window = Window::square(2);
        let simplified = Cone::build(&pattern, window, depth).expect("builds");
        let raw = isl_hls::ir::Cone::build_with(&pattern, window, depth, false).expect("builds");
        let read = |_f: isl_hls::ir::FieldId, p: isl_hls::ir::Point| {
            let mut z = (seed ^ ((p.x as u64) << 20) ^ ((p.y as u64) << 40))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z ^= z >> 29;
            (z % 1000) as f64 / 1000.0
        };
        let a = simplified.eval(read, &[]);
        let b = raw.eval(read, &[]);
        assert_eq!(a.len(), b.len());
        for ((fa, pa, va), (fb, pb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(fa, fb);
            assert_eq!(pa, pb);
            assert!((va - vb).abs() < 1e-9, "{va} vs {vb}");
        }
        // And reuse does not inflate the design.
        assert!(simplified.registers() <= raw.registers());
    });
}
