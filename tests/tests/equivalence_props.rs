//! Property tests: the architecture-template equivalence (Section 3.1's
//! central claim) holds for *randomly generated* stencils, windows, depths
//! and borders — not just the hand-picked algorithms.

use proptest::prelude::*;

use isl_hls::ir::{BinaryOp, Expr, FieldId, FieldKind, Offset, StencilPattern};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;

/// A random "safe" stencil expression: affine combinations plus min/max over
/// a 3x3 neighbourhood, so iteration stays numerically bounded.
fn arb_update(field: FieldId) -> impl Strategy<Value = Expr> {
    let tap = (-1i32..=1, -1i32..=1, 0.05f64..0.3)
        .prop_map(move |(dx, dy, w)| {
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(field, Offset::d2(dx, dy)),
                Expr::constant((w * 16.0).round() / 16.0),
            )
        });
    let linear = prop::collection::vec(tap, 2..6).prop_map(Expr::sum);
    let minmax = (
        (-1i32..=1, -1i32..=1),
        (-1i32..=1, -1i32..=1),
        prop::bool::ANY,
    )
        .prop_map(move |((ax, ay), (bx, by), is_min)| {
            Expr::binary(
                if is_min { BinaryOp::Min } else { BinaryOp::Max },
                Expr::input(field, Offset::d2(ax, ay)),
                Expr::input(field, Offset::d2(bx, by)),
            )
        });
    prop_oneof![
        3 => linear,
        1 => minmax,
        1 => (
            prop::collection::vec(
                (-1i32..=1, -1i32..=1).prop_map(move |(dx, dy)| Expr::input(field, Offset::d2(dx, dy))),
                2..5,
            ),
        )
            .prop_map(|(taps,)| {
                let n = taps.len() as f64;
                Expr::binary(BinaryOp::Div, Expr::sum(taps), Expr::constant(n))
            }),
    ]
}

fn arb_pattern() -> impl Strategy<Value = StencilPattern> {
    (any::<bool>()).prop_flat_map(|two_fields| {
        if two_fields {
            // Two coupled dynamic fields.
            let mut p = StencilPattern::new(2).with_name("rand2");
            let a = p.add_field("a", FieldKind::Dynamic);
            let b = p.add_field("b", FieldKind::Dynamic);
            (arb_update(a), arb_update(b)).prop_map(move |(ua, ub)| {
                let mut p = p.clone();
                // Cross-couple: a reads b's update and vice versa.
                p.set_update(a, ub).expect("valid field");
                p.set_update(b, ua).expect("valid field");
                p
            })
            .boxed()
        } else {
            let mut p = StencilPattern::new(2).with_name("rand1");
            let f = p.add_field("f", FieldKind::Dynamic);
            arb_update(f)
                .prop_map(move |u| {
                    let mut p = p.clone();
                    p.set_update(f, u).expect("valid field");
                    p
                })
                .boxed()
        }
    })
}

fn arb_border() -> impl Strategy<Value = BorderMode> {
    prop_oneof![
        Just(BorderMode::Clamp),
        Just(BorderMode::Mirror),
        (0.0f64..1.0).prop_map(BorderMode::Constant),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Window-by-window cone execution is bit-identical to the golden
    /// whole-frame iteration for random stencils and tilings.
    #[test]
    fn tiled_equals_golden(
        pattern in arb_pattern(),
        border in arb_border(),
        seed in 0u64..1000,
        iters in 1u32..6,
        depth in 1u32..4,
        (tw, th) in (1u32..6, 1u32..6),
        (w, h) in (7usize..20, 7usize..20),
    ) {
        let sim = Simulator::new(&pattern).expect("valid pattern").with_border(border);
        let frames: Vec<Frame> = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed + i as u64))
            .collect();
        let init = FrameSet::from_frames(frames).expect("congruent");
        let golden = sim.run(&init, iters).expect("golden runs");
        let tiled = sim
            .run_tiled(&init, iters, Window::rect(tw, th), depth)
            .expect("tiled runs");
        prop_assert!(
            golden.max_abs_diff(&tiled) < 1e-9,
            "diff {}",
            golden.max_abs_diff(&tiled)
        );
    }

    /// The hash-consed cone DAG (what the VHDL implements) computes the same
    /// values as the golden run on the frame interior.
    #[test]
    fn cone_dag_interior_equals_golden(
        pattern in arb_pattern(),
        seed in 0u64..1000,
        iters in 1u32..4,
        depth in 1u32..4,
    ) {
        let (w, h) = (20usize, 20usize);
        let sim = Simulator::new(&pattern).expect("valid pattern");
        let frames: Vec<Frame> = pattern
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed + 77 * i as u64))
            .collect();
        let init = FrameSet::from_frames(frames).expect("congruent");
        let golden = sim.run(&init, iters).expect("golden runs");
        let dag = sim
            .run_cone_dag(&init, iters, Window::square(3), depth)
            .expect("dag runs");
        let margin = (iters * pattern.radius()) as usize;
        for fi in 0..init.len() {
            for y in margin..h - margin {
                for x in margin..w - margin {
                    let a = golden.frame(fi).get(x, y);
                    let b = dag.frame(fi).get(x, y);
                    prop_assert!((a - b).abs() < 1e-9, "({x},{y}) field {fi}: {a} vs {b}");
                }
            }
        }
    }

    /// Register reuse never changes semantics: evaluating the interned cone
    /// graph equals evaluating the raw (unsimplified) one.
    #[test]
    fn simplification_preserves_cone_semantics(
        pattern in arb_pattern(),
        seed in 0u64..1000,
        depth in 1u32..4,
    ) {
        let window = Window::square(2);
        let simplified = Cone::build(&pattern, window, depth).expect("builds");
        let raw = isl_hls::ir::Cone::build_with(&pattern, window, depth, false).expect("builds");
        let read = |_f: isl_hls::ir::FieldId, p: isl_hls::ir::Point| {
            let mut z = (seed ^ ((p.x as u64) << 20) ^ ((p.y as u64) << 40))
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z ^= z >> 29;
            (z % 1000) as f64 / 1000.0
        };
        let a = simplified.eval(read, &[]);
        let b = raw.eval(read, &[]);
        prop_assert_eq!(a.len(), b.len());
        for ((fa, pa, va), (fb, pb, vb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(fa, fb);
            prop_assert_eq!(pa, pb);
            prop_assert!((va - vb).abs() < 1e-9, "{va} vs {vb}");
        }
        // And reuse does not inflate the design.
        prop_assert!(simplified.registers() <= raw.registers());
    }
}
