//! Properties of the precision design-space exploration (`FormatSearch`):
//! the monotonicity invariant the binary search relies on, bit-true
//! certification of the searched format, width-monotone area through the
//! parameterised techmap, and zero redundant quantised builds on warm
//! re-searches (the artifact-store acceptance criterion).

use std::sync::Arc;

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_tests::prop::{check, Rng};

fn session_and_frames(algo: &isl_hls::algorithms::Algorithm) -> (IslSession, FrameSet) {
    let session = IslSession::from_algorithm(algo).unwrap();
    let fields = session.pattern().fields().len();
    let init = FrameSet::from_frames(
        (0..fields)
            .map(|i| synthetic::noise(20, 14, 5 + i as u64))
            .collect(),
    )
    .unwrap();
    (session, init)
}

/// The invariant the binary search relies on: at a fixed (saturation-free)
/// integer width, the measured quantisation error of the certified run is
/// monotone non-increasing in the fractional width. Asserted strictly over
/// 4-bit refinement steps, where resolution dominates per-pixel rounding
/// noise, on both paper case studies.
#[test]
fn quant_error_monotone_in_frac() {
    for (algo, int_bits) in [
        (isl_hls::algorithms::gaussian_igf(), 6u32),
        (isl_hls::algorithms::chambolle(), 10u32),
    ] {
        let (session, init) = session_and_frames(&algo);
        let arch = Architecture::new(Window::square(4), 2, 1);
        let mut prev = f64::INFINITY;
        for frac in [4u32, 8, 12, 16, 20] {
            let fmt = FixedFormat::new(int_bits + frac, frac);
            let cert = session
                .clone()
                .with_format(fmt)
                .certify(&init, arch)
                .unwrap();
            let err = cert.certificate().max_quant_error;
            assert!(
                err < prev,
                "{}: error at {fmt} is {err:.3e}, not below {prev:.3e}",
                algo.name
            );
            assert!(cert.certificate().rms_quant_error <= err);
            prev = err;
        }
        // Four extra fractional bits must buy real accuracy, not noise.
        assert!(prev < 1e-4, "{}: 20 frac bits left error {prev:.3e}", algo.name);
    }
}

/// The acceptance criterion: for gaussian-IGF and Chambolle, a budget
/// anchored on the default Q8.10/18-bit format's measured accuracy yields
/// a certified format **no wider than the default**, and whenever the
/// searched word is strictly narrower the width-parameterised techmap
/// reports strictly lower synthesised area.
#[test]
fn searched_format_is_certified_and_no_wider_than_default() {
    let device = Device::virtex6_xc6vlx760();
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let (session, init) = session_and_frames(&algo);
        let arch = Architecture::new(Window::square(4), 2, 2);
        let baseline = session.certify(&init, arch).unwrap();
        let default_fmt = session.synth_options().format;
        assert_eq!(default_fmt, FixedFormat::new(18, 10));

        let budget = ErrorBudget::max_abs(baseline.certificate().max_quant_error);
        let searched = session.search_format(&device, &init, arch, budget).unwrap();
        let chosen = searched.format();
        assert!(
            chosen.width <= default_fmt.width,
            "{}: searched {chosen} wider than default {default_fmt}",
            algo.name
        );

        // The chosen format's certificate is the full bit-true evidence:
        // golden vectors certified word-for-word at that exact format.
        let cert = searched.certificate();
        assert_eq!(cert.format, chosen);
        assert!(cert.vector_records > 0 && cert.vector_words > 0);
        assert!(cert.quantized_elements > 0);
        for file in &cert.vector_files {
            assert_eq!(file.format, chosen);
            let cone = session.cone(file.window, file.depth).unwrap();
            let report = isl_hls::vhdl::check::verify_vectors(&cone, chosen, file).unwrap();
            assert_eq!(report.records, file.records.len());
        }
        // The chosen probe meets the budget; the recorded probe list says so.
        assert!(budget.max_abs >= cert.max_quant_error);
        let probe = searched
            .probes()
            .iter()
            .find(|p| p.format == chosen)
            .expect("chosen format was probed");
        assert!(probe.within_budget);

        // Width is a real cost axis: strictly narrower word, strictly
        // lower synthesised area (and never higher at equal width).
        let outcome = searched.outcome();
        if chosen.width < default_fmt.width {
            assert!(
                outcome.chosen_area_luts < outcome.default_area_luts,
                "{}: {chosen} area {} !< {default_fmt} area {}",
                algo.name,
                outcome.chosen_area_luts,
                outcome.default_area_luts
            );
            assert!(searched.area_saving() > 0.0);
        } else if chosen == default_fmt {
            assert_eq!(outcome.chosen_area_luts, outcome.default_area_luts);
        }

        // The searched format flows through to the generated package.
        let tuned = searched.session();
        let bundle = tuned.synthesize(arch.window, arch.depth).unwrap();
        assert!(bundle
            .bundle()
            .package
            .contains(&format!("DATA_WIDTH : integer := {}", chosen.width)));
    }
}

/// The store acceptance criterion: a warm re-search with the same budget is
/// a pure store lookup — zero new quantised builds (compiled programs,
/// golden-vector sets, certificates), the outcome served by pointer — and a
/// re-search with a *different* budget still reuses every previously probed
/// format's certificate.
#[test]
fn warm_research_does_zero_quantized_builds() {
    let device = Device::virtex6_xc6vlx760();
    let (session, init) = session_and_frames(&isl_hls::algorithms::gaussian_igf());
    let arch = Architecture::new(Window::square(4), 2, 1);
    let baseline = session.certify(&init, arch).unwrap();
    let budget = ErrorBudget::max_abs(baseline.certificate().max_quant_error);

    let first = session.search_format(&device, &init, arch, budget).unwrap();
    let cold = session.store_stats();
    assert_eq!(cold.searches.misses, 1);
    assert!(cold.certificates.misses > 1, "probes must certify");

    // Same budget: the stored outcome, by pointer, nothing rebuilt.
    let warm = session.search_format(&device, &init, arch, budget).unwrap();
    let stats = session.store_stats();
    assert!(Arc::ptr_eq(first.outcome(), warm.outcome()));
    assert_eq!(stats.searches.misses, 1);
    assert_eq!(stats.searches.hits, 1);
    assert_eq!(
        cold.quantized_build_misses(),
        stats.quantized_build_misses(),
        "warm re-search rebuilt quantised artifacts"
    );
    assert_eq!(cold.cones.misses, stats.cones.misses);
    assert_eq!(cold.syntheses.misses, stats.syntheses.misses);

    // Tighter budget: a different search key (so it runs), but every
    // previously probed format is served from the store — certificate
    // *hits* grow, and only genuinely new formats add misses.
    let before = session.store_stats();
    let tighter = session
        .search_format(&device, &init, arch, ErrorBudget::max_abs(budget.max_abs / 8.0))
        .unwrap();
    let after = session.store_stats();
    assert!(tighter.format().frac >= first.format().frac);
    assert!(
        after.certificates.hits > before.certificates.hits,
        "tighter re-search must reuse previously probed formats"
    );
    let new_formats: Vec<_> = tighter
        .probes()
        .iter()
        .filter(|p| first.probes().iter().all(|q| q.format != p.format))
        .collect();
    assert_eq!(
        after.certificates.misses - before.certificates.misses,
        new_formats.len(),
        "every re-probed format must come from the store"
    );
}

/// Randomised budgets on the blur kernel: every successful search returns a
/// format that meets its budget, whose certificate carries that exact
/// format, and whose binary search never skipped a narrower passing probe
/// (relative to the probes it made at the chosen integer width).
#[test]
fn random_budgets_yield_consistent_searches() {
    let device = Device::virtex6_xc6vlx760();
    let (session, init) = session_and_frames(&isl_hls::algorithms::gaussian_igf());
    let arch = Architecture::new(Window::square(4), 2, 1);
    check("random_budgets_yield_consistent_searches", 8, |rng: &mut Rng| {
        // Budgets spanning loose (coarse formats suffice) to tight
        // (fine fractional widths, possibly escalated integer bits).
        let exp = rng.f64_in(-7.0, -1.0);
        let budget = ErrorBudget::max_abs(10f64.powf(exp));
        let searched = session.search_format(&device, &init, arch, budget).unwrap();
        let chosen = searched.format();
        let cert = searched.certificate();
        assert_eq!(cert.format, chosen);
        assert!(budget.admits(cert.max_quant_error, cert.rms_quant_error));
        // Binary-search soundness relative to its own probes: no probe at
        // the chosen integer width with fewer fractional bits passed.
        for p in searched.probes() {
            let same_int = p.format.int_bits() == chosen.int_bits();
            if same_int && p.format.frac < chosen.frac {
                assert!(
                    !p.within_budget,
                    "probe {} passed but {} was chosen",
                    p.format, chosen
                );
            }
        }
        // Determinism: the same budget again returns the same format.
        let again = session.search_format(&device, &init, arch, budget).unwrap();
        assert_eq!(again.format(), chosen);
    });
}

/// Malformed budgets are reported as `FlowError::Format` at the
/// format-search stage, and an unreachable budget names the best probe.
#[test]
fn impossible_and_malformed_budgets_are_errors() {
    let device = Device::virtex6_xc6vlx760();
    let (session, init) = session_and_frames(&isl_hls::algorithms::gaussian_igf());
    let arch = Architecture::new(Window::square(4), 2, 1);

    for bad in [
        ErrorBudget::max_abs(0.0),
        ErrorBudget::max_abs(f64::NAN),
        ErrorBudget::max_abs(1e-3).with_rms(0.0),
        ErrorBudget::max_abs(1e-3).with_max_width(3),
        ErrorBudget::max_abs(1e-3).with_max_width(64),
    ] {
        let err = session.search_format(&device, &init, arch, bad).unwrap_err();
        assert!(matches!(err, FlowError::Format(_)), "{err}");
        assert!(err.to_string().contains("[format-search"), "{err}");
    }

    // An unreachable budget (below anything 54 bits can certify).
    let err = session
        .search_format(&device, &init, arch, ErrorBudget::max_abs(1e-300))
        .unwrap_err();
    assert!(matches!(err, FlowError::Format(_)), "{err}");
    let msg = err.to_string();
    assert!(msg.contains("no certifiable format"), "{msg}");
    assert!(msg.contains("best probe"), "{msg}");
}
