//! The staged session API: warm results bit-identical to cold recomputes,
//! zero redundant work on repeated pipelines (the acceptance criterion of
//! the artifact-store redesign), and a session hammered from threads.

use std::sync::Arc;

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_tests::arb::{arb_pattern, arb_window, frames_for};
use isl_tests::prop::{check, Rng};

/// The acceptance criterion of the staged-API redesign: a full
/// `explore → synthesize → certify` sequence on gaussian-IGF, run twice
/// through one session, performs **zero** redundant cone builds, pattern
/// compiles or calibration syntheses on the second pass — and the results
/// are bit-identical to the cold path.
#[test]
fn warm_pipeline_does_zero_redundant_work() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let session = IslSession::from_algorithm(&algo).unwrap();
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=5, 1..=3, 4);
    let workload = session.workload(32, 24);
    let init = FrameSet::from_frames(vec![synthetic::noise(32, 24, 7)]).unwrap();

    // Cold pass: everything is built.
    let explored1 = session.explore(&device, workload, &space).unwrap();
    let synth1 = explored1.synthesize_fastest().unwrap();
    let cert1 = explored1.certify_fastest(&init).unwrap();
    let cold = session.store_stats();
    assert!(cold.cones.misses > 0, "cold pass must build cones");
    assert!(cold.syntheses.misses > 0, "cold pass must run syntheses");
    assert!(cold.programs.misses > 0, "cold pass must compile programs");
    assert_eq!(cold.calibrations.misses, 1);
    assert_eq!(cold.certificates.misses, 1);

    // Warm pass: identical calls, zero new builds of any artifact kind.
    let explored2 = session.explore(&device, workload, &space).unwrap();
    let synth2 = explored2.synthesize_fastest().unwrap();
    let cert2 = explored2.certify_fastest(&init).unwrap();
    let warm = session.store_stats();
    assert_eq!(cold.cones.misses, warm.cones.misses, "redundant cone builds");
    assert_eq!(
        cold.programs.misses, warm.programs.misses,
        "redundant pattern/cone compiles"
    );
    assert_eq!(
        cold.syntheses.misses, warm.syntheses.misses,
        "redundant calibration syntheses"
    );
    assert_eq!(cold.calibrations.misses, warm.calibrations.misses);
    assert_eq!(cold.vectors.misses, warm.vectors.misses);
    assert_eq!(cold.certificates.misses, warm.certificates.misses);
    assert!(warm.total_hits() > cold.total_hits(), "warm pass must hit");

    // Bit-identical results (certificates carry every golden-vector word).
    assert_eq!(explored1.points(), explored2.points());
    assert_eq!(synth1.bundle(), synth2.bundle());
    assert_eq!(cert1.certificate(), cert2.certificate());
    // The warm certificate is literally the stored artifact.
    assert!(Arc::ptr_eq(cert1.certificate(), cert2.certificate()));
}

/// The deprecated façade and the staged API observe the same artifacts: a
/// certificate produced through `IslFlow::verify_architecture` equals the
/// session's stored one (and populates the same store).
#[test]
fn flow_shim_and_session_agree() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let flow = IslFlow::from_algorithm(&algo).unwrap();
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=4, 1..=2, 2);
    let explored = flow
        .explore(&device, flow.workload(24, 16), &space)
        .unwrap();
    let best = explored.fastest().unwrap();
    let init = FrameSet::from_frames(vec![synthetic::noise(24, 16, 9)]).unwrap();
    let by_flow = flow.verify_architecture(&init, best.arch).unwrap();
    let by_session = flow.session().certify(&init, best.arch).unwrap();
    assert_eq!(&by_flow, &**by_session.certificate());
}

/// Certified bundles ship the golden vectors: the vector files of the
/// certificate appear verbatim in the bundle, each with a replay testbench
/// and (for foreign shapes) its entity, plus the one-command GHDL script.
#[test]
fn certified_bundle_ships_vectors() {
    let algo = isl_hls::algorithms::gaussian_igf();
    // 2 does not divide 5 iterations → a remainder cone shape exists.
    let session = IslSession::from_algorithm(&algo).unwrap().with_iterations(5);
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=4, 2..=2, 2);
    let explored = session
        .explore(&device, session.workload(20, 12), &space)
        .unwrap();
    let init = FrameSet::from_frames(vec![synthetic::noise(20, 12, 3)]).unwrap();
    let certified = explored.certify_fastest(&init).unwrap();
    let cert = certified.certificate();
    assert!(cert.vector_files.len() >= 2, "main + remainder shapes");

    let bundle = certified.synthesize().unwrap().into_bundle();
    assert_eq!(bundle.vectors.len(), cert.vector_files.len());
    for (set, file) in bundle.vectors.iter().zip(&cert.vector_files) {
        assert_eq!(set.vectors, file.to_text());
        assert!(set.testbench.contains(&format!("tb_{}_vec", set.entity_name)));
        // Foreign shapes carry their own entity; the main shape reuses the
        // bundle's.
        if set.entity_name == bundle.entity_name {
            assert!(set.entity.is_none());
        } else {
            assert!(set.entity.as_deref().unwrap().contains("entity"));
        }
    }
    let script = bundle.ghdl_script();
    assert!(script.contains("ghdl -a"));
    for set in &bundle.vectors {
        assert!(script.contains(&format!("tb_{}_vec", set.entity_name)));
    }
    // files() covers every referenced source exactly once.
    let files = bundle.files();
    let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"run_ghdl.sh"));
    assert!(names.contains(&"isl_fixed_pkg.vhd"));
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate bundle file names");
}

/// Property: any stage result served from the artifact store is
/// bit-identical to a cold recompute in a fresh session — cones, compiled
/// engine outputs, and certificates, over random patterns and shapes.
#[test]
fn stored_artifacts_equal_cold_recompute() {
    check("stored_artifacts_equal_cold_recompute", 12, |rng: &mut Rng| {
        let pattern = arb_pattern(rng);
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let iterations = rng.u32_in(1, 5);
        let init = frames_for(&pattern, 13, 9, rng.u64());

        let warm_session = IslSession::from_pattern(pattern.clone(), iterations);
        // Populate the store, then ask again (served from the store).
        let _ = warm_session.decompose(window, depth).unwrap();
        let warm = warm_session.decompose(window, depth).unwrap();
        let cold = IslSession::from_pattern(pattern.clone(), iterations)
            .decompose(window, depth)
            .unwrap();
        assert!(warm_session.store_stats().cones.hits > 0);
        assert_eq!(warm.levels(), cold.levels());
        let (w, c) = (warm.main_cone(), cold.main_cone());
        assert_eq!(w.registers(), c.registers());
        assert_eq!(w.inputs(), c.inputs());
        assert_eq!(w.outputs().len(), c.outputs().len());

        // Compiled-engine outputs: second run (cached programs + cones)
        // bitwise equals a fresh session's first run.
        let a1 = warm_session
            .run_architecture(&init, Architecture::new(window, depth, 1))
            .unwrap();
        let a2 = warm_session
            .run_architecture(&init, Architecture::new(window, depth, 1))
            .unwrap();
        let b = IslSession::from_pattern(pattern.clone(), iterations)
            .run_architecture(&init, Architecture::new(window, depth, 1))
            .unwrap();
        isl_tests::arb::assert_bitwise_eq(&a1, &a2, "warm rerun");
        isl_tests::arb::assert_bitwise_eq(&a1, &b, "warm vs cold session");

        // Certificates: stored vs fresh-session recompute.
        let arch = Architecture::new(window, depth, 1);
        let warm_cert = warm_session.certify(&init, arch).unwrap();
        let warm_cert2 = warm_session.certify(&init, arch).unwrap();
        let cold_cert = IslSession::from_pattern(pattern, iterations)
            .certify(&init, arch)
            .unwrap();
        assert_eq!(warm_cert.certificate(), warm_cert2.certificate());
        assert_eq!(warm_cert.certificate(), cold_cert.certificate());
    });
}

/// Cache-path and recompute-path failures report identically: the stage
/// context wraps the error the same way whether the store had the artifact
/// or not.
#[test]
fn stage_errors_report_identically_on_both_paths() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let session = IslSession::from_algorithm(&algo).unwrap();
    // Depth 0 fails in cone construction; ask twice (both are recompute
    // paths — errors are never cached) and once through a warmed store.
    let e1 = session.decompose(Window::square(3), 0).unwrap_err();
    let e2 = session.decompose(Window::square(3), 0).unwrap_err();
    assert_eq!(e1, e2);
    let msg = e1.to_string();
    assert!(msg.contains("[decompose"), "stage tag missing: {msg}");
    assert!(msg.contains("w3x3_d0"), "artifact key missing: {msg}");

    // A feasibility failure in explore carries the explore stage.
    let device = Device::small_multimedia();
    let space = DesignSpace::new(9..=9, 5..=5, 1);
    let heavy = IslSession::from_algorithm(&isl_hls::algorithms::chambolle()).unwrap();
    let err = heavy
        .explore(&device, heavy.workload(256, 192), &space)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("[explore"), "stage tag missing: {msg}");
    // Same failure again — now the calibration is served from the store,
    // so the error surfaces through the cache path; it must read the same.
    let err2 = heavy
        .explore(&device, heavy.workload(256, 192), &space)
        .unwrap_err();
    assert_eq!(err, err2);
}

/// Hammer one session from {2, 4} threads: concurrent explores, simulations
/// and certifications against the shared store must all equal the serial
/// results, and every artifact kind must have been built at most the serial
/// number of times *plus races* (never more than thread-count times).
#[test]
fn concurrent_session_is_consistent() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=4, 1..=2, 3);

    // Serial reference.
    let serial = IslSession::from_algorithm(&algo).unwrap().with_threads(1);
    let workload = serial.workload(24, 18);
    let init = FrameSet::from_frames(vec![synthetic::noise(24, 18, 5)]).unwrap();
    let serial_explored = serial.explore(&device, workload, &space).unwrap();
    let best = serial_explored.fastest().unwrap().arch;
    let serial_cert = serial.certify(&init, best).unwrap();
    let serial_misses = serial.store_stats().total_misses();

    for threads in [2usize, 4] {
        let session = IslSession::from_algorithm(&algo).unwrap().with_threads(1);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let session = session.clone();
                    let init = &init;
                    let device = &device;
                    let space = &space;
                    scope.spawn(move || {
                        let explored = session.explore(device, workload, space).unwrap();
                        let best = explored.fastest().unwrap().arch;
                        let cert = session.certify(init, best).unwrap();
                        (explored, cert)
                    })
                })
                .collect();
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for (explored, cert) in &results {
                assert_eq!(explored.points(), serial_explored.points());
                assert_eq!(&**cert.certificate(), &**serial_cert.certificate());
            }
        });
        // Racing builders may duplicate work, but never more than one build
        // per thread per artifact — and the store must show real sharing.
        let misses = session.store_stats().total_misses();
        assert!(
            misses <= serial_misses * threads,
            "{threads} threads built {misses} artifacts (serial needs {serial_misses})"
        );
        assert!(session.store_stats().total_hits() > 0);
    }
}

/// The batch surface: `explore_many` over several workloads and devices
/// shares one-shape cones and calibration syntheses across the batch, and
/// each result equals its individually-computed counterpart.
#[test]
fn explore_many_shares_the_store() {
    let algo = isl_hls::algorithms::gaussian_igf();
    // Serial fan (threads = 1) so the miss counts are deterministic:
    // concurrent requests racing on a not-yet-built artifact may each
    // build it (by design — first insertion wins), which would make exact
    // miss assertions flaky on multicore machines. The concurrency test
    // above covers the racing behaviour.
    let session = IslSession::from_algorithm(&algo).unwrap().with_threads(1);
    let v6 = Device::virtex6_xc6vlx760();
    let mm = Device::small_multimedia();
    let space = DesignSpace::new(2..=4, 1..=2, 3);
    let requests = [
        ExploreRequest { device: &v6, workload: session.workload(64, 48), space: &space },
        ExploreRequest { device: &v6, workload: session.workload(128, 96), space: &space },
        ExploreRequest { device: &mm, workload: session.workload(64, 48), space: &space },
    ];
    let batch = session.explore_many(&requests);
    assert_eq!(batch.len(), 3);
    let batch: Vec<_> = batch.into_iter().map(|r| r.unwrap()).collect();

    // Cones are per-shape, not per-device/workload: the whole batch builds
    // each shape once (same iteration count everywhere).
    let after_batch = session.store_stats();
    let solo = IslSession::from_algorithm(&algo).unwrap();
    let solo_explored = solo.explore(&v6, session.workload(64, 48), &space).unwrap();
    assert_eq!(batch[0].points(), solo_explored.points());
    assert_eq!(
        after_batch.cones.misses,
        solo.store_stats().cones.misses,
        "batch across devices/workloads must not rebuild shared cone shapes"
    );

    // verify_many over two frame sets of the fastest instance.
    let init_a = FrameSet::from_frames(vec![synthetic::noise(24, 18, 1)]).unwrap();
    let init_b = FrameSet::from_frames(vec![synthetic::noise(24, 18, 2)]).unwrap();
    let arch = {
        let small = session
            .explore(&v6, session.workload(24, 18), &space)
            .unwrap();
        small.fastest().unwrap().arch
    };
    let verified = session.verify_many(&[
        VerifyRequest { init: &init_a, arch },
        VerifyRequest { init: &init_b, arch },
    ]);
    assert_eq!(verified.len(), 2);
    let certs: Vec<_> = verified.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(certs[0].arch(), arch);
    assert_ne!(
        certs[0].certificate().vector_files,
        certs[1].certificate().vector_files,
        "different frames, different vectors"
    );
}
