//! Properties of the telemetry subsystem: disabled-mode silence, race-free
//! counters under the worker pool, per-lane span nesting, Chrome-trace
//! JSON round-trips, and the run report of a fully observed pipeline.
//!
//! The collector is process-global, so every test here serialises on one
//! static lock — `cargo test`'s default thread-parallelism must not
//! interleave two tests' telemetry state.

use std::sync::{Mutex, MutexGuard};

use isl_hls::prelude::*;
use isl_hls::sim::parallel::for_each_task;
use isl_hls::sim::synthetic;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn disabled_mode_records_nothing() {
    let _guard = lock();
    isl_telemetry::start();
    isl_telemetry::set_enabled(false);

    let span = isl_telemetry::span("test", "should not exist");
    assert!(span.is_none(), "span() must be None while disabled");
    let span = isl_telemetry::span!("test", "fmt {}", 42);
    assert!(span.is_none(), "span!() must be None while disabled");
    isl_telemetry::add("test.disabled.counter", 7);
    isl_telemetry::sample("test.disabled.gauge", 7);

    let snap = isl_telemetry::snapshot();
    assert!(snap.spans.is_empty(), "no spans while disabled");
    assert!(
        !snap.counters.iter().any(|(n, _)| n.starts_with("test.disabled")),
        "no counters while disabled"
    );
    assert!(
        !snap.gauges.iter().any(|(n, _)| n.starts_with("test.disabled")),
        "no gauges while disabled"
    );
    assert_eq!(snap.dropped_spans, 0);
}

#[test]
fn counters_are_exact_under_pool_threads() {
    let _guard = lock();
    for threads in [2usize, 4] {
        isl_telemetry::start();
        let items: Vec<u64> = (0..1000).collect();
        for_each_task(items, threads, |i| {
            isl_telemetry::add("test.race.ones", 1);
            isl_telemetry::add("test.race.sum", i);
        });
        let snap = isl_telemetry::snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert_eq!(get("test.race.ones"), 1000, "with {threads} threads");
        assert_eq!(get("test.race.sum"), 999 * 1000 / 2, "with {threads} threads");
    }
    isl_telemetry::set_enabled(false);
}

#[test]
fn spans_nest_per_lane_across_pool_threads() {
    let _guard = lock();
    isl_telemetry::start();
    let outer = isl_telemetry::span("test", "batch");
    let items: Vec<usize> = (0..8).collect();
    for_each_task(items, 4, |i| {
        let _task = isl_telemetry::span!("test", "task {}", i);
        let _child = isl_telemetry::span("test", "child");
        std::hint::black_box(i);
    });
    drop(outer);
    let snap = isl_telemetry::snapshot();
    isl_telemetry::set_enabled(false);

    let tasks: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name.starts_with("task "))
        .collect();
    let children: Vec<_> = snap.spans.iter().filter(|s| s.name == "child").collect();
    assert_eq!(tasks.len(), 8);
    assert_eq!(children.len(), 8);
    // Every child must nest (lane, depth and interval) inside a task span
    // of its own lane — regardless of which pool thread ran it.
    for c in &children {
        let parent = tasks.iter().find(|t| {
            t.lane == c.lane
                && t.depth + 1 == c.depth
                && t.start_us <= c.start_us
                && c.start_us + c.dur_us <= t.start_us + t.dur_us
        });
        assert!(
            parent.is_some(),
            "child span on lane {} depth {} has no enclosing task",
            c.lane,
            c.depth
        );
    }
    // The batch span encloses everything on the submitting lane.
    let batch = snap
        .spans
        .iter()
        .find(|s| s.name == "batch")
        .expect("batch span recorded");
    for t in tasks.iter().filter(|t| t.lane == batch.lane) {
        assert_eq!(t.depth, batch.depth + 1, "tasks nest under batch");
    }
    // Every lane that ran spans is registered with a thread name.
    for s in &snap.spans {
        assert!(
            snap.threads.iter().any(|(id, _)| *id == s.lane),
            "lane {} has no registered thread name",
            s.lane
        );
    }
}

#[test]
fn chrome_trace_round_trips_through_json() {
    let _guard = lock();
    isl_telemetry::start();
    {
        let _a = isl_telemetry::span("stage", "Spec");
        let _b = isl_telemetry::span!("artifact", "cone w{}x{} d{}", 3, 3, 2);
    }
    isl_telemetry::add("test.trace.counter", 3);
    let trace = isl_telemetry::snapshot().chrome_trace();
    isl_telemetry::set_enabled(false);

    let parsed = isl_telemetry::json::parse(&trace).expect("trace parses as JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    let mut complete = 0;
    let mut metadata = 0;
    for ev in events {
        match ev.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                complete += 1;
                assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
                assert!(ev.get("ts").and_then(|v| v.as_num()).is_some());
                assert!(ev.get("dur").and_then(|v| v.as_num()).is_some());
                assert!(ev.get("tid").and_then(|v| v.as_num()).is_some());
            }
            Some("M") => metadata += 1,
            ph => panic!("unexpected event phase {ph:?}"),
        }
    }
    assert_eq!(complete, 2, "both spans exported as complete events");
    assert!(metadata >= 2, "process and thread metadata present");
}

#[test]
fn full_run_report_covers_all_stages() {
    let _guard = lock();
    let algo = isl_hls::algorithms::gaussian_igf();
    let session = IslSession::with_telemetry(algo.source).expect("parse");
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=3, 1..=2, 2);
    let (w, h) = (12u32, 10u32);

    let explored = session
        .explore(&device, session.workload(w, h), &space)
        .expect("explore");
    let best = explored.fastest().expect("feasible point").clone();
    session
        .decompose(best.arch.window, best.arch.depth)
        .expect("decompose");
    explored.synthesize_fastest().expect("synthesize");
    let init = FrameSet::from_frames(
        (0..session.pattern().fields().len())
            .map(|i| synthetic::noise(w as usize, h as usize, 0xACE + i as u64))
            .collect(),
    )
    .expect("frames");
    let certified = explored.certify_fastest(&init).expect("certify");
    let budget = ErrorBudget::max_abs(certified.certificate().max_quant_error);
    session
        .search_format(&device, &init, best.arch, budget)
        .expect("search");

    let report = session.telemetry_report();
    isl_telemetry::set_enabled(false);

    let stage_names: Vec<String> = report.stages().iter().map(|t| t.name.clone()).collect();
    for stage in [
        "Spec",
        "Decomposed",
        "Estimated",
        "Explored",
        "Synthesized",
        "Certified",
        "FormatSearched",
    ] {
        assert!(
            stage_names.iter().any(|n| n == stage),
            "stage {stage} missing from {stage_names:?}"
        );
    }

    let json = report.to_json();
    let parsed = isl_telemetry::json::parse(&json).expect("run report parses");
    let stages = parsed
        .get("stages")
        .and_then(|v| v.as_arr())
        .expect("stages array");
    assert_eq!(stages.len(), 7, "all seven stages in the JSON report");
    let pool = parsed.get("pool").expect("pool object");
    for key in ["queue_depth", "park_us", "batch_us", "batches", "tasks", "caller_tasks"] {
        assert!(pool.get(key).is_some(), "pool.{key} missing");
    }
    let caches = parsed.get("caches").expect("caches object");
    for kind in [
        "cones",
        "programs",
        "syntheses",
        "calibrations",
        "vectors",
        "certificates",
        "references",
        "searches",
    ] {
        assert!(caches.get(kind).is_some(), "caches.{kind} missing");
    }
    assert!(parsed.get("telemetry").is_some(), "embedded snapshot present");
    // The trace of the same run must load as JSON too.
    isl_telemetry::json::parse(&report.chrome_trace()).expect("trace parses");
    // The human summary names every stage.
    let text = report.to_string();
    assert!(text.contains("FormatSearched") && text.contains("worker pool"));
}
