//! Property tests for the data-parallel quantised datapath.
//!
//! Two layers, both bit-for-bit:
//!
//! 1. the **lane kernels** (`FixedFormat::unary_span` / `binary_span` /
//!    `quantize_span` / `dequantize_span`) against their scalar
//!    definitions, at every hardware width up to 64 bits and on the raw
//!    rails (`i64::MIN` included) where saturation arithmetic is most
//!    likely to wrap;
//! 2. the three **compiled quantised engines** (whole-frame,
//!    tiled-with-halos, cone-DAG lanes) against the tree-walking raw-word
//!    references, across the width ladder {8, 18, 31, 54, 63, 64}, every
//!    local border mode and the worker-thread matrix {1, 2, 4}.
//!
//! Together with `cosim_props.rs` (which pins the same engines to
//! `isl-cosim`'s integer VM and `isl_fpga::eval_fixed`), these make the
//! span kernels the single property-proven definition of the hardware
//! datapath.

use isl_tests::arb::{arb_local_border, arb_pattern, arb_window, assert_bitwise_eq, frames_for};
use isl_tests::prop::{check, Rng};

use isl_hls::fpga::FixedFormat;
use isl_hls::ir::{BinaryOp, UnaryOp};
use isl_hls::prelude::*;
use isl_hls::sim::Quantizer;

const THREAD_MATRIX: [usize; 3] = [1, 2, 4];

/// The width ladder: the narrow end (8), the device default (18), both
/// sides of the f64-exact boundary (31, 54), and the wide rails where
/// `i64` arithmetic itself is the hazard (63, 64).
const WIDTHS: [u32; 6] = [8, 18, 31, 54, 63, 64];

const UNARY_OPS: [UnaryOp; 3] = [UnaryOp::Neg, UnaryOp::Abs, UnaryOp::Sqrt];
const BINARY_OPS: [BinaryOp; 10] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Min,
    BinaryOp::Max,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
];

fn fmt_for(rng: &mut Rng, width: u32) -> FixedFormat {
    FixedFormat::new(width, rng.u32_in(1, width - 1))
}

/// An **in-format** raw word (the span-kernel contract) biased towards
/// the places saturating arithmetic breaks: the format rails — which at
/// width 64 are `i64::MIN`/`i64::MAX` themselves — zero and its
/// neighbours, plus uniformly random words.
fn arb_word(rng: &mut Rng, fmt: FixedFormat) -> i64 {
    match rng.weighted(&[3, 2, 2, 1, 1, 5]) {
        0 => 0,
        1 => fmt.max_raw(),
        2 => fmt.min_raw(),
        3 => 1,
        4 => -1,
        _ => {
            // Uniform over the format's raw range (i128 avoids the
            // width-64 span overflow).
            let span = fmt.max_raw() as i128 - fmt.min_raw() as i128 + 1;
            (fmt.min_raw() as i128 + (rng.u64() as i128 % span)) as i64
        }
    }
}

/// Span kernels are the scalar datapath, vectorised: for every width of
/// the ladder, every operator and rail-heavy random words — including
/// `i64::MIN`, where two's-complement negation overflows — the span
/// output equals element-wise `apply_unary` / `apply_binary` exactly.
#[test]
fn span_kernels_match_scalar_datapath_bitwise() {
    check("span_kernels_match_scalar_datapath_bitwise", 48, |rng| {
        let width = WIDTHS[rng.usize_in(0, WIDTHS.len() - 1)];
        let fmt = fmt_for(rng, width);
        let n = rng.usize_in(1, 97);
        let a: Vec<i64> = (0..n).map(|_| arb_word(rng, fmt)).collect();
        let b: Vec<i64> = (0..n).map(|_| arb_word(rng, fmt)).collect();
        let mut dst = vec![0i64; n];
        for op in UNARY_OPS {
            fmt.unary_span(op, &a, &mut dst);
            for (i, (&x, &d)) in a.iter().zip(&dst).enumerate() {
                assert_eq!(d, fmt.apply_unary(op, x), "{fmt} {op:?} lane {i} word {x}");
            }
        }
        for op in BINARY_OPS {
            fmt.binary_span(op, &a, &b, &mut dst);
            for (i, ((&x, &y), &d)) in a.iter().zip(&b).zip(&dst).enumerate() {
                assert_eq!(
                    d,
                    fmt.apply_binary(op, x, y),
                    "{fmt} {op:?} lane {i} words ({x}, {y})"
                );
            }
            // Whenever the constant-operand kernel claims an (op, c) pair
            // it must equal the scalar datapath too — this is the path the
            // compiled engines take for folded parameters like ÷λ.
            let c = arb_word(rng, fmt);
            if fmt.binary_span_const(op, &a, c, &mut dst) {
                for (i, (&x, &d)) in a.iter().zip(&dst).enumerate() {
                    assert_eq!(
                        d,
                        fmt.apply_binary(op, x, c),
                        "{fmt} {op:?} lane {i} word {x} const {c}"
                    );
                }
            }
        }
    });
}

/// Conversion spans equal their scalar definitions: `quantize_span`
/// matches per-sample `quantize` on rail-heavy `f64` input (NaN and
/// infinities included), and `dequantize_span` matches per-word
/// `dequantize` bit-for-bit.
#[test]
fn conversion_spans_match_scalar_bitwise() {
    check("conversion_spans_match_scalar_bitwise", 48, |rng| {
        let width = WIDTHS[rng.usize_in(0, WIDTHS.len() - 1)];
        let fmt = fmt_for(rng, width);
        let n = rng.usize_in(1, 64);
        let reals: Vec<f64> = (0..n)
            .map(|_| match rng.weighted(&[1, 1, 1, 1, 6]) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => fmt.max_value() * rng.f64_in(-4.0, 4.0),
                _ => rng.f64_in(-8.0, 8.0),
            })
            .collect();
        let mut words = vec![0i64; n];
        fmt.quantize_span(&reals, &mut words);
        for (i, (&v, &w)) in reals.iter().zip(&words).enumerate() {
            assert_eq!(w, fmt.quantize(v), "{fmt} quantize lane {i} value {v}");
        }
        let raw: Vec<i64> = (0..n).map(|_| arb_word(rng, fmt)).collect();
        let mut back = vec![0.0f64; n];
        fmt.dequantize_span(&raw, &mut back);
        for (i, (&w, &v)) in raw.iter().zip(&back).enumerate() {
            assert_eq!(
                v.to_bits(),
                fmt.dequantize(w).to_bits(),
                "{fmt} dequantize lane {i} word {w}"
            );
        }
    });
}

/// The compiled quantised **whole-frame** engine equals the tree-walking
/// raw-word reference bit-for-bit across the width ladder, every local
/// border mode and every thread count of the matrix.
#[test]
fn quantized_whole_frame_matches_reference_across_width_ladder() {
    check(
        "quantized_whole_frame_matches_reference_across_width_ladder",
        30,
        |rng| {
            let pattern = arb_pattern(rng);
            let border = arb_local_border(rng);
            let (w, h) = (rng.usize_in(1, 20), rng.usize_in(1, 20));
            let iters = rng.u32_in(1, 5);
            let width = WIDTHS[rng.usize_in(0, WIDTHS.len() - 1)];
            let q = Quantizer::from(fmt_for(rng, width));
            let init = frames_for(&pattern, w, h, rng.u64());
            let reference = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .run_quantized_reference(&init, iters, q)
                .expect("reference runs");
            for threads in THREAD_MATRIX {
                let got = Simulator::new(&pattern)
                    .expect("valid pattern")
                    .with_border(border)
                    .with_threads(threads)
                    .run_quantized(&init, iters, q)
                    .expect("compiled quantised run");
                assert_bitwise_eq(
                    &got,
                    &reference,
                    &format!("{w}x{h} border {border} iters {iters} q {q:?} threads {threads}"),
                );
            }
        },
    );
}

/// The compiled quantised **tiled** and **cone-DAG** engines equal their
/// tree-walking raw-word references bit-for-bit at the wide end of the
/// ladder (54, 63 and 64 bits) — the formats whose words no `f64` can
/// carry, so nothing but the raw word domain could even state the test.
#[test]
fn quantized_tiled_and_cone_dag_match_reference_at_wide_widths() {
    check(
        "quantized_tiled_and_cone_dag_match_reference_at_wide_widths",
        24,
        |rng| {
            let pattern = arb_pattern(rng);
            let border = arb_local_border(rng);
            let (w, h) = (rng.usize_in(1, 16), rng.usize_in(1, 16));
            let window = arb_window(rng);
            let depth = rng.u32_in(1, 3);
            let iters = rng.u32_in(1, 4);
            let width = [54, 63, 64][rng.usize_in(0, 2)];
            let q = Quantizer::from(fmt_for(rng, width));
            let init = frames_for(&pattern, w, h, rng.u64());
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(THREAD_MATRIX[rng.usize_in(0, THREAD_MATRIX.len() - 1)]);
            let what =
                format!("{w}x{h} border {border} window {window} depth {depth} iters {iters} q {q:?}");
            let tiled_ref = sim
                .run_tiled_quantized_reference(&init, iters, window, depth, q)
                .expect("tiled reference runs");
            let tiled = sim
                .run_tiled_quantized(&init, iters, window, depth, q)
                .expect("compiled tiled runs");
            assert_bitwise_eq(&tiled, &tiled_ref, &format!("tiled {what}"));
            let dag_ref = sim
                .run_cone_dag_quantized_reference(&init, iters, window, depth, q)
                .expect("cone reference runs");
            let dag = sim
                .run_cone_dag_quantized(&init, iters, window, depth, q)
                .expect("compiled cone dag runs");
            assert_bitwise_eq(&dag, &dag_ref, &format!("cone-dag {what}"));
        },
    );
}

/// Saturation rails hold end to end: a pattern that doubles a frame of
/// maximal words pins to the format rails (never wraps), identically in
/// the compiled engine and the reference, at the widths where naive
/// `i64` arithmetic would overflow.
#[test]
fn saturating_runs_pin_to_rails_at_wide_widths() {
    use isl_hls::ir::{Expr, FieldKind, Offset, StencilPattern};
    for width in [31, 54, 63, 64] {
        let fmt = FixedFormat::new(width, 2);
        let q = Quantizer::from(fmt);
        let mut p = StencilPattern::new(2).with_name("double");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Add,
                Expr::input(f, Offset::ZERO),
                Expr::input(f, Offset::ZERO),
            ),
        )
        .unwrap();
        let sim = Simulator::new(&p).expect("valid pattern");
        // Even width keeps flat index parity equal to column parity.
        let init = FrameSet::from_frames(vec![isl_hls::sim::Frame::from_fn(8, 6, |x, _| {
            if x % 2 == 0 {
                fmt.max_value()
            } else {
                fmt.min_value()
            }
        })])
        .expect("frames build");
        let got = sim.run_quantized(&init, 3, q).expect("quantised run");
        let reference = sim
            .run_quantized_reference(&init, 3, q)
            .expect("reference run");
        assert_bitwise_eq(&got, &reference, &format!("width {width} rails"));
        for (i, &v) in got.frame(0).as_slice().iter().enumerate() {
            let rail = if i % 2 == 0 { fmt.max_value() } else { fmt.min_value() };
            assert_eq!(v, rail, "width {width} sample {i} left the rail: {v}");
        }
    }
}
