//! Property tests for the compiled bytecode engine: `Simulator::step`/`run`
//! (and the quantised variant) must match the tree-walking golden reference
//! **bit for bit** — on random expressions over every operator, every border
//! mode, random frame shapes, and every built-in algorithm.

use isl_tests::prop::{check, Rng};

use isl_hls::ir::{BinaryOp, Expr, FieldId, FieldKind, Offset, StencilPattern, UnaryOp};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::sim::Quantizer;

/// Random expression over every op kind, any declared field, bounded depth
/// and radius ≤ 2. Values may blow up under iteration — irrelevant here,
/// since Inf/NaN must propagate identically through both engines.
fn arb_expr(rng: &mut Rng, fields: &[FieldId], n_params: usize, depth: u32) -> Expr {
    let leaf = |rng: &mut Rng| {
        match rng.weighted(&[4, 2, if n_params > 0 { 2 } else { 0 }]) {
            0 => {
                let f = fields[rng.usize_in(0, fields.len() - 1)];
                Expr::input(f, Offset::d2(rng.i32_in(-2, 2), rng.i32_in(-2, 2)))
            }
            1 => Expr::constant((rng.f64_in(-2.0, 2.0) * 8.0).round() / 8.0),
            _ => Expr::param(isl_hls::ir::ParamId::new(
                rng.usize_in(0, n_params - 1) as u16
            )),
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.weighted(&[3, 5, 2, 2]) {
        0 => leaf(rng),
        1 => {
            let op = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Min,
                BinaryOp::Max,
                BinaryOp::Lt,
                BinaryOp::Le,
                BinaryOp::Gt,
                BinaryOp::Ge,
            ][rng.usize_in(0, 9)];
            let lhs = arb_expr(rng, fields, n_params, depth - 1);
            let rhs = arb_expr(rng, fields, n_params, depth - 1);
            Expr::binary(op, lhs, rhs)
        }
        2 => {
            let op = [UnaryOp::Neg, UnaryOp::Abs, UnaryOp::Sqrt][rng.usize_in(0, 2)];
            Expr::unary(op, arb_expr(rng, fields, n_params, depth - 1))
        }
        _ => {
            let c = arb_expr(rng, fields, n_params, depth - 1);
            let t = arb_expr(rng, fields, n_params, depth - 1);
            let e = arb_expr(rng, fields, n_params, depth - 1);
            Expr::select(c, t, e)
        }
    }
}

/// Random pattern: 1–3 fields (first dynamic, rest mixed), 0–2 parameters,
/// one random update per dynamic field.
fn arb_pattern(rng: &mut Rng) -> StencilPattern {
    let mut p = StencilPattern::new(2).with_name("vmrand");
    let n_fields = rng.usize_in(1, 3);
    let mut ids = Vec::new();
    for i in 0..n_fields {
        let kind = if i == 0 || rng.bool() {
            FieldKind::Dynamic
        } else {
            FieldKind::Static
        };
        ids.push((p.add_field(format!("f{i}"), kind), kind));
    }
    let n_params = rng.usize_in(0, 2);
    for j in 0..n_params {
        p.add_param(format!("p{j}"), (rng.f64_in(-1.0, 1.0) * 8.0).round() / 8.0);
    }
    let all_ids: Vec<FieldId> = ids.iter().map(|(id, _)| *id).collect();
    for (id, kind) in &ids {
        if *kind == FieldKind::Dynamic {
            let depth = rng.u32_in(1, 4);
            let e = arb_expr(rng, &all_ids, n_params, depth);
            p.set_update(*id, e).expect("dynamic field");
        }
    }
    p
}

fn arb_border(rng: &mut Rng) -> BorderMode {
    match rng.weighted(&[1, 1, 1, 1]) {
        0 => BorderMode::Clamp,
        1 => BorderMode::Mirror,
        2 => BorderMode::Wrap,
        _ => BorderMode::Constant(rng.f64_in(-1.0, 1.0)),
    }
}

fn frames_for(p: &StencilPattern, w: usize, h: usize, seed: u64) -> FrameSet {
    FrameSet::from_frames(
        p.fields()
            .iter()
            .enumerate()
            .map(|(i, _)| synthetic::noise(w, h, seed ^ (i as u64) << 32))
            .collect(),
    )
    .expect("congruent")
}

fn assert_bitwise_eq(a: &FrameSet, b: &FrameSet, what: &str) {
    assert_eq!(a.len(), b.len());
    for fi in 0..a.len() {
        for (i, (x, y)) in a
            .frame(fi)
            .as_slice()
            .iter()
            .zip(b.frame(fi).as_slice())
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "{what}: field {fi} slot {i}: {x} ({:#x}) vs {y} ({:#x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }
}

/// The compiled engine equals `Expr::eval` bit-for-bit on random patterns,
/// frames, borders and thread counts.
#[test]
fn compiled_step_matches_tree_walk_bitwise() {
    check("compiled_step_matches_tree_walk_bitwise", 96, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 24), rng.usize_in(1, 24));
        let threads = rng.usize_in(1, 4);
        let iters = rng.u32_in(1, 3);
        let sim = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .with_threads(threads);
        let init = frames_for(&pattern, w, h, rng.u64());
        let compiled = sim.run(&init, iters).expect("compiled runs");
        let reference = sim.run_reference(&init, iters).expect("reference runs");
        assert_bitwise_eq(
            &compiled,
            &reference,
            &format!("{w}x{h} border {border} threads {threads}"),
        );
    });
}

/// Every built-in algorithm, every border mode: compiled == reference,
/// bit for bit, over several iterations.
#[test]
fn builtin_algorithms_match_bitwise() {
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Wrap,
            BorderMode::Constant(0.5),
        ] {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border);
            let init = frames_for(&pattern, 23, 17, 0xA1C0 ^ algo.name.len() as u64);
            let compiled = sim.run(&init, 4).expect("compiled runs");
            let reference = sim.run_reference(&init, 4).expect("reference runs");
            assert_bitwise_eq(
                &compiled,
                &reference,
                &format!("{} border {border}", algo.name),
            );
        }
    }
}

/// The quantised compiled engine (per-operation rounding) equals the
/// quantised tree walk bit for bit — for random patterns and the builtins.
#[test]
fn quantized_engine_matches_reference_bitwise() {
    check("quantized_engine_matches_reference_bitwise", 48, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 16), rng.usize_in(1, 16));
        let q = Quantizer::new(rng.u32_in(10, 30), rng.u32_in(4, 9));
        let sim = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border);
        let init = frames_for(&pattern, w, h, rng.u64());
        let compiled = sim.run_quantized(&init, 2, q).expect("compiled runs");
        let reference = sim
            .run_quantized_reference(&init, 2, q)
            .expect("reference runs");
        assert_bitwise_eq(&compiled, &reference, &format!("{w}x{h} border {border}"));
    });
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        let sim = Simulator::new(&pattern).expect("valid pattern");
        let init = frames_for(&pattern, 13, 11, 99);
        let q = Quantizer::q18_10();
        let compiled = sim.run_quantized(&init, 3, q).expect("compiled runs");
        let reference = sim
            .run_quantized_reference(&init, 3, q)
            .expect("reference runs");
        assert_bitwise_eq(&compiled, &reference, algo.name);
    }
}

/// `run_until_converged` (now on the compiled engine) still reaches the same
/// fixed point and report as stepping the reference engine by hand.
#[test]
fn convergence_on_compiled_engine_matches_reference() {
    let mut p = StencilPattern::new(2).with_name("damped");
    let f = p.add_field("f", FieldKind::Dynamic);
    let avg = Expr::binary(
        BinaryOp::Mul,
        Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]),
        Expr::constant(0.125),
    );
    let update = Expr::binary(
        BinaryOp::Add,
        Expr::binary(
            BinaryOp::Mul,
            Expr::input(f, Offset::ZERO),
            Expr::constant(0.5),
        ),
        avg,
    );
    p.set_update(f, update).unwrap();
    let sim = Simulator::new(&p).unwrap();
    let init = FrameSet::from_frames(vec![synthetic::noise(12, 9, 3)]).unwrap();
    let (fixed, report) = sim.run_until_converged(&init, 1e-8, 10_000).unwrap();
    assert!(report.converged);
    let by_hand = sim.run_reference(&init, report.iterations).unwrap();
    for (x, y) in fixed
        .frame(0)
        .as_slice()
        .iter()
        .zip(by_hand.frame(0).as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
