//! Property tests for the compiled bytecode engine: `Simulator::step`/`run`
//! (and the quantised variant) must match the tree-walking golden reference
//! **bit for bit** — on random expressions over every operator, every border
//! mode, random frame shapes, and every built-in algorithm.

use isl_tests::arb::{arb_border, arb_pattern, assert_bitwise_eq, frames_for};
use isl_tests::prop::check;

use isl_hls::ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern};
use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_hls::sim::Quantizer;

/// The compiled engine equals `Expr::eval` bit-for-bit on random patterns,
/// frames and borders, across an explicit worker-pool thread matrix.
#[test]
fn compiled_step_matches_tree_walk_bitwise() {
    check("compiled_step_matches_tree_walk_bitwise", 96, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 24), rng.usize_in(1, 24));
        let iters = rng.u32_in(1, 3);
        let init = frames_for(&pattern, w, h, rng.u64());
        let reference = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .run_reference(&init, iters)
            .expect("reference runs");
        for threads in [1, 2, 4] {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(threads);
            let compiled = sim.run(&init, iters).expect("compiled runs");
            assert_bitwise_eq(
                &compiled,
                &reference,
                &format!("{w}x{h} border {border} threads {threads}"),
            );
        }
    });
}

/// Every built-in algorithm, every border mode: compiled == reference,
/// bit for bit, over several iterations.
#[test]
fn builtin_algorithms_match_bitwise() {
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        for border in [
            BorderMode::Clamp,
            BorderMode::Mirror,
            BorderMode::Wrap,
            BorderMode::Constant(0.5),
        ] {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border);
            let init = frames_for(&pattern, 23, 17, 0xA1C0 ^ algo.name.len() as u64);
            let compiled = sim.run(&init, 4).expect("compiled runs");
            let reference = sim.run_reference(&init, 4).expect("reference runs");
            assert_bitwise_eq(
                &compiled,
                &reference,
                &format!("{} border {border}", algo.name),
            );
        }
    }
}

/// The quantised compiled engine (per-operation rounding) equals the
/// quantised tree walk bit for bit — for random patterns and the builtins.
#[test]
fn quantized_engine_matches_reference_bitwise() {
    check("quantized_engine_matches_reference_bitwise", 48, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 16), rng.usize_in(1, 16));
        let q = Quantizer::new(rng.u32_in(10, 30), rng.u32_in(4, 9));
        let sim = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border);
        let init = frames_for(&pattern, w, h, rng.u64());
        let compiled = sim.run_quantized(&init, 2, q).expect("compiled runs");
        let reference = sim
            .run_quantized_reference(&init, 2, q)
            .expect("reference runs");
        assert_bitwise_eq(&compiled, &reference, &format!("{w}x{h} border {border}"));
    });
    for algo in isl_hls::algorithms::all() {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        let sim = Simulator::new(&pattern).expect("valid pattern");
        let init = frames_for(&pattern, 13, 11, 99);
        let q = Quantizer::q18_10();
        let compiled = sim.run_quantized(&init, 3, q).expect("compiled runs");
        let reference = sim
            .run_quantized_reference(&init, 3, q)
            .expect("reference runs");
        assert_bitwise_eq(&compiled, &reference, algo.name);
    }
}

/// `run_until_converged` (now on the compiled engine) still reaches the same
/// fixed point and report as stepping the reference engine by hand.
#[test]
fn convergence_on_compiled_engine_matches_reference() {
    let mut p = StencilPattern::new(2).with_name("damped");
    let f = p.add_field("f", FieldKind::Dynamic);
    let avg = Expr::binary(
        BinaryOp::Mul,
        Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]),
        Expr::constant(0.125),
    );
    let update = Expr::binary(
        BinaryOp::Add,
        Expr::binary(
            BinaryOp::Mul,
            Expr::input(f, Offset::ZERO),
            Expr::constant(0.5),
        ),
        avg,
    );
    p.set_update(f, update).unwrap();
    let sim = Simulator::new(&p).unwrap();
    let init = FrameSet::from_frames(vec![synthetic::noise(12, 9, 3)]).unwrap();
    let (fixed, report) = sim.run_until_converged(&init, 1e-8, 10_000).unwrap();
    assert!(report.converged);
    let by_hand = sim.run_reference(&init, report.iterations).unwrap();
    for (x, y) in fixed
        .frame(0)
        .as_slice()
        .iter()
        .zip(by_hand.frame(0).as_slice())
    {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
