//! The persistent artifact store: disk-served results bit-identical to
//! cold recomputes, full pipelines replayed warm across process
//! "restarts" (a fresh session on the same store file), and corruption
//! degrading to cold builds with counted skips — never a panic, never a
//! wrong answer.

use std::path::PathBuf;

use isl_hls::prelude::*;
use isl_hls::sim::synthetic;
use isl_tests::arb::{arb_pattern, arb_window, frames_for};
use isl_tests::prop::{check, Rng};

/// A store path in a fresh per-test temp directory.
fn store_path(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("isl-persist-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{test}.islstore"))
}

/// Property: certificates served from the disk tier are bit-identical to
/// a cold recompute in a fresh, memory-only session — across random
/// patterns, windows and depths. The serving session performs zero
/// builds of any kind.
#[test]
fn disk_served_artifacts_equal_cold_recompute() {
    check("disk_served_artifacts_equal_cold_recompute", 8, |rng: &mut Rng| {
        let pattern = arb_pattern(rng);
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 2);
        let iterations = rng.u32_in(1, 4);
        let init = frames_for(&pattern, 11, 7, rng.u64());
        let arch = Architecture::new(window, depth, 1);
        let path = store_path(&format!("equal-cold-{}", rng.u64()));

        // Writer process: certify once, flush on drop.
        {
            let writer = IslSession::from_pattern(pattern.clone(), iterations)
                .with_persistent_store(&path)
                .unwrap();
            writer.certify(&init, arch).unwrap();
        }

        // Reader "process": same store file, fresh caches.
        let reader = IslSession::from_pattern(pattern.clone(), iterations)
            .with_persistent_store(&path)
            .unwrap();
        let warm = reader.certify(&init, arch).unwrap();
        let stats = reader.store_stats();
        assert!(stats.disk_hits > 0, "certificate must come from disk");
        assert_eq!(stats.certificates.misses, 0, "disk hit must not count as a build");
        assert_eq!(stats.vectors.misses, 0, "vectors ride inside the certificate");
        assert_eq!(stats.load_skipped_corrupt, 0);

        // Cold recompute in a memory-only session: bit-identical.
        let cold = IslSession::from_pattern(pattern, iterations)
            .certify(&init, arch)
            .unwrap();
        assert_eq!(warm.certificate(), cold.certificate());
        std::fs::remove_file(&path).ok();
    });
}

/// The acceptance criterion of the persistence tentpole: a full
/// `explore → certify → search_format` pipeline, replayed by a fresh
/// session on the same store file, performs **zero** new cone builds,
/// pattern compiles, calibration syntheses — zero misses of any kind —
/// and returns bit-identical results.
#[test]
fn restart_replays_full_pipeline_warm() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let device = Device::virtex6_xc6vlx760();
    let space = DesignSpace::new(2..=4, 1..=2, 2);
    let init = FrameSet::from_frames(vec![synthetic::noise(24, 16, 11)]).unwrap();
    let arch = Architecture::new(Window::square(2), 1, 1);
    let budget = ErrorBudget::max_abs(1e-3);
    let path = store_path("restart-warm");
    std::fs::remove_file(&path).ok();

    let run = |session: &IslSession| {
        let explored = session
            .explore(&device, session.workload(24, 16), &space)
            .unwrap();
        let cert = session.certify(&init, arch).unwrap();
        let search = session.search_format(&device, &init, arch, budget).unwrap();
        (
            explored.points().to_vec(),
            cert.certificate().clone(),
            search.outcome().clone(),
        )
    };

    // First process: cold, builds everything, checkpoints explicitly.
    let first = IslSession::from_algorithm(&algo)
        .unwrap()
        .with_persistent_store(&path)
        .unwrap();
    let (points1, cert1, search1) = run(&first);
    let cold = first.store_stats();
    assert!(cold.cones.misses > 0 && cold.calibrations.misses > 0);
    let flushed = first.checkpoint().unwrap();
    assert!(flushed > 0, "checkpoint must write the dirty artifacts");
    drop(first);

    // Second process: same file, fresh everything. Zero builds.
    let second = IslSession::from_algorithm(&algo)
        .unwrap()
        .with_persistent_store(&path)
        .unwrap();
    let (points2, cert2, search2) = run(&second);
    let warm = second.store_stats();
    assert_eq!(warm.cones.misses, 0, "restart rebuilt cones");
    assert_eq!(warm.programs.misses, 0, "restart recompiled programs");
    assert_eq!(warm.syntheses.misses, 0, "restart re-ran syntheses");
    assert_eq!(warm.calibrations.misses, 0, "restart re-calibrated");
    assert_eq!(warm.vectors.misses, 0, "restart re-simulated vectors");
    assert_eq!(warm.certificates.misses, 0, "restart re-certified");
    assert_eq!(warm.searches.misses, 0, "restart re-searched");
    assert!(warm.disk_hits > 0, "nothing came from the disk tier");
    assert_eq!(warm.load_skipped_corrupt, 0);

    // Bit-identical results (points carry f64s; certificates carry every
    // golden-vector word).
    assert_eq!(points1, points2);
    assert_eq!(cert1, cert2);
    assert_eq!(search1.chosen, search2.chosen);
    assert_eq!(search1.probes, search2.probes);
    assert_eq!(search1.certificate, search2.certificate);
    std::fs::remove_file(&path).ok();
}

/// Corrupting the store file on disk degrades to cold recomputes with
/// counted skips: the session still opens, still answers, answers are
/// still bit-identical to a clean run — and the corruption shows up in
/// `StoreStats::load_skipped_corrupt`, never as a panic.
#[test]
fn corruption_degrades_to_cold_with_counted_skips() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let init = FrameSet::from_frames(vec![synthetic::noise(16, 12, 5)]).unwrap();
    let arch = Architecture::new(Window::square(2), 1, 1);
    let path = store_path("corrupt-degrade");
    std::fs::remove_file(&path).ok();

    let reference = {
        let session = IslSession::from_algorithm(&algo)
            .unwrap()
            .with_persistent_store(&path)
            .unwrap();
        session.certify(&init, arch).unwrap().certificate().clone()
    };

    // Flip a byte in every 64-byte window of the record region — enough
    // to guarantee at least one record dies whatever the layout.
    let mut bytes = std::fs::read(&path).unwrap();
    let mut at = 32;
    while at < bytes.len() {
        bytes[at] ^= 0x40;
        at += 64;
    }
    std::fs::write(&path, &bytes).unwrap();

    let session = IslSession::from_algorithm(&algo)
        .unwrap()
        .with_persistent_store(&path)
        .unwrap();
    let again = session.certify(&init, arch).unwrap();
    let stats = session.store_stats();
    assert!(
        stats.load_skipped_corrupt > 0,
        "corruption must be counted: {stats}"
    );
    assert_eq!(*again.certificate(), reference, "corrupt store changed an answer");
    std::fs::remove_file(&path).ok();
}

/// The checked-in corruption fixtures (`tests/corpus/persist/`) replay:
/// every fixture image loads without a panic and yields exactly the
/// survivor/skip counts its manifest records. Regenerate with
/// `isl-fuzz persist --write-fixtures tests/corpus/persist` after a
/// format-version bump.
#[test]
fn persist_corpus_fixtures_replay() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .join("tests/corpus/persist");
    let names = isl_fuzz::replay_fixtures(&dir).unwrap();
    assert!(names.len() >= 5, "fixture set shrank: {names:?}");
}
