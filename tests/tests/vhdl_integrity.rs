//! Integration checks on the VHDL backend across the whole algorithm
//! library: structural validity, port/register bookkeeping, testbench
//! consistency and pipeline-balancing invariants.

use isl_hls::algorithms::all;
use isl_hls::prelude::*;
use isl_hls::vhdl::{
    check, generate_cone, generate_testbench, generate_wrapper, validate_wrapper, VhdlOptions,
};

#[test]
fn generated_vhdl_is_structurally_valid_across_the_library() {
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        for (side, depth) in [(1u32, 1u32), (2, 1), (3, 2), (2, 3)] {
            let depth = depth.min(flow.iterations());
            let cone = flow.build_cone(Window::square(side), depth).unwrap();
            let module = generate_cone(&cone, &VhdlOptions::default());
            let s = check::validate(&module.code).unwrap_or_else(|e| {
                panic!("{} w{side} d{depth}: {e}\n{}", algo.name, module.code)
            });
            assert_eq!(s.entity, module.entity_name, "{}", algo.name);
            assert_eq!(module.signal_count, cone.registers(), "{}", algo.name);
        }
    }
}

#[test]
fn port_counts_match_cone_interface() {
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let depth = flow.iterations().min(2);
        let cone = flow.build_cone(Window::square(2), depth).unwrap();
        let module = generate_cone(&cone, &VhdlOptions::default());
        let data_in = module
            .ports
            .iter()
            .filter(|p| {
                !p.is_control && p.direction == isl_hls::vhdl::PortDirection::In
            })
            .count();
        let data_out = module
            .ports
            .iter()
            .filter(|p| {
                !p.is_control && p.direction == isl_hls::vhdl::PortDirection::Out
            })
            .count();
        let params = flow.pattern().params().len();
        assert_eq!(
            data_in,
            cone.inputs().len() + cone.static_inputs().len() + params,
            "{}: data inputs",
            algo.name
        );
        assert_eq!(data_out, cone.outputs().len(), "{}: data outputs", algo.name);
    }
}

#[test]
fn testbenches_assert_every_output() {
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let depth = flow.iterations().min(2);
        let cone = flow.build_cone(Window::square(2), depth).unwrap();
        let module = generate_cone(&cone, &VhdlOptions::default());
        let tb = generate_testbench(&cone, &module, FixedFormat::default());
        assert_eq!(
            tb.matches("assert abs(").count(),
            cone.outputs().len(),
            "{}",
            algo.name
        );
        assert!(tb.contains(&format!("dut : entity work.{}", module.entity_name)));
    }
}

#[test]
fn tile_wrappers_validate_across_the_library() {
    for algo in all() {
        let flow = IslFlow::from_algorithm(&algo).unwrap();
        let depth = flow.iterations().min(2);
        let cone = flow.build_cone(Window::square(2), depth).unwrap();
        let module = generate_cone(&cone, &VhdlOptions::default());
        let wrapper = generate_wrapper(&cone, &module);
        validate_wrapper(&wrapper, &module)
            .unwrap_or_else(|e| panic!("{}: {e}\n{}", algo.name, wrapper.code));
        assert_eq!(
            wrapper.window_elements,
            cone.inputs().len() + cone.static_inputs().len(),
            "{}",
            algo.name
        );
    }
}

#[test]
fn pipeline_depth_equals_valid_chain_length() {
    let flow = IslFlow::from_algorithm(&isl_hls::algorithms::chambolle()).unwrap();
    let cone = flow.build_cone(Window::square(2), 2).unwrap();
    let module = generate_cone(&cone, &VhdlOptions::default());
    assert!(module
        .code
        .contains(&format!("signal valid_sr : std_logic_vector(1 to {});", module.pipeline_stages)));
    assert!(module
        .code
        .contains(&format!("out_valid <= valid_sr({});", module.pipeline_stages)));
}

#[test]
fn delay_registers_only_when_paths_are_unbalanced() {
    // A pure chain (single tap scaled) needs no balancing delays.
    let src = r#"
void chainy(const float in[N], float out[N]) {
    for (int i = 0; i < N; i++)
        out[i] = ((in[i] * 0.5f) * 0.5f) * 0.5f;
}
"#;
    let flow = IslFlow::from_source(src).unwrap();
    let cone = flow.build_cone(Window::line(1), 1).unwrap();
    let module = generate_cone(&cone, &VhdlOptions::default());
    assert_eq!(module.delay_registers, 0, "{}", module.code);
    check::validate(&module.code).unwrap();
}

#[test]
fn fixed_package_matches_format_width() {
    for fmt in [FixedFormat::new(12, 6), FixedFormat::new(24, 12)] {
        let pkg = isl_hls::vhdl::fixed_package(fmt);
        assert!(pkg.contains(&format!("DATA_WIDTH : integer := {}", fmt.width)));
        assert!(pkg.contains(&format!("DATA_FRAC  : integer := {}", fmt.frac)));
        check::validate_package(&pkg).unwrap();
    }
}
