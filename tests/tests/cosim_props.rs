//! Property tests for the bit-true co-simulation subsystem.
//!
//! Three layers of hardware/software equivalence, all bit-for-bit:
//!
//! 1. the **quantised compiled engines** (`run_tiled_quantized`,
//!    `run_cone_dag_quantized`) against their tree-walking references, on
//!    random patterns over every operator, borders, window shapes,
//!    non-divisor depths and the worker-thread matrix `{1, 2, 4}`;
//! 2. the **integer fixed-point VM** (`isl-cosim`) against the independent
//!    fixed-point graph interpreter (`isl_fpga::eval_fixed`);
//! 3. the **golden-vector exchange**: generated vectors certify cleanly,
//!    survive a text round-trip, drive a structurally valid testbench —
//!    and a deliberately injected rounding fault is caught and triaged to
//!    the exact window, level and instruction.

use isl_tests::arb::{
    arb_border, arb_local_border, arb_pattern, arb_window, assert_bitwise_eq, frames_for,
};
use isl_tests::prop::{check, Rng};

use isl_hls::cosim::{eval_cone_raw, quantizer_of, CoSimulator, Fault};
use isl_hls::fpga::{eval_fixed, FixedFormat};
use isl_hls::ir::Cone;
use isl_hls::prelude::*;
use isl_hls::sim::{CompiledCone, Quantizer};
use isl_hls::vhdl::check::{verify_vectors, VectorCheckError};
use isl_hls::vhdl::{generate_cone, generate_vector_testbench, VectorFile, VhdlOptions};

const THREAD_MATRIX: [usize; 3] = [1, 2, 4];

fn arb_quantizer(rng: &mut Rng) -> Quantizer {
    let width = rng.u32_in(10, 26);
    let frac = rng.u32_in(2, width - 4);
    Quantizer::new(width, frac)
}

/// Compiled quantised tiled execution equals the tree-walking quantised
/// tiled reference bit-for-bit: random patterns, local borders, window
/// shapes, depths with remainders, random fixed-point formats, and every
/// thread count of the matrix.
#[test]
fn quantized_tiled_matches_reference_bitwise() {
    check("quantized_tiled_matches_reference_bitwise", 40, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_local_border(rng);
        let (w, h) = (rng.usize_in(1, 20), rng.usize_in(1, 20));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 4);
        let iters = rng.u32_in(1, 6);
        let q = arb_quantizer(rng);
        let init = frames_for(&pattern, w, h, rng.u64());
        let reference = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .run_tiled_quantized_reference(&init, iters, window, depth, q)
            .expect("reference runs");
        for threads in THREAD_MATRIX {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(threads);
            let tiled = sim
                .run_tiled_quantized(&init, iters, window, depth, q)
                .expect("compiled quantised tiled runs");
            assert_bitwise_eq(
                &tiled,
                &reference,
                &format!(
                    "{w}x{h} border {border} window {window} depth {depth} iters {iters} q {q:?} threads {threads}"
                ),
            );
        }
    });
}

/// Rounding commutes with the tiling: the quantised tiled run (any window,
/// any depth, halo recompute included) is bit-identical to the quantised
/// *whole-frame* run for local borders — every level recomputes exactly the
/// same rounded words the frame-at-once engine produces.
#[test]
fn quantized_tiled_matches_quantized_whole_frame() {
    check("quantized_tiled_matches_quantized_whole_frame", 32, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_local_border(rng);
        let (w, h) = (rng.usize_in(1, 18), rng.usize_in(1, 18));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 4);
        let iters = rng.u32_in(1, 5);
        let q = arb_quantizer(rng);
        let init = frames_for(&pattern, w, h, rng.u64());
        let sim = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border);
        let whole = sim.run_quantized(&init, iters, q).expect("whole-frame runs");
        let tiled = sim
            .run_tiled_quantized(&init, iters, window, depth, q)
            .expect("tiled runs");
        assert_bitwise_eq(
            &tiled,
            &whole,
            &format!("{w}x{h} border {border} window {window} depth {depth} iters {iters}"),
        );
    });
}

/// Compiled quantised cone-DAG execution equals the rounding graph walk
/// bit-for-bit — any border (cones resolve borders at the base only), any
/// window/depth, every thread count of the matrix.
#[test]
fn quantized_cone_dag_matches_reference_bitwise() {
    check("quantized_cone_dag_matches_reference_bitwise", 32, |rng| {
        let pattern = arb_pattern(rng);
        let border = arb_border(rng);
        let (w, h) = (rng.usize_in(1, 18), rng.usize_in(1, 18));
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let iters = rng.u32_in(1, 5);
        let q = arb_quantizer(rng);
        let init = frames_for(&pattern, w, h, rng.u64());
        let reference = Simulator::new(&pattern)
            .expect("valid pattern")
            .with_border(border)
            .run_cone_dag_quantized_reference(&init, iters, window, depth, q)
            .expect("reference runs");
        for threads in THREAD_MATRIX {
            let sim = Simulator::new(&pattern)
                .expect("valid pattern")
                .with_border(border)
                .with_threads(threads);
            let dag = sim
                .run_cone_dag_quantized(&init, iters, window, depth, q)
                .expect("compiled quantised cone dag runs");
            assert_bitwise_eq(
                &dag,
                &reference,
                &format!(
                    "{w}x{h} border {border} window {window} depth {depth} iters {iters} threads {threads}"
                ),
            );
        }
    });
}

/// The integer fixed-point VM executes lowered cone bytecode bit-identical
/// to the independent fixed-point graph interpreter, on random patterns and
/// cone shapes — the two implementations share only the per-operation
/// datapath functions, not the evaluation strategy.
#[test]
fn integer_vm_matches_graph_interpreter_bitwise() {
    check("integer_vm_matches_graph_interpreter_bitwise", 48, |rng| {
        let pattern = arb_pattern(rng);
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let width = rng.u32_in(10, 30);
        let fmt = FixedFormat::new(width, rng.u32_in(2, width - 4));
        let params: Vec<f64> = pattern.params().iter().map(|p| p.default).collect();
        let cone = Cone::build(&pattern, window, depth).expect("cone builds");
        let cc = CompiledCone::compile_with(&cone, &params, false);
        let seed = rng.u64();
        let stim = move |f: u16, x: i32, y: i32| -> f64 {
            let k = (x as i64 * 31 + y as i64 * 57 + f as i64 * 13) as u64 ^ seed;
            ((k % 97) as f64) / 16.0 - 3.0
        };
        let got = eval_cone_raw(&cc, fmt, |f, x, y| fmt.quantize(stim(f, x, y)));
        let want = eval_fixed(
            &cone,
            fmt,
            |f, pt| stim(f.index() as u16, pt.x, pt.y),
            &params,
        );
        assert_eq!(got.len(), want.len());
        for ((g, (_, pt, wv)), slot) in got.iter().zip(&want).zip(cc.outputs()) {
            assert_eq!(
                fmt.dequantize(*g).to_bits(),
                wv.to_bits(),
                "window {window} depth {depth} {fmt} out ({}, {}) / slot ({}, {})",
                pt.x,
                pt.y,
                slot.px,
                slot.py
            );
        }
    });
}

/// Golden vectors round-trip end to end on two real algorithms: generate →
/// certify (zero mismatches) → serialise → parse → re-certify → replay in a
/// structurally valid vector testbench.
#[test]
fn golden_vector_roundtrip_two_algorithms() {
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let (pattern, _) = algo.compile().expect("builtin compiles");
        let fmt = FixedFormat::default();
        let cosim = CoSimulator::new(&pattern, fmt).expect("co-simulator builds");
        let init = frames_for(&pattern, 20, 16, 0xB17 ^ algo.name.len() as u64);
        let files = cosim
            .golden_vectors(&init, 5, Window::square(4), 2)
            .expect("vectors generate");
        // 5 iterations at depth 2 = two distinct shapes (main + remainder).
        assert_eq!(files.len(), 2, "{}", algo.name);
        for file in &files {
            let cone = Cone::build(&pattern, file.window, file.depth).expect("cone builds");
            let report = verify_vectors(&cone, fmt, file)
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name));
            assert_eq!(report.records, file.records.len());
            assert!(report.words > 0);
            // Text round-trip is lossless and re-certifies.
            let reparsed = VectorFile::parse(&file.to_text()).expect("parses");
            assert_eq!(&reparsed, file, "{}", algo.name);
            verify_vectors(&cone, fmt, &reparsed).expect("reparsed file certifies");
            // The vector testbench mode consumes the file.
            let module = generate_cone(&cone, &VhdlOptions { format: fmt });
            let tb = generate_vector_testbench(&module, file).expect("testbench generates");
            assert!(tb.contains(&format!("entity tb_{}_vec is", module.entity_name)));
            isl_hls::vhdl::check::balance_only(&tb).expect("testbench is balanced");
        }
    }
}

/// The co-simulator's integer run and the simulator's quantised run are the
/// *same* hardware, twice: since the quantised engines moved into the raw
/// word domain, both sides execute the identical saturating/truncating
/// datapath and must agree bit for bit — no drift allowance at all.
#[test]
fn integer_run_tracks_quantized_run() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let (pattern, _) = algo.compile().expect("builtin compiles");
    let fmt = FixedFormat::default();
    let q = quantizer_of(fmt);
    let init = frames_for(&pattern, 16, 12, 99);
    let cosim = CoSimulator::new(&pattern, fmt).expect("co-simulator builds");
    let fixed = cosim
        .run_cone_levels(&init, 4, Window::square(4), 2)
        .expect("integer run")
        .dequantize(fmt);
    let quantized = Simulator::new(&pattern)
        .expect("valid")
        .run_cone_dag_quantized(&init, 4, Window::square(4), 2, q)
        .expect("quantised run");
    assert_bitwise_eq(&fixed, &quantized, "cosim integer vs sim quantised");
}

/// A deliberately injected single-LSB rounding fault anywhere in the cone
/// datapath is caught by the golden-vector check and triaged to the exact
/// window, level and instruction.
#[test]
fn injected_fault_is_caught_and_triaged() {
    let algo = isl_hls::algorithms::gaussian_igf();
    let (pattern, _) = algo.compile().expect("builtin compiles");
    let fmt = FixedFormat::default();
    let params: Vec<f64> = pattern.params().iter().map(|p| p.default).collect();
    let cone = Cone::build(&pattern, Window::square(3), 2).expect("cone builds");
    let cc = CompiledCone::compile_with(&cone, &params, false);
    // Fault the last instruction: post-DCE it necessarily produces an
    // output word, so the corruption cannot be masked downstream.
    let fault = Fault::bit_flip(cc.len() - 1, 1);
    let init = frames_for(&pattern, 12, 9, 4242);
    let clean = CoSimulator::new(&pattern, fmt).expect("builds");
    let faulty = CoSimulator::new(&pattern, fmt).expect("builds").with_fault(fault);

    let good = clean
        .golden_vectors(&init, 4, Window::square(3), 2)
        .expect("clean vectors");
    let bad = faulty
        .golden_vectors(&init, 4, Window::square(3), 2)
        .expect("faulty vectors");
    for file in &good {
        let c = Cone::build(&pattern, file.window, file.depth).expect("cone");
        verify_vectors(&c, fmt, file).expect("clean vectors certify");
        assert!(clean.triage_vectors(file).expect("triage runs").is_clean());
    }
    // The faulty main-shape file must fail certification...
    let bad_main = bad.iter().find(|f| f.depth == 2).expect("main shape");
    let c2 = Cone::build(&pattern, bad_main.window, bad_main.depth).expect("cone");
    let err = verify_vectors(&c2, fmt, bad_main).expect_err("fault must be caught");
    let VectorCheckError::Mismatch(m) = err else {
        panic!("expected a mismatch, got {err}");
    };
    // ...at the very first firing (the fault hits every window).
    assert_eq!((m.record, m.level), (0, 0));
    // ...and triage pinpoints the injected instruction.
    let report = faulty
        .triage_vectors(bad_main)
        .expect("triage runs")
        .into_report()
        .expect("divergence found");
    assert_eq!(report.record, 0);
    assert_eq!(report.level, 0);
    assert_eq!(report.port, m.port);
    // The report reads like a street address.
    let text = report.to_string();
    assert!(text.contains("instruction"), "{text}");
    let div = report.divergence.expect("fault hypothesis reproduces");
    assert_eq!(div.instr, fault.instr);
    assert_eq!(div.expected ^ 1, div.got);
    // The typed divergence names the instruction kind it localised to.
    assert!(!div.opcode.is_empty());
    assert!(!div.op.is_empty());
}

/// The flow-level acceptance gate: `verify_architecture` certifies
/// gaussian-IGF and chambolle at their DSE-chosen (window, depth)
/// decompositions — quantised compiled paths bit-identical to references,
/// golden vectors mismatch-free.
#[test]
fn verify_architecture_certifies_igf_and_chambolle() {
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let flow = IslFlow::from_algorithm(&algo).expect("flow builds");
        let device = Device::virtex6_xc6vlx760();
        let space = DesignSpace::new(2..=5, 1..=3, 4);
        let result = flow
            .explore(&device, flow.workload(24, 18), &space)
            .expect("explores");
        let best = result.fastest().expect("feasible point");
        let init = frames_for(flow.pattern(), 24, 18, 0x5EED ^ algo.name.len() as u64);
        let cert = flow
            .verify_architecture(&init, best.arch)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name));
        assert_eq!(cert.arch, best.arch);
        assert!(cert.quantized_elements > 0, "{}", algo.name);
        assert!(cert.vector_records > 0, "{}", algo.name);
        assert!(cert.vector_words > 0, "{}", algo.name);
        assert!(!cert.vector_files.is_empty(), "{}", algo.name);
        assert!(cert.max_fixed_error.is_finite(), "{}", algo.name);
    }
}
