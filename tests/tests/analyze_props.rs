//! Property tests for the `isl-analyze` static analyzer.
//!
//! Three soundness contracts, each checked against the *executing*
//! implementations rather than against the analyzer's own claims:
//!
//! 1. **Interval containment** — the abstract fact proven for every
//!    instruction of a lowered cone contains the concrete result word the
//!    bit-true integer VM computes for it, across random patterns, cone
//!    shapes, fixed-point formats and stimuli (and across the checked-in
//!    fuzz corpus at each entry's recorded configuration);
//! 2. **Verifier completeness and soundness** — the bytecode verifier
//!    accepts every program the compiler emits (random and corpus), and
//!    rejects hand-built programs that violate each checked invariant
//!    (CSE congruence, DCE, def-before-use, slot interference, retire
//!    permutations);
//! 3. **Predicted fault silence** — on both paper case studies, the
//!    known-bits prediction feeding the fault campaigns is a *non-empty
//!    subset* of the measured masked-or-silent outcomes, and the
//!    analysis-gated `search_format` returns bit-identical results to the
//!    ungated search while provably-saturating escalation probes are
//!    skipped.

use std::path::Path;

use isl_tests::arb::{arb_pattern, arb_window};
use isl_tests::prop::check;

use isl_hls::analyze::{self, Analysis, WordRange};
use isl_hls::cosim::{eval_cone_raw_traced, CoSimulator, MaskSchedule};
use isl_hls::prelude::*;
use isl_hls::sim::{synthetic, CompiledCone, CompiledPattern, Instr, QuantizedCone, QuantizedPattern};

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// Deterministic pseudo-random stimulus in `[-3, 3]`, pure in the
/// coordinates (CSE may merge reads, so the read closure must be a
/// function of the coordinates alone).
fn stim(seed: u64) -> impl Fn(u16, i32, i32) -> f64 {
    move |f: u16, x: i32, y: i32| {
        let k = (x as i64 * 31 + y as i64 * 57 + f as i64 * 13) as u64 ^ seed;
        ((k % 97) as f64) / 16.0 - 3.0
    }
}

/// Every abstract fact contains the concrete word the integer VM computes
/// for its instruction, over random patterns, cone shapes and formats.
/// This is the soundness theorem of the transfer functions, tested against
/// the real datapath instead of a model of it.
#[test]
fn abstract_facts_contain_concrete_cone_execution() {
    check("abstract_facts_contain_concrete_cone_execution", 48, |rng| {
        let pattern = arb_pattern(rng);
        let window = arb_window(rng);
        let depth = rng.u32_in(1, 3);
        let width = rng.u32_in(10, 30);
        let fmt = FixedFormat::new(width, rng.u32_in(2, width - 4));
        let params: Vec<f64> = pattern.params().iter().map(|p| p.default).collect();
        let cone = Cone::build(&pattern, window, depth).expect("cone builds");
        let cc = CompiledCone::compile_with(&cone, &params, false);

        let input = WordRange::new(fmt.quantize(-3.0), fmt.quantize(3.0));
        let analysis = Analysis::of_cone(&cc, fmt, input).expect("compiler output verifies");

        let s = stim(rng.u64());
        let (_outs, trace) =
            eval_cone_raw_traced(&cc, fmt, |f, x, y| fmt.quantize(s(f, x, y)), None);
        assert_eq!(analysis.len(), trace.len());
        for (i, word) in trace.iter().enumerate() {
            assert!(
                analysis.value(i).contains(*word),
                "instr {i}: concrete word {word} escapes the abstract fact \
                 (range [{}, {}]) at {fmt}",
                analysis.value(i).range.lo,
                analysis.value(i).range.hi,
            );
        }
    });
}

/// The verifier accepts every program form the compiler emits for every
/// checked-in corpus entry at its recorded configuration, and the facts of
/// the corpus cones contain real executions under full-rail stimuli.
#[test]
fn corpus_compiles_verify_and_facts_contain_replay() {
    let entries = isl_fuzz::load_dir(corpus_dir()).expect("corpus loads");
    assert!(!entries.is_empty(), "checked-in corpus must not be empty");
    for entry in &entries {
        let (pattern, _info) =
            isl_hls::symexec::compile_str(&entry.source).expect("corpus entry compiles");
        let cfg = &entry.config;
        let fmt = cfg.format();
        let params: Vec<f64> = pattern.params().iter().map(|p| p.default).collect();
        let window = if pattern.rank() == 1 {
            Window::line(cfg.window.w)
        } else {
            cfg.window
        };

        let compiled = CompiledPattern::compile(&pattern, &params, true);
        let quantized = QuantizedPattern::compile(&pattern, &params, fmt);
        for i in 0..pattern.fields().len() {
            if let Some(k) = compiled.kernel(i) {
                analyze::verify_kernel(k).unwrap_or_else(|e| {
                    panic!("{}: f64 kernel {i}: {e}", entry.name)
                });
            }
            if let Some(k) = quantized.kernel(i) {
                analyze::verify_quantized_kernel(k).unwrap_or_else(|e| {
                    panic!("{}: quantized kernel {i}: {e}", entry.name)
                });
            }
        }
        analyze::verify_step(quantized.fused())
            .unwrap_or_else(|e| panic!("{}: fused step: {e}", entry.name));

        let Ok(cone) = Cone::build(&pattern, window, cfg.depth) else {
            continue; // window/depth rejected by cone reach constraints
        };
        let cc = CompiledCone::compile_with(&cone, &params, true);
        analyze::verify_cone(&cc).unwrap_or_else(|e| panic!("{}: cone: {e}", entry.name));
        let qc = QuantizedCone::compile(&cone, &params, fmt);
        analyze::verify_quantized_cone(&qc)
            .unwrap_or_else(|e| panic!("{}: quantized cone: {e}", entry.name));

        // Full-rail facts contain a real bit-true replay.
        let analysis = Analysis::of_cone(&cc, fmt, WordRange::full(fmt))
            .unwrap_or_else(|e| panic!("{}: analysis: {e}", entry.name));
        let s = stim(cfg.frame_seed);
        let (_outs, trace) =
            eval_cone_raw_traced(&cc, fmt, |f, x, y| fmt.quantize(s(f, x, y)), None);
        for (i, word) in trace.iter().enumerate() {
            assert!(
                analysis.value(i).contains(*word),
                "{}: instr {i}: word {word} escapes its fact",
                entry.name
            );
        }
    }
}

/// The verifier rejects hand-built programs violating each invariant it
/// checks. These are the regression fixtures for the verifier itself: the
/// corpus gate (`isl-fuzz analyze`) proves it accepts real compiler
/// output, this proves it is not vacuously accepting everything.
#[test]
fn verifier_rejects_broken_programs() {
    use isl_hls::sim::Instr::*;

    // Structural CSE duplicate: two identical constants.
    let dup = [Const(1.0), Const(1.0)];
    assert!(analyze::verify_ssa(&dup, &[0, 1]).is_err(), "CSE duplicate accepted");

    // Dead instruction: instr 0 unreachable from the roots.
    let dead = [Const(1.0), Const(2.0)];
    assert!(analyze::verify_ssa(&dead, &[1]).is_err(), "dead code accepted");

    // Def-before-use violation: operand does not precede its user.
    let fwd = [Instr::Unary { op: isl_hls::ir::UnaryOp::Neg, a: 0 }];
    assert!(analyze::verify_ssa(&fwd, &[0]).is_err(), "forward reference accepted");

    // Root out of range.
    let oob = [Const(1.0)];
    assert!(analyze::verify_ssa(&oob, &[1]).is_err(), "out-of-range root accepted");

    // A well-formed slot program is accepted...
    let code = [Const(1.0), Instr::Unary { op: isl_hls::ir::UnaryOp::Neg, a: 0 }];
    let dst = [0u32, 1u32];
    assert!(analyze::verify_slot_program(&code, &dst, 2, &[1], &[1], &[0]).is_ok());

    // ...but clobbering a live slot is not: instr 1 evicts instr 0's value
    // from slot 0 while instr 2 still reads it.
    let clobber = [
        Const(1.0),
        Const(2.0),
        Instr::Binary { op: isl_hls::ir::BinaryOp::Add, a: 0, b: 0 },
    ];
    let cdst = [0u32, 0, 1];
    assert!(
        analyze::verify_slot_program(&clobber, &cdst, 2, &[1], &[2], &[0]).is_err(),
        "live-slot clobber accepted"
    );

    // Broken retire permutation.
    assert!(
        analyze::verify_slot_program(&code, &dst, 2, &[1], &[1], &[1]).is_err(),
        "out-of-range retire accepted"
    );
}

/// On both paper case studies, the known-bits fault-silence prediction is
/// a non-empty subset of the measured masked-or-silent outcomes. (The
/// campaign itself debug-asserts, for every predicted fault, that the
/// recorded traces agree the fault never perturbed a result word — this
/// test pins the aggregate subset relation and that the proof actually
/// fires on real kernels.)
#[test]
fn predicted_silence_is_nonempty_subset_of_measured() {
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let session = IslSession::from_algorithm(&algo).unwrap();
        let fields = session.pattern().fields().len();
        let init = FrameSet::from_frames(
            (0..fields)
                .map(|i| synthetic::noise(12, 10, 7 + i as u64))
                .collect(),
        )
        .unwrap();
        let fmt = FixedFormat::new(18, 10);
        let cosim = CoSimulator::new(session.pattern(), fmt).unwrap();
        let report = cosim
            .fault_campaign(&init, 2, Window::square(4), 2, &MaskSchedule::standard(fmt))
            .unwrap();
        assert!(report.faults > 0);
        assert_eq!(
            report.detected + report.masked + report.silent,
            report.faults,
            "{}: classification must partition the sweep",
            algo.name
        );
        assert!(
            report.predicted_silent > 0,
            "{}: static silence proof never fired (0 of {} faults)",
            algo.name,
            report.faults
        );
        assert!(
            report.predicted_silent <= report.masked + report.silent,
            "{}: predicted-silent {} exceeds measured masked-or-silent {}",
            algo.name,
            report.predicted_silent,
            report.masked + report.silent
        );
    }
}

/// The acceptance criterion for probe pruning: with static analysis
/// enabled, `search_format` on both case studies skips at least one
/// statically-overflowing escalation probe — and still returns the exact
/// searched format, probe list and synthesised areas of the ungated
/// search, bit for bit.
#[test]
fn gated_search_is_bit_identical_and_prunes_probes() {
    let device = Device::virtex6_xc6vlx760();
    for algo in [
        isl_hls::algorithms::gaussian_igf(),
        isl_hls::algorithms::chambolle(),
    ] {
        let on = IslSession::from_algorithm(&algo).unwrap();
        let off = IslSession::from_algorithm(&algo).unwrap().with_static_analysis(false);
        let fields = on.pattern().fields().len();
        // Gaussian's 3×3 binomial sums 16× the signal before normalising:
        // a three-digit input band guarantees the early escalation widths
        // provably saturate. Chambolle amplifies `g` by 1/λ = 10×
        // internally, so unit-band noise already overflows narrow words.
        let init = FrameSet::from_frames(
            (0..fields)
                .map(|i| {
                    let noise = synthetic::noise(20, 14, 11 + i as u64);
                    if algo.name == "igf" {
                        Frame::from_fn(20, 14, |x, y| 100.0 + 100.0 * noise.get(x, y))
                    } else {
                        noise
                    }
                })
                .collect(),
        )
        .unwrap();
        let arch = Architecture::new(Window::square(4), 2, 1);
        let budget = ErrorBudget::max_abs(1e-3);

        let searched_on = on.search_format(&device, &init, arch, budget).unwrap();
        let searched_off = off.search_format(&device, &init, arch, budget).unwrap();

        assert_eq!(searched_on.format(), searched_off.format(), "{}", algo.name);
        let (pa, pb) = (searched_on.probes(), searched_off.probes());
        assert_eq!(pa.len(), pb.len(), "{}: probe count differs", algo.name);
        for (a, b) in pa.iter().zip(pb) {
            assert_eq!(a.format, b.format, "{}", algo.name);
            assert_eq!(a.within_budget, b.within_budget, "{}", algo.name);
            assert_eq!(
                a.max_abs_error.to_bits(),
                b.max_abs_error.to_bits(),
                "{}: probe at {} not bit-identical",
                algo.name,
                a.format
            );
            assert_eq!(a.rms_error.to_bits(), b.rms_error.to_bits(), "{}", algo.name);
        }
        assert_eq!(
            searched_on.outcome().chosen_area_luts,
            searched_off.outcome().chosen_area_luts,
            "{}",
            algo.name
        );

        let pruned = on.store_stats().analysis_pruned_probes;
        assert!(
            pruned >= 1,
            "{}: no statically-overflowing probe was pruned",
            algo.name
        );
        assert_eq!(
            off.store_stats().analysis_pruned_probes,
            0,
            "{}: ungated search must not prune",
            algo.name
        );
    }
}
