//! A cost model of generic commercial HLS tools on ISL kernels.
//!
//! Section 4.3 evaluates Vivado HLS and Synphony C on the case studies. The
//! tools "perform a set of predefined and general purpose array and loop
//! optimizations" — unrolling, merging, flattening, pipelining, array
//! partitioning — but, blind to the ISL structure, they (a) keep the
//! frame-at-a-time schedule, (b) reject loop merging because of the data
//! dependencies between subsequent iterations, and (c) blow up when
//! pipelining is combined with flattening ("an out-of-memory exception is
//! generated even on a powerful Intel i7 with 16 GB of RAM"). The best
//! implementation the paper's authors obtained ran at **0.14 fps** on a
//! 1024×768 IGF.
//!
//! This model reproduces those behaviours mechanically: a finite
//! configuration grid, two hard failure rules, and a throughput model whose
//! parallelism is limited by memory ports and whose element schedule is a
//! serial state machine unless pipelining applies.

use std::error::Error;
use std::fmt;

use isl_estimate::Workload;
use isl_fpga::{techmap, Device, FixedFormat};
use isl_ir::{Cone, StencilPattern, Window};

/// One configuration of the generic HLS tool's knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HlsConfig {
    /// Inner-loop unroll factor.
    pub unroll: u32,
    /// Cyclic array-partitioning factor.
    pub partition: u32,
    /// Loop pipelining.
    pub pipeline: bool,
    /// Loop flattening (collapse the spatial nest).
    pub flatten: bool,
    /// Loop merging (fuse the time loop with the spatial nest).
    pub merge: bool,
}

impl fmt::Display for HlsConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unroll={} partition={} pipeline={} flatten={} merge={}",
            self.unroll, self.partition, self.pipeline, self.flatten, self.merge
        )
    }
}

/// Hard failures of the tool on ISL inputs (Section 4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum HlsFailure {
    /// "When loop merging is enabled, a solution cannot be found because of
    /// the data dependencies between subsequent iterations."
    DataDependency,
    /// "When pipelining and loop flattening are employed, the execution
    /// cannot be completed because of memory shortage."
    OutOfMemory {
        /// Modeled tool memory demand, GB.
        required_gb: f64,
        /// The modeled workstation limit, GB.
        limit_gb: f64,
    },
}

impl fmt::Display for HlsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsFailure::DataDependency => write!(
                f,
                "loop merge rejected: data dependencies between subsequent iterations"
            ),
            HlsFailure::OutOfMemory { required_gb, limit_gb } => write!(
                f,
                "tool out of memory: needs {required_gb:.1} GB, host has {limit_gb:.0} GB"
            ),
        }
    }
}

impl Error for HlsFailure {}

/// Result of a successful tool run.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsOutcome {
    /// Configuration used.
    pub config: HlsConfig,
    /// Frames per second.
    pub fps: f64,
    /// Time per frame, seconds.
    pub time_per_frame_s: f64,
    /// Average cycles per element update.
    pub cycles_per_element: f64,
}

/// The generic-HLS cost model for one device.
#[derive(Debug, Clone)]
pub struct CommercialHls<'d> {
    device: &'d Device,
    format: FixedFormat,
    /// Modeled synthesis-workstation memory, GB (the paper's machine: 16).
    pub host_memory_gb: f64,
}

impl<'d> CommercialHls<'d> {
    /// Model with the paper's 16 GB workstation.
    pub fn new(device: &'d Device) -> Self {
        CommercialHls {
            device,
            format: FixedFormat::default(),
            host_memory_gb: 16.0,
        }
    }

    /// Run one configuration.
    ///
    /// # Errors
    ///
    /// [`HlsFailure::DataDependency`] when `merge` is set on a multi-
    /// iteration workload; [`HlsFailure::OutOfMemory`] when
    /// `pipeline && flatten` on a realistically sized workload.
    pub fn run(
        &self,
        pattern: &StencilPattern,
        workload: Workload,
        config: HlsConfig,
    ) -> Result<HlsOutcome, HlsFailure> {
        if config.merge && workload.iterations > 1 {
            return Err(HlsFailure::DataDependency);
        }
        if config.pipeline && config.flatten {
            // The tool unrolls the flattened pipelined nest symbolically;
            // its internal representation grows with frame x iterations.
            let required_gb = workload.frame_elements() as f64
                * f64::from(workload.iterations)
                * 3000.0
                / 1e9;
            if required_gb > self.host_memory_gb {
                return Err(HlsFailure::OutOfMemory {
                    required_gb,
                    limit_gb: self.host_memory_gb,
                });
            }
        }

        // Element schedule. reads/elem and serial latency from the
        // one-element, one-iteration dataflow.
        let cone = Cone::build(pattern, Window::square(1), 1)
            .expect("one-element cone of a valid pattern");
        let reads = cone.inputs().len() as f64 + cone.static_inputs().len() as f64;
        let serial_latency = f64::from(techmap::pipeline_latency(cone.graph(), self.format));

        // Without pipelining, each element runs a serial state machine:
        // every operation level costs fetch/execute/store states plus
        // control overhead.
        let state_overhead = 25.0;
        let _ = reads;
        let (base_cycles, parallel) = if config.pipeline {
            // The tool cannot disambiguate the `in`/`out` frame pointers, so
            // its conservative dependence analysis pins the initiation
            // interval near the full operation latency, and it refuses to
            // combine unrolling with the pipelined schedule.
            (serial_latency * 4.0, 1.0)
        } else {
            // Unrolling is bounded by the memory ports of the (partitioned)
            // array, and the replication efficiency decays sharply because
            // the control and addressing logic stays serial.
            (
                serial_latency * state_overhead,
                f64::from(config.unroll.min(2 * config.partition)).max(1.0),
            )
        };
        let effective_speedup = 1.0 + (parallel - 1.0) * 0.1;
        let cycles_per_element = (base_cycles / effective_speedup).max(0.5);

        let fmax = self.device.fmax_cap_mhz * 1e6;
        let elems = workload.frame_elements() as f64;
        let iters = f64::from(workload.iterations);
        let compute_s = elems * iters * cycles_per_element / fmax;

        // Frame-at-a-time schedule: each iteration syncs the full frame
        // through the memory interface the tool generates (far less
        // efficient than a hand-tuned DMA engine).
        let elem_bytes = f64::from(self.format.width.div_ceil(8));
        let tool_interface_efficiency = 0.25;
        let transfer_s = iters * 2.0 * elems * elem_bytes
            / (self.device.offchip_bandwidth_mbs * 1e6 * tool_interface_efficiency);

        let time = compute_s + transfer_s;
        Ok(HlsOutcome {
            config,
            fps: 1.0 / time,
            time_per_frame_s: time,
            cycles_per_element,
        })
    }

    /// Exhaustively try the tool's configuration grid; return the best
    /// outcome plus every failed configuration.
    pub fn explore(
        &self,
        pattern: &StencilPattern,
        workload: Workload,
    ) -> (Option<HlsOutcome>, Vec<(HlsConfig, HlsFailure)>, usize) {
        let mut best: Option<HlsOutcome> = None;
        let mut failures = Vec::new();
        let mut evaluated = 0usize;
        for &unroll in &[1u32, 2, 4, 8, 16] {
            for &partition in &[1u32, 2, 4, 8] {
                for &pipeline in &[false, true] {
                    for &flatten in &[false, true] {
                        for &merge in &[false, true] {
                            let config = HlsConfig { unroll, partition, pipeline, flatten, merge };
                            evaluated += 1;
                            match self.run(pattern, workload, config) {
                                Ok(out) => {
                                    if best.as_ref().is_none_or(|b| out.fps > b.fps) {
                                        best = Some(out);
                                    }
                                }
                                Err(e) => failures.push((config, e)),
                            }
                        }
                    }
                }
            }
        }
        (best, failures, evaluated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn igf_like() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("igf");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(-1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, -1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(-1, 0)), Expr::constant(2.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 0)), Expr::constant(4.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(1, 0)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(-1, 1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(16.0)))
            .unwrap();
        p
    }

    #[test]
    fn merge_fails_on_isl() {
        let dev = Device::virtex6_xc6vlx760();
        let tool = CommercialHls::new(&dev);
        let cfg = HlsConfig { unroll: 1, partition: 1, pipeline: false, flatten: false, merge: true };
        let err = tool
            .run(&igf_like(), Workload::image(1024, 768, 10), cfg)
            .unwrap_err();
        assert_eq!(err, HlsFailure::DataDependency);
    }

    #[test]
    fn pipeline_flatten_oom_on_real_frames() {
        let dev = Device::virtex6_xc6vlx760();
        let tool = CommercialHls::new(&dev);
        let cfg = HlsConfig { unroll: 1, partition: 1, pipeline: true, flatten: true, merge: false };
        let err = tool
            .run(&igf_like(), Workload::image(1024, 768, 10), cfg)
            .unwrap_err();
        assert!(matches!(err, HlsFailure::OutOfMemory { required_gb, .. } if required_gb > 16.0));
        // Tiny toy frames still succeed, like the real tool.
        tool.run(&igf_like(), Workload::image(32, 32, 2), cfg).unwrap();
    }

    #[test]
    fn best_configuration_is_sub_fps() {
        // The paper: "the best implementation found by the tool has a
        // throughput of only 0.14 fps on a 1024x768 image".
        let dev = Device::virtex6_xc6vlx760();
        let tool = CommercialHls::new(&dev);
        let (best, failures, evaluated) =
            tool.explore(&igf_like(), Workload::image(1024, 768, 10));
        let best = best.unwrap();
        assert!(
            best.fps > 0.03 && best.fps < 1.0,
            "expected sub-fps best, got {:.3}",
            best.fps
        );
        assert!(evaluated >= 160);
        assert!(failures
            .iter()
            .any(|(_, e)| matches!(e, HlsFailure::DataDependency)));
        assert!(failures
            .iter()
            .any(|(_, e)| matches!(e, HlsFailure::OutOfMemory { .. })));
    }

    #[test]
    fn unrolling_helps_but_saturates() {
        let dev = Device::virtex6_xc6vlx760();
        let tool = CommercialHls::new(&dev);
        let p = igf_like();
        let w = Workload::image(256, 256, 10);
        let run = |unroll, partition| {
            tool.run(
                &p,
                w,
                HlsConfig { unroll, partition, pipeline: false, flatten: false, merge: false },
            )
            .unwrap()
            .fps
        };
        let f1 = run(1, 1);
        let f4 = run(4, 4);
        let f16 = run(16, 8);
        assert!(f4 > f1);
        assert!(f16 >= f4);
        // Far from linear scaling.
        assert!(f16 < 4.0 * f1);
    }
}
