//! The two-frame-buffer baseline architecture.
//!
//! The "typical state-of-the-art approach" (Section 1, refs \[1\]\[2\]\[3\]): two
//! buffers `A`/`B` and one-iteration transformation logic. The frame is
//! loaded once; each iteration reads one buffer and writes the other. When
//! both frames fit in on-chip memory, the iteration streams at one element
//! per cycle; otherwise every iteration crosses the off-chip interface twice
//! — "the performance is bound by the memory transfers" (Section 2.2).

use isl_estimate::Workload;
use isl_fpga::{techmap, Device, FixedFormat, Synthesizer};
use isl_ir::{Cone, StencilPattern, Window};

/// Performance and cost report of the frame-buffer architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameBufferReport {
    /// Bytes of on-chip memory needed for the two ping-pong frames.
    pub buffer_bytes_required: u64,
    /// Whether both buffers fit the device's BRAM.
    pub fits_on_chip: bool,
    /// LUTs of the one-iteration transformation logic (all PEs).
    pub logic_luts: u64,
    /// Parallel streaming processing elements instantiated.
    pub processing_elements: u32,
    /// Frames per second.
    pub fps: f64,
    /// Time per frame, seconds.
    pub time_per_frame_s: f64,
    /// Compute portion, seconds.
    pub compute_time_s: f64,
    /// Off-chip transfer portion, seconds (zero in the on-chip regime apart
    /// from the initial load and final store).
    pub transfer_time_s: f64,
    /// Whether transfers dominate.
    pub transfer_bound: bool,
}

/// The two-frame-buffer architecture model.
#[derive(Debug, Clone)]
pub struct FrameBufferModel<'d> {
    device: &'d Device,
    format: FixedFormat,
}

impl<'d> FrameBufferModel<'d> {
    /// Model on a device with the default fixed-point format.
    pub fn new(device: &'d Device) -> Self {
        FrameBufferModel {
            device,
            format: FixedFormat::default(),
        }
    }

    /// Override the data format.
    pub fn with_format(mut self, format: FixedFormat) -> Self {
        self.format = format;
        self
    }

    /// Evaluate the architecture for `pattern` on `workload`.
    ///
    /// # Errors
    ///
    /// Returns the synthesis simulator's error when the one-iteration logic
    /// cannot be constructed.
    pub fn evaluate(
        &self,
        pattern: &StencilPattern,
        workload: Workload,
    ) -> Result<FrameBufferReport, isl_fpga::SynthError> {
        let synth = Synthesizer::new(self.device);
        // Transformation logic: a depth-1, one-element cone (the classic
        // streaming processing element).
        let report = synth.synthesize(pattern, Window::square(1), 1, 1)?;
        let cone = Cone::build(pattern, Window::square(1), 1)
            .map_err(|e| isl_fpga::SynthError::Cone(e.to_string()))?;
        let latency = techmap::pipeline_latency(cone.graph(), self.format);

        let n_fields = pattern.fields().len() as u64;
        let elem_bytes = u64::from(self.format.width.div_ceil(8));
        let frame_bytes = workload.frame_elements() * elem_bytes;
        let buffers = 2 * frame_bytes * n_fields;
        let fits = buffers <= self.device.bram_bytes();

        // Streaming compute: each PE consumes one element per cycle once
        // its line buffers fill; PEs split the frame into horizontal bands.
        // The PE count is bounded by logic area and by a practical cap on
        // parallel line-buffer banks.
        const MAX_PES: u64 = 64;
        let pes = (self.device.luts / report.luts.max(1)).clamp(1, MAX_PES) as u32;
        let elems = workload.frame_elements() as f64;
        let iters = f64::from(workload.iterations);
        let fmax = report.fmax_mhz.min(self.device.fmax_cap_mhz) * 1e6;
        let compute_time_s = (elems * iters / f64::from(pes) + f64::from(latency)) / fmax;

        // Transfers: initial load + final store always; per-iteration
        // round-trips when the buffers do not fit.
        let bw = self.device.offchip_bandwidth_mbs * 1e6;
        let endpoint_bytes = 2.0 * frame_bytes as f64 * n_fields as f64;
        let transfer_time_s = if fits {
            endpoint_bytes / bw
        } else {
            endpoint_bytes / bw + iters * 2.0 * frame_bytes as f64 * n_fields as f64 / bw
        };

        let time = compute_time_s.max(transfer_time_s);
        Ok(FrameBufferReport {
            buffer_bytes_required: buffers,
            fits_on_chip: fits,
            logic_luts: report.luts * u64::from(pes),
            processing_elements: pes,
            fps: 1.0 / time,
            time_per_frame_s: time,
            compute_time_s,
            transfer_time_s,
            transfer_bound: transfer_time_s > compute_time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    #[test]
    fn small_frames_fit_large_frames_do_not() {
        let dev = Device::small_multimedia(); // 540 kb BRAM ≈ 67 kB
        let model = FrameBufferModel::new(&dev);
        let p = blur();
        let small = model.evaluate(&p, Workload::image(64, 64, 10)).unwrap();
        assert!(small.fits_on_chip); // 2 x 12 kB buffers
        let large = model.evaluate(&p, Workload::image(1024, 768, 10)).unwrap();
        assert!(!large.fits_on_chip); // 2 x 2.3 MB buffers
        assert!(large.transfer_bound);
        assert!(large.fps < small.fps);
    }

    #[test]
    fn memory_performance_conflict_quantified() {
        // The Section 2.2 conflict on one device: per-element throughput
        // collapses once the ping-pong buffers stop fitting on chip and
        // every iteration round-trips the frame.
        let p = blur();
        let dev = Device::small_multimedia();
        let model = FrameBufferModel::new(&dev);
        let fits = model.evaluate(&p, Workload::image(96, 96, 10)).unwrap();
        let spills = model.evaluate(&p, Workload::image(768, 768, 10)).unwrap();
        assert!(fits.fits_on_chip);
        assert!(!spills.fits_on_chip);
        assert!(spills.transfer_bound);
        // Elements per second, size-normalised.
        let eps_fit = fits.fps * (96.0 * 96.0);
        let eps_spill = spills.fps * (768.0 * 768.0);
        assert!(
            eps_fit > 1.5 * eps_spill,
            "off-chip regime should cost per-element throughput: {eps_fit:.0} vs {eps_spill:.0}"
        );
    }

    #[test]
    fn buffer_requirement_scales_with_fields_and_frame() {
        let dev = Device::virtex6_xc6vlx760();
        let model = FrameBufferModel::new(&dev);
        let p = blur();
        let a = model.evaluate(&p, Workload::image(128, 128, 4)).unwrap();
        let b = model.evaluate(&p, Workload::image(256, 256, 4)).unwrap();
        assert_eq!(b.buffer_bytes_required, 4 * a.buffer_bytes_required);
    }

    #[test]
    fn compute_time_scales_with_iterations() {
        let dev = Device::virtex6_xc6vlx760();
        let model = FrameBufferModel::new(&dev);
        let p = blur();
        let short = model.evaluate(&p, Workload::image(256, 256, 5)).unwrap();
        let long = model.evaluate(&p, Workload::image(256, 256, 20)).unwrap();
        assert!(long.compute_time_s > 3.5 * short.compute_time_s);
    }
}
