//! # isl-baselines — the architectures the paper compares against
//!
//! Three families of baselines appear in the paper's evaluation:
//!
//! * [`framebuffer`] — the state-of-the-art *two-frame-buffer* architecture
//!   (Sections 2.1–2.2): ping-pong buffers `A` and `B` plus logic for one
//!   iteration. Its defining flaw is the **memory/performance conflict**:
//!   either the on-chip memory holds two whole frames (MBs — expensive), or
//!   every iteration round-trips the frame over the off-chip interface;
//! * [`commercial`] — a cost model of generic commercial HLS tools (Vivado
//!   HLS / Synphony C, Section 4.3) applying their standard loop
//!   optimisations to an ISL kernel, including the paper's observed failure
//!   modes: loop merging rejected on inter-iteration dependencies and
//!   pipeline+flatten exhausting the tool's host memory;
//! * [`references`] — the published numbers of the manual implementations
//!   the paper compares with (\[16\] Cope's convolution, \[19\] Akin's
//!   Chambolle, and the sub-real-time optical-flow designs \[3\]\[22\]\[23\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commercial;
pub mod framebuffer;
pub mod references;

pub use commercial::{CommercialHls, HlsConfig, HlsFailure, HlsOutcome};
pub use framebuffer::{FrameBufferModel, FrameBufferReport};
pub use references::{paper_results, published_references, ReferencePoint};
