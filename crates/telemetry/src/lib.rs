//! # isl-telemetry — structured tracing, metrics and profiling
//!
//! An always-compiled, cheap-when-disabled instrumentation layer for the
//! staged HLS pipeline, the simulation engines, the worker pool and the
//! reliability subsystem. Zero dependencies (the build is offline), no
//! `unsafe`, and the **disabled path is a single branch on a
//! `static AtomicBool`** — instrumentation left in hot code costs one
//! relaxed load per call site when telemetry is off.
//!
//! ## Model
//!
//! * **Spans** — RAII intervals ([`span()`] / the [`span!`] macro) recorded
//!   per *lane* (a small sequential id assigned to each OS thread on first
//!   use, with the thread's name captured for trace export). A thread-local
//!   stack tracks nesting depth, so spans nest naturally across the staged
//!   pipeline (`Spec → … → FormatSearched`) and across worker-pool threads.
//! * **Counters** — named monotonic `AtomicU64`s ([`add`]): engine
//!   op-class histograms, lane-kernel element counts, fuzzer iterations,
//!   fault-campaign sweeps. Registered on first use; a thread-local cache
//!   makes repeated adds lock-free.
//! * **Gauges** — named `(count, sum, max)` statistics ([`sample`]): worker
//!   pool queue depth, park time, batch wall time — anything where the
//!   distribution matters more than the total.
//!
//! ## Sinks
//!
//! A [`Snapshot`] ([`snapshot`]) carries everything recorded since the last
//! [`reset`], with three renderings:
//!
//! * [`Snapshot::to_json`] — a structured **run report** (span totals by
//!   category, counters, gauges, lanes);
//! * [`Snapshot::chrome_trace`] — **Chrome trace-event JSON** loadable in
//!   Perfetto / `chrome://tracing`, one lane per thread, `ph:"X"` complete
//!   events with microsecond timestamps;
//! * `Display` — a human summary for terminals and CI logs.
//!
//! The staged API wraps this as `IslSession::with_telemetry()` /
//! `TelemetryReport` (which merges the artifact-store cache statistics into
//! the run report); `isl-fuzz` exposes `--telemetry out.json --trace
//! out.trace.json` on every subcommand.
//!
//! State is **process-global** (like the `log` crate's): enabling telemetry
//! observes every instrumented subsystem at once, which is exactly what a
//! run report wants. [`reset`] zeroes counters and drops recorded spans so
//! consecutive runs don't bleed into each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod report;

pub use report::{gauge_json, SpanTotal};

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The global gate.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently collecting. This is the branch every
/// instrumented call site pays when disabled — a single relaxed atomic
/// load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off (recorded data is kept either way).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Start a fresh collection run: [`reset`] everything recorded so far and
/// enable collection.
pub fn start() {
    reset();
    set_enabled(true);
}

/// Drop every recorded span, zero every counter and gauge, and clear the
/// dropped-event tally. Thread lane ids and names are kept (they identify
/// OS threads, which persist across runs).
pub fn reset() {
    collector().events.lock().expect("telemetry events").clear();
    DROPPED.store(0, Ordering::Relaxed);
    for c in counters().lock().expect("telemetry counters").values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in gauges().lock().expect("telemetry gauges").values() {
        g.count.store(0, Ordering::Relaxed);
        g.sum.store(0, Ordering::Relaxed);
        g.max.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Time base and lanes.
// ---------------------------------------------------------------------------

/// Microseconds since the process-wide telemetry epoch (first use).
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LANE: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The calling thread's lane id (assigned sequentially on first use; the
/// thread's name is registered for trace export at the same moment).
pub fn lane_id() -> u64 {
    LANE.with(|l| {
        if l.get() == 0 {
            let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            l.set(id);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{id}"));
            collector()
                .threads
                .lock()
                .expect("telemetry threads")
                .push((id, name));
        }
        l.get()
    })
}

// ---------------------------------------------------------------------------
// The collector.
// ---------------------------------------------------------------------------

/// One recorded span interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Grouping category (e.g. `"stage"`, `"engine"`, `"artifact"`).
    pub cat: &'static str,
    /// Human-readable span name (e.g. `"Explored"`, `"cone w4x4 d2"`).
    pub name: Cow<'static, str>,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Lane (thread) the span ran on.
    pub lane: u64,
    /// Nesting depth on its lane at entry (0 = top level).
    pub depth: u32,
}

/// Cap on buffered span events — beyond this, spans are counted as dropped
/// instead of growing without bound (128 Ki events ≈ 10 MiB).
const MAX_EVENTS: usize = 128 * 1024;

static DROPPED: AtomicU64 = AtomicU64::new(0);

struct Collector {
    events: Mutex<Vec<SpanEvent>>,
    threads: Mutex<Vec<(u64, String)>>,
}

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        events: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
    })
}

/// An in-flight span: records a [`SpanEvent`] when dropped. Created by
/// [`span()`] / [`span!`]; hold it in a local (`let _span = …`) for the
/// region being measured.
#[derive(Debug)]
pub struct SpanGuard {
    cat: &'static str,
    name: Cow<'static, str>,
    start_us: u64,
    lane: u64,
    depth: u32,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = now_us().saturating_sub(self.start_us);
        let mut events = collector().events.lock().expect("telemetry events");
        if events.len() >= MAX_EVENTS {
            DROPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(SpanEvent {
            cat: self.cat,
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            start_us: self.start_us,
            dur_us,
            lane: self.lane,
            depth: self.depth,
        });
    }
}

/// Open a span of `cat`/`name` on the calling thread's lane. Returns `None`
/// (and does nothing) when telemetry is disabled — bind the result anyway;
/// dropping the `Option` closes the span.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    let lane = lane_id();
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    Some(SpanGuard {
        cat,
        name: name.into(),
        start_us: now_us(),
        lane,
        depth,
    })
}

/// Open a span with a formatted name, paying the formatting only when
/// telemetry is enabled:
///
/// ```
/// let _span = isl_telemetry::span!("artifact", "cone w{}x{} d{}", 4, 4, 2);
/// ```
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:literal) => {
        $crate::span($cat, $name)
    };
    ($cat:expr, $fmt:literal, $($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span($cat, format!($fmt, $($arg)*))
        } else {
            None
        }
    };
}

// ---------------------------------------------------------------------------
// Counters and gauges.
// ---------------------------------------------------------------------------

type CounterMap = Mutex<HashMap<String, Arc<AtomicU64>>>;

fn counters() -> &'static CounterMap {
    static COUNTERS: OnceLock<CounterMap> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// A `(count, sum, max)` statistic.
#[derive(Debug, Default)]
struct Gauge {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

type GaugeMap = Mutex<HashMap<String, Arc<Gauge>>>;

fn gauges() -> &'static GaugeMap {
    static GAUGES: OnceLock<GaugeMap> = OnceLock::new();
    GAUGES.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static COUNTER_CACHE: RefCell<HashMap<String, Arc<AtomicU64>>> =
        RefCell::new(HashMap::new());
    static GAUGE_CACHE: RefCell<HashMap<String, Arc<Gauge>>> =
        RefCell::new(HashMap::new());
}

/// Add `delta` to the counter `name` (registered on first use). No-op when
/// telemetry is disabled. Repeated adds from one thread are lock-free after
/// the first ([`reset`] zeroes values in place, so caches stay valid).
pub fn add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    COUNTER_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(c) = cache.get(name) {
            c.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let c = Arc::clone(
            counters()
                .lock()
                .expect("telemetry counters")
                .entry(name.to_owned())
                .or_default(),
        );
        c.fetch_add(delta, Ordering::Relaxed);
        cache.insert(name.to_owned(), c);
    });
}

/// Record one observation of the gauge `name` (count/sum/max statistic).
/// No-op when telemetry is disabled.
pub fn sample(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    GAUGE_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let g = match cache.get(name) {
            Some(g) => g,
            None => {
                let g = Arc::clone(
                    gauges()
                        .lock()
                        .expect("telemetry gauges")
                        .entry(name.to_owned())
                        .or_default(),
                );
                cache.insert(name.to_owned(), g);
                cache.get(name).expect("just inserted")
            }
        };
        g.count.fetch_add(1, Ordering::Relaxed);
        g.sum.fetch_add(value, Ordering::Relaxed);
        g.max.fetch_max(value, Ordering::Relaxed);
    });
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// The recorded statistics of one gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeStat {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl GaugeStat {
    /// Mean observed value (0 when nothing was recorded).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything recorded since the last [`reset`]: raw span events, counter
/// and gauge values (zero entries omitted), and the lane → thread-name
/// registry. See [`Snapshot::to_json`], [`Snapshot::chrome_trace`] and the
/// `Display` impl for the three sink formats.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Every recorded span, in completion order.
    pub spans: Vec<SpanEvent>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge statistics, sorted by name.
    pub gauges: Vec<(String, GaugeStat)>,
    /// Lane id → thread name, in lane-assignment order.
    pub threads: Vec<(u64, String)>,
    /// Spans dropped because the event buffer was full.
    pub dropped_spans: u64,
}

/// Snapshot the current telemetry state (cheap copies of everything
/// recorded; collection continues unaffected).
pub fn snapshot() -> Snapshot {
    let spans = collector().events.lock().expect("telemetry events").clone();
    let mut counter_rows: Vec<(String, u64)> = counters()
        .lock()
        .expect("telemetry counters")
        .iter()
        .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v != 0)
        .collect();
    counter_rows.sort();
    let mut gauge_rows: Vec<(String, GaugeStat)> = gauges()
        .lock()
        .expect("telemetry gauges")
        .iter()
        .map(|(k, g)| {
            (
                k.clone(),
                GaugeStat {
                    count: g.count.load(Ordering::Relaxed),
                    sum: g.sum.load(Ordering::Relaxed),
                    max: g.max.load(Ordering::Relaxed),
                },
            )
        })
        .filter(|(_, g)| g.count != 0)
        .collect();
    gauge_rows.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot {
        spans,
        counters: counter_rows,
        gauges: gauge_rows,
        threads: collector().threads.lock().expect("telemetry threads").clone(),
        dropped_spans: DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; unit tests here serialise on one
    // lock so `cargo test` threading cannot interleave their state.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = lock();
        reset();
        set_enabled(false);
        {
            let _s = span("test", "invisible");
            add("test.counter", 5);
            sample("test.gauge", 9);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn spans_nest_on_one_lane() {
        let _l = lock();
        start();
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        set_enabled(false);
        let snap = snapshot();
        let outer = snap.spans.iter().find(|s| s.name == "outer").expect("outer");
        let inner = snap.spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.lane, inner.lane);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        reset();
    }

    #[test]
    fn reset_zeroes_counters_in_place() {
        let _l = lock();
        start();
        add("test.reset", 3);
        reset();
        add("test.reset", 4);
        set_enabled(false);
        let snap = snapshot();
        let v = snap
            .counters
            .iter()
            .find(|(k, _)| k == "test.reset")
            .map(|(_, v)| *v);
        assert_eq!(v, Some(4));
        reset();
    }

    #[test]
    fn gauge_statistics() {
        let _l = lock();
        start();
        sample("test.g", 2);
        sample("test.g", 10);
        sample("test.g", 6);
        set_enabled(false);
        let snap = snapshot();
        let g = snap
            .gauges
            .iter()
            .find(|(k, _)| k == "test.g")
            .map(|(_, g)| *g)
            .expect("gauge recorded");
        assert_eq!(g.count, 3);
        assert_eq!(g.sum, 18);
        assert_eq!(g.max, 10);
        assert!((g.mean() - 6.0).abs() < 1e-12);
        reset();
    }
}
