//! Snapshot sinks: span aggregation, the structured JSON run report, the
//! Chrome trace-event export and the human `Display` summary.

use crate::json::escape_into;
use crate::{GaugeStat, Snapshot};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Aggregated wall time of every span sharing one `(category, name)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotal {
    /// Span category (e.g. `"stage"`).
    pub cat: &'static str,
    /// Span name (e.g. `"Explored"`).
    pub name: String,
    /// Number of spans recorded.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Earliest start, microseconds since the epoch (ordering key).
    pub first_start_us: u64,
}

impl Snapshot {
    /// Aggregate spans by `(category, name)`, ordered by category then
    /// first start time — so pipeline stages come out in execution order.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let mut index: HashMap<(&'static str, &str), usize> = HashMap::new();
        let mut totals: Vec<SpanTotal> = Vec::new();
        for s in &self.spans {
            match index.get(&(s.cat, s.name.as_ref())) {
                Some(&i) => {
                    let t = &mut totals[i];
                    t.count += 1;
                    t.total_us += s.dur_us;
                    t.first_start_us = t.first_start_us.min(s.start_us);
                }
                None => {
                    index.insert((s.cat, s.name.as_ref()), totals.len());
                    totals.push(SpanTotal {
                        cat: s.cat,
                        name: s.name.clone().into_owned(),
                        count: 1,
                        total_us: s.dur_us,
                        first_start_us: s.start_us,
                    });
                }
            }
        }
        totals.sort_by(|a, b| {
            a.cat
                .cmp(b.cat)
                .then(a.first_start_us.cmp(&b.first_start_us))
        });
        totals
    }

    /// Totals restricted to one category, in first-start order.
    pub fn span_totals_for(&self, cat: &str) -> Vec<SpanTotal> {
        self.span_totals()
            .into_iter()
            .filter(|t| t.cat == cat)
            .collect()
    }

    /// The structured JSON run report: span totals grouped by category,
    /// all counters, all gauges (count/sum/max/mean), the lane registry
    /// and the dropped-span tally. Always valid JSON ([`crate::json::parse`]
    /// accepts it).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"spans\": {");
        let totals = self.span_totals();
        let mut cats: Vec<&'static str> = totals.iter().map(|t| t.cat).collect();
        cats.dedup();
        for (ci, cat) in cats.iter().enumerate() {
            if ci > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            escape_into(&mut out, cat);
            out.push_str(": [");
            let mut first = true;
            for t in totals.iter().filter(|t| t.cat == *cat) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str("\n      {\"name\": ");
                escape_into(&mut out, &t.name);
                let _ = write!(
                    out,
                    ", \"count\": {}, \"total_us\": {}}}",
                    t.count, t.total_us
                );
            }
            out.push_str("\n    ]");
        }
        out.push_str("\n  },\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            escape_into(&mut out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            escape_into(&mut out, name);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}}}",
                g.count,
                g.sum,
                g.max,
                g.mean()
            );
        }
        out.push_str("\n  },\n  \"lanes\": {");
        for (i, (lane, name)) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{lane}\": ");
            escape_into(&mut out, name);
        }
        let _ = write!(
            out,
            "\n  }},\n  \"dropped_spans\": {}\n}}\n",
            self.dropped_spans
        );
        out
    }

    /// Chrome trace-event JSON (the `{"traceEvents": [...]}` flavour),
    /// loadable in Perfetto or `chrome://tracing`: one `thread_name`
    /// metadata record per lane, then one `ph:"X"` complete event per span
    /// with microsecond `ts`/`dur`, `pid` 1 and `tid` = lane id — worker
    /// threads each get their own swimlane.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        out.push_str(
            "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \
             \"args\": {\"name\": \"isl-hls\"}}",
        );
        for (lane, name) in &self.threads {
            let _ = write!(
                out,
                ",\n  {{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {lane}, \
                 \"args\": {{\"name\": "
            );
            escape_into(&mut out, name);
            out.push_str("}}");
        }
        for (lane, _) in &self.threads {
            let _ = write!(
                out,
                ",\n  {{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, \
                 \"tid\": {lane}, \"args\": {{\"sort_index\": {lane}}}}}"
            );
        }
        for s in &self.spans {
            let _ = write!(
                out,
                ",\n  {{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                 \"cat\": ",
                s.lane, s.start_us, s.dur_us
            );
            escape_into(&mut out, s.cat);
            out.push_str(", \"name\": ");
            escape_into(&mut out, &s.name);
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry snapshot")?;
        let totals = self.span_totals();
        let mut cats: Vec<&'static str> = totals.iter().map(|t| t.cat).collect();
        cats.dedup();
        for cat in cats {
            writeln!(f, "  [{cat}]")?;
            for t in totals.iter().filter(|t| t.cat == cat) {
                writeln!(
                    f,
                    "    {:<32} {:>8.3} ms  x{}",
                    t.name,
                    t.total_us as f64 / 1000.0,
                    t.count
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "  [counters]")?;
            for (name, value) in &self.counters {
                writeln!(f, "    {name:<40} {value:>14}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  [gauges]")?;
            for (name, g) in &self.gauges {
                writeln!(
                    f,
                    "    {:<40} n={:<8} mean={:<12.2} max={}",
                    name,
                    g.count,
                    g.mean(),
                    g.max
                )?;
            }
        }
        if !self.threads.is_empty() {
            writeln!(f, "  [lanes]")?;
            for (lane, name) in &self.threads {
                writeln!(f, "    {lane:>3}  {name}")?;
            }
        }
        if self.dropped_spans > 0 {
            writeln!(f, "  dropped spans: {}", self.dropped_spans)?;
        }
        Ok(())
    }
}

/// Render a gauge row (used by downstream run-report writers that need to
/// emit pool metrics even when no samples were recorded).
pub fn gauge_json(g: GaugeStat) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}}}",
        g.count,
        g.sum,
        g.max,
        g.mean()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::SpanEvent;
    use std::borrow::Cow;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanEvent {
                    cat: "stage",
                    name: Cow::Borrowed("Spec"),
                    start_us: 0,
                    dur_us: 10,
                    lane: 1,
                    depth: 0,
                },
                SpanEvent {
                    cat: "stage",
                    name: Cow::Borrowed("Explored"),
                    start_us: 12,
                    dur_us: 90,
                    lane: 1,
                    depth: 0,
                },
                SpanEvent {
                    cat: "engine",
                    name: Cow::Owned("compile \"q\"".to_owned()),
                    start_us: 20,
                    dur_us: 5,
                    lane: 2,
                    depth: 1,
                },
            ],
            counters: vec![("op.add".to_owned(), 42)],
            gauges: vec![(
                "pool.queue_depth".to_owned(),
                GaugeStat {
                    count: 3,
                    sum: 6,
                    max: 4,
                },
            )],
            threads: vec![(1, "main".to_owned()), (2, "isl-sim-worker-0".to_owned())],
            dropped_spans: 0,
        }
    }

    #[test]
    fn run_report_parses_and_aggregates() {
        let snap = sample_snapshot();
        let v = json::parse(&snap.to_json()).expect("run report is valid JSON");
        let stages = v
            .get("spans")
            .and_then(|s| s.get("stage"))
            .and_then(json::Value::as_arr)
            .expect("stage array");
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[0].get("name").and_then(json::Value::as_str),
            Some("Spec")
        );
        assert_eq!(
            v.get("counters").and_then(|c| c.get("op.add")).and_then(json::Value::as_num),
            Some(42.0)
        );
    }

    #[test]
    fn chrome_trace_parses_with_lanes() {
        let snap = sample_snapshot();
        let v = json::parse(&snap.chrome_trace()).expect("trace is valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(json::Value::as_arr)
            .expect("traceEvents");
        // 1 process_name + 2 thread_name + 2 sort_index + 3 spans.
        assert_eq!(events.len(), 8);
        let xs: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        assert!(xs
            .iter()
            .any(|e| e.get("tid").and_then(json::Value::as_num) == Some(2.0)));
    }

    #[test]
    fn display_mentions_everything() {
        let text = sample_snapshot().to_string();
        assert!(text.contains("Explored"));
        assert!(text.contains("op.add"));
        assert!(text.contains("pool.queue_depth"));
        assert!(text.contains("isl-sim-worker-0"));
    }
}
