//! Minimal JSON support: a string escaper for the writers and a small
//! recursive-descent parser used to *validate* emitted documents (the
//! round-trip tests and the CI telemetry shard check every sink parses).
//!
//! The build is offline and the crate is dependency-free by design, so this
//! is deliberately tiny: it accepts standard JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) and reports the byte
//! offset of the first error. It is a validator-grade parser, not a
//! general serde replacement.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` escaped as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// A parsed JSON value ([`parse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Value, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("short \\u escape at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates only appear for astral-plane text,
                            // which our writers never escape — map them to
                            // U+FFFD rather than pairing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf8".to_owned())?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips() {
        let raw = "a \"quote\"\nwith\ttabs \\ and unicode: µs";
        let doc = format!("{{\"k\": {}}}", escape(raw));
        let v = parse(&doc).expect("parses");
        assert_eq!(v.get("k").and_then(Value::as_str), Some(raw));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).expect("parses");
        let arr = v.get("a").and_then(Value::as_arr).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
    }
}
