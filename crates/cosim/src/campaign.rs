//! Fault-injection campaigns over whole cone programs.
//!
//! A campaign answers the reliability question certification cannot: *if a
//! datapath bit breaks, does the golden-vector check notice?* The driver
//! sweeps **every instruction** of an architecture's compiled cone programs
//! against a [`MaskSchedule`] of [`FaultModel`]s (transient bit-flips,
//! stuck-at-0, stuck-at-1), replays the recorded clean stimuli of a real
//! run under each fault, and classifies every injected fault:
//!
//! * **detected** — some firing's output word diverges from the clean
//!   golden response; the firing index is the *detection latency in
//!   windows*, and the firing's level localises it in the architecture
//!   decomposition. Each detection is confirmed at instruction granularity
//!   by [`CoSimulator::triage_vectors`] on a reconstructed faulty vector
//!   file;
//! * **masked** — the fault corrupts the instruction's result word in at
//!   least one firing, but the corruption never reaches an output (logical
//!   masking in the cone DAG);
//! * **silent** — the fault never changes the instruction's result on the
//!   campaign's stimuli (a stuck-at that agrees with the value it would
//!   force), so no test could observe it.
//!
//! The sweep is replay-based, not rerun-based: the clean run's per-firing
//! stimulus/response words are recorded once
//! ([`CoSimulator::golden_vectors`]) and every fault replays individual
//! firings through [`eval_cone_raw_traced`] with early exit at the first
//! detection — the cost per fault is a handful of cone evaluations, not a
//! whole-frame co-simulation.

use isl_fpga::FixedFormat;
use isl_ir::{Cone, Window};
use isl_sim::{CompiledCone, FrameSet};
use isl_vhdl::vectors::VectorFile;

use crate::cosim::{replay_read, CoSimulator, TriageOutcome};
use crate::error::CosimError;
use crate::vm::{eval_cone_raw_traced, Fault, FaultModel};

/// Which corruptions a campaign injects at every instruction: a set of bit
/// masks crossed with the enabled fault-model kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskSchedule {
    masks: Vec<i64>,
    bit_flip: bool,
    stuck_at: bool,
}

impl MaskSchedule {
    /// The standard schedule for a format: single-bit masks at the LSB, the
    /// lowest integer bit and the sign bit (deduplicated for narrow words),
    /// all three fault models.
    pub fn standard(fmt: FixedFormat) -> Self {
        let mut bits = vec![0u32, fmt.frac.min(fmt.width - 1), fmt.width - 1];
        bits.sort_unstable();
        bits.dedup();
        MaskSchedule {
            masks: bits.into_iter().map(|b| 1i64 << b).collect(),
            bit_flip: true,
            stuck_at: true,
        }
    }

    /// A minimal schedule: a single-LSB mask, all three fault models — the
    /// cheapest sweep that still exercises every instruction and every
    /// model kind (used by the CI smoke shard).
    pub fn lsb() -> Self {
        MaskSchedule {
            masks: vec![1],
            bit_flip: true,
            stuck_at: true,
        }
    }

    /// An explicit mask list, all three fault models.
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] when `masks` is empty or contains a zero mask
    /// (a zero mask corrupts nothing under any model).
    pub fn with_masks(masks: Vec<i64>) -> Result<Self, CosimError> {
        if masks.is_empty() || masks.contains(&0) {
            return Err(CosimError::Sim(
                "mask schedule needs at least one non-zero mask".into(),
            ));
        }
        Ok(MaskSchedule {
            masks,
            bit_flip: true,
            stuck_at: true,
        })
    }

    /// Restrict to transient bit-flips only.
    pub fn bit_flip_only(mut self) -> Self {
        self.bit_flip = true;
        self.stuck_at = false;
        self
    }

    /// Restrict to stuck-at models only.
    pub fn stuck_at_only(mut self) -> Self {
        self.bit_flip = false;
        self.stuck_at = true;
        self
    }

    /// Every fault model of the schedule (mask × kind cross product).
    pub fn models(&self) -> Vec<FaultModel> {
        let mut out = Vec::new();
        for &mask in &self.masks {
            if self.bit_flip {
                out.push(FaultModel::BitFlip { mask });
            }
            if self.stuck_at {
                out.push(FaultModel::StuckAt0 { mask });
                out.push(FaultModel::StuckAt1 { mask });
            }
        }
        out
    }
}

/// Per-model-kind classification counts of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelCoverage {
    /// Model kind name (`bit-flip`, `stuck-at-0`, `stuck-at-1`).
    pub model: String,
    /// Faults injected under this kind.
    pub faults: usize,
    /// Faults whose corruption reached an output word.
    pub detected: usize,
    /// Faults that perturbed an instruction result but never an output.
    pub masked: usize,
    /// Faults that never perturbed any instruction result.
    pub silent: usize,
}

/// Detections whose *first* diverging firing belongs to one decomposition
/// level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelDetections {
    /// Level index of the architecture decomposition.
    pub level: u32,
    /// Faults first detected at this level.
    pub detected: usize,
}

/// One detected fault of the report's sample: where it was injected, where
/// it was first observed, and whether triage confirmed the instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedFault {
    /// The injected fault.
    pub fault: Fault,
    /// Cone depth of the program the fault lives in (the main shape, or
    /// the remainder shape of a non-divisor decomposition).
    pub shape_depth: u32,
    /// Opcode mnemonic of the faulted instruction.
    pub opcode: String,
    /// Firing (vector-record) index of the first diverging output word —
    /// the detection latency in windows.
    pub latency: usize,
    /// Decomposition level of the first diverging firing.
    pub level: u32,
    /// Whether [`CoSimulator::triage_vectors`] pinned the reconstructed
    /// faulty vector file back to exactly this instruction.
    pub triaged: bool,
}

/// Coverage evidence of one fault campaign: classification counts, the
/// per-model and per-level breakdowns, and detection-latency statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCoverageReport {
    /// Entity name of the main cone shape.
    pub entity: String,
    /// Architecture window.
    pub window: Window,
    /// Architecture cone depth.
    pub depth: u32,
    /// Iterations of the campaign run.
    pub iterations: u32,
    /// Hardware format.
    pub format: FixedFormat,
    /// Instructions swept, summed over the distinct cone shapes.
    pub instructions: usize,
    /// Faults injected (instructions × schedule models).
    pub faults: usize,
    /// Faults whose corruption reached an output word.
    pub detected: usize,
    /// Faults that perturbed a result word but never an output.
    pub masked: usize,
    /// Faults that never perturbed any result word on these stimuli.
    pub silent: usize,
    /// Of the silent faults, how many the `isl-analyze` known-bits
    /// abstraction **predicted** silent — and therefore classified without
    /// scanning or replaying a single stimulus. Statically predicted
    /// silence is a proof over *all* in-format stimuli, so
    /// `predicted_silent <= silent` always (the property suite asserts
    /// the subset relation against the measured outcomes).
    pub predicted_silent: usize,
    /// Detections confirmed at instruction granularity by triage.
    pub triaged: usize,
    /// Classification split by fault-model kind.
    pub by_model: Vec<ModelCoverage>,
    /// First-detection counts per decomposition level.
    pub by_level: Vec<LevelDetections>,
    /// Mean detection latency over detected faults, in windows.
    pub mean_latency: f64,
    /// Largest detection latency, in windows.
    pub max_latency: usize,
    /// A bounded sample of detected faults (first
    /// [`FaultCoverageReport::SAMPLE_CAP`], in sweep order).
    pub sample: Vec<DetectedFault>,
}

impl FaultCoverageReport {
    /// Cap on the detected-fault sample kept in the report.
    pub const SAMPLE_CAP: usize = 32;

    /// Detected fraction of all injected faults, `0..=1`.
    pub fn detection_rate(&self) -> f64 {
        if self.faults == 0 {
            return 0.0;
        }
        self.detected as f64 / self.faults as f64
    }

    /// Detected fraction of the faults that actually perturbed a result
    /// word (silent faults excluded — no observer could catch them).
    pub fn active_detection_rate(&self) -> f64 {
        let active = self.faults - self.silent;
        if active == 0 {
            return 0.0;
        }
        self.detected as f64 / active as f64
    }
}

impl std::fmt::Display for FaultCoverageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fault campaign `{}` w{} d{} x{} iters, {}: {} instructions, {} faults",
            self.entity,
            self.window,
            self.depth,
            self.iterations,
            self.format,
            self.instructions,
            self.faults,
        )?;
        writeln!(
            f,
            "  detected {} ({:.1}% of all, {:.1}% of active) | masked {} | silent {} \
             ({} proven statically) | triaged {}/{}",
            self.detected,
            100.0 * self.detection_rate(),
            100.0 * self.active_detection_rate(),
            self.masked,
            self.silent,
            self.predicted_silent,
            self.triaged,
            self.detected,
        )?;
        for m in &self.by_model {
            writeln!(
                f,
                "  {:<11} {} faults: {} detected / {} masked / {} silent",
                m.model, m.faults, m.detected, m.masked, m.silent
            )?;
        }
        write!(
            f,
            "  latency: mean {:.2} windows, max {} windows",
            self.mean_latency, self.max_latency
        )
    }
}

/// Internal per-shape campaign state: the compiled program, the shape's
/// vector file, the clean per-record instruction traces, and the static
/// per-instruction facts (when the slot program lifts cleanly — it always
/// does for compiler-produced programs; `None` merely disables prediction).
struct ShapeRun<'f> {
    file: &'f VectorFile,
    cc: CompiledCone,
    traces: Vec<Vec<i64>>,
    analysis: Option<isl_analyze::Analysis>,
}

/// Is `fault` provably silent on every in-format stimulus, by the static
/// facts alone? A stuck-at on bits the abstraction knows to already hold
/// the stuck value cannot change any produced word; a bit flip always
/// changes the word, so it is never statically silent (it may still be
/// dynamically silent on stimuli that never exercise the instruction —
/// that remains the trace scan's job).
fn predicted_silent(analysis: Option<&isl_analyze::Analysis>, fault: &Fault) -> bool {
    let Some(a) = analysis else { return false };
    let v = a.value(fault.instr);
    match fault.model {
        FaultModel::BitFlip { .. } => false,
        FaultModel::StuckAt0 { mask } => v.always_zero(mask),
        FaultModel::StuckAt1 { mask } => v.always_one(mask),
    }
}

impl CoSimulator<'_> {
    /// Run a full fault-injection campaign over the cone-architecture
    /// decomposition `(window, depth)` on `init`: record the clean run's
    /// golden vectors, then inject every model of `schedule` at **every
    /// instruction** of every distinct cone shape, replay the recorded
    /// stimuli under each fault and classify it (see the [module
    /// docs](crate::campaign)). Every detection is confirmed at
    /// instruction granularity through [`CoSimulator::triage_vectors`].
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] when this co-simulator already carries a fault
    /// hypothesis (the campaign owns fault injection) or on a frame-set
    /// mismatch; [`CosimError::Cone`] on cone-construction failures.
    pub fn fault_campaign(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        schedule: &MaskSchedule,
    ) -> Result<FaultCoverageReport, CosimError> {
        let _span = isl_telemetry::span("cosim", "fault campaign");
        if self.fault.is_some() {
            return Err(CosimError::Sim(
                "fault campaign requires a clean co-simulator (drop with_fault)".into(),
            ));
        }
        let models = schedule.models();
        if models.is_empty() {
            return Err(CosimError::Sim("mask schedule has no models".into()));
        }
        let files = self.golden_vectors(init, iterations, window, depth)?;
        let fmt = self.format();

        // Clean replay per shape: compiled program + per-record traces. The
        // replayed outputs must reproduce the recorded responses exactly —
        // anything else means the file and the program drifted apart.
        let mut shapes = Vec::with_capacity(files.len());
        for file in &files {
            let cone = Cone::build(self.pattern(), file.window, file.depth)?;
            let cc = CompiledCone::compile_with(&cone, &self.params, false);
            let mut traces = Vec::with_capacity(file.records.len());
            for (ri, record) in file.records.iter().enumerate() {
                let read = replay_read(self.pattern(), file, ri);
                let (outs, trace) = eval_cone_raw_traced(&cc, fmt, &read, None);
                if outs != record.response {
                    return Err(CosimError::Sim(format!(
                        "clean replay of `{}` record {ri} disagrees with its recorded response",
                        file.entity
                    )));
                }
                traces.push(trace);
            }
            // Static facts over the full in-format input range: every
            // stimulus word in a vector file was produced by `quantize`
            // or by the datapath itself, so `[min_raw, max_raw]` is a
            // sound input assumption and the per-instruction known bits
            // hold for *every* record this campaign replays.
            let analysis =
                isl_analyze::Analysis::of_cone(&cc, fmt, isl_analyze::WordRange::full(fmt)).ok();
            shapes.push(ShapeRun {
                file,
                cc,
                traces,
                analysis,
            });
        }

        let mut report = FaultCoverageReport {
            entity: files
                .iter()
                .max_by_key(|f| f.depth)
                .map(|f| f.entity.clone())
                .unwrap_or_default(),
            window,
            depth,
            iterations,
            format: fmt,
            instructions: shapes.iter().map(|s| s.cc.len()).sum(),
            faults: 0,
            detected: 0,
            masked: 0,
            silent: 0,
            predicted_silent: 0,
            triaged: 0,
            by_model: models
                .iter()
                .map(|m| m.name())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .map(|name| ModelCoverage {
                    model: name.to_string(),
                    faults: 0,
                    detected: 0,
                    masked: 0,
                    silent: 0,
                })
                .collect(),
            by_level: Vec::new(),
            mean_latency: 0.0,
            max_latency: 0,
            sample: Vec::new(),
        };
        let mut latency_sum = 0usize;

        for shape in &shapes {
            for instr in 0..shape.cc.len() {
                let (opcode, _, _) =
                    crate::cosim::InstrDivergence::describe(&shape.cc.code()[instr]);
                for model in &models {
                    let fault = Fault {
                        instr,
                        model: *model,
                    };
                    report.faults += 1;
                    let mc = report
                        .by_model
                        .iter_mut()
                        .find(|m| m.model == model.name())
                        .expect("model row built above");
                    mc.faults += 1;

                    // Statically proven silence: the known-bits facts show
                    // the stuck-at mask cannot change this instruction's
                    // word on any in-format stimulus — classify without
                    // touching a single trace. (In debug builds the scan
                    // re-runs anyway and must agree: the prediction is a
                    // proof, the measurement its cross-validation.)
                    if predicted_silent(shape.analysis.as_ref(), &fault) {
                        debug_assert!(
                            shape
                                .traces
                                .iter()
                                .all(|t| model.apply(t[instr]) == t[instr]),
                            "statically predicted-silent fault was active: {} at instr {instr}",
                            model.name()
                        );
                        report.silent += 1;
                        report.predicted_silent += 1;
                        mc.silent += 1;
                        isl_telemetry::add("campaign.predicted_silent", 1);
                        continue;
                    }

                    // Silent check from the clean traces alone: the first
                    // record where the model would actually change the
                    // faulted instruction's result word.
                    let first_active = shape
                        .traces
                        .iter()
                        .position(|t| model.apply(t[instr]) != t[instr]);
                    let Some(first_active) = first_active else {
                        report.silent += 1;
                        mc.silent += 1;
                        continue;
                    };

                    // Replay firings from the first active record; the
                    // first output divergence is the detection.
                    let mut detection: Option<(usize, Vec<i64>)> = None;
                    for ri in first_active..shape.file.records.len() {
                        let read = replay_read(self.pattern(), shape.file, ri);
                        let (outs, _) =
                            eval_cone_raw_traced(&shape.cc, fmt, &read, Some(fault));
                        if outs != shape.file.records[ri].response {
                            detection = Some((ri, outs));
                            break;
                        }
                    }
                    let Some((latency, faulty_outs)) = detection else {
                        report.masked += 1;
                        mc.masked += 1;
                        continue;
                    };
                    report.detected += 1;
                    mc.detected += 1;
                    latency_sum += latency;
                    report.max_latency = report.max_latency.max(latency);
                    let level = shape.file.records[latency].level;
                    match report.by_level.iter_mut().find(|l| l.level == level) {
                        Some(l) => l.detected += 1,
                        None => report.by_level.push(LevelDetections { level, detected: 1 }),
                    }

                    // Triage confirmation: rebuild the faulty vector file up
                    // to the detection and let the triage machinery pin the
                    // divergence back to the injected instruction.
                    let mut faulty_file = VectorFile {
                        entity: shape.file.entity.clone(),
                        format: shape.file.format,
                        window: shape.file.window,
                        depth: shape.file.depth,
                        ports_in: shape.file.ports_in.clone(),
                        ports_out: shape.file.ports_out.clone(),
                        records: shape.file.records[..=latency].to_vec(),
                    };
                    faulty_file.records[latency].response = faulty_outs;
                    let triaged = match self
                        .clone()
                        .with_fault(fault)
                        .triage_vectors(&faulty_file)?
                    {
                        TriageOutcome::Diverged(r) => {
                            r.record == latency
                                && r.divergence.as_ref().is_some_and(|d| d.instr == instr)
                        }
                        TriageOutcome::NoDivergence => false,
                    };
                    if triaged {
                        report.triaged += 1;
                    }
                    if report.sample.len() < FaultCoverageReport::SAMPLE_CAP {
                        report.sample.push(DetectedFault {
                            fault,
                            shape_depth: shape.file.depth,
                            opcode: opcode.clone(),
                            latency,
                            level,
                            triaged,
                        });
                    }
                }
            }
        }
        report.by_level.sort_by_key(|l| l.level);
        report.mean_latency = if report.detected == 0 {
            0.0
        } else {
            latency_sum as f64 / report.detected as f64
        };
        if isl_telemetry::enabled() {
            isl_telemetry::add("campaign.faults", report.faults as u64);
            isl_telemetry::add("campaign.detected", report.detected as u64);
            isl_telemetry::add("campaign.masked", report.masked as u64);
            isl_telemetry::add("campaign.silent", report.silent as u64);
            isl_telemetry::add("campaign.triaged", report.triaged as u64);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern};
    use isl_sim::{Frame, FrameSet};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    #[test]
    fn campaign_classifies_every_fault() {
        let p = blur();
        let fmt = FixedFormat::default();
        let cosim = CoSimulator::new(&p, fmt).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_fn(8, 6, |x, y| {
            ((x * 3 + y * 5) % 13) as f64 / 4.0 - 1.5
        })])
        .unwrap();
        let schedule = MaskSchedule::lsb();
        let report = cosim
            .fault_campaign(&init, 3, Window::square(3), 2, &schedule)
            .unwrap();
        assert_eq!(
            report.faults,
            report.detected + report.masked + report.silent
        );
        assert_eq!(report.faults, report.instructions * 3);
        assert!(report.detected > 0, "{report}");
        // Every detection is pinned back to its instruction.
        assert_eq!(report.triaged, report.detected, "{report}");
        assert!(!report.by_level.is_empty());
        assert_eq!(
            report.by_level.iter().map(|l| l.detected).sum::<usize>(),
            report.detected
        );
        let by_model: usize = report.by_model.iter().map(|m| m.faults).sum();
        assert_eq!(by_model, report.faults);
    }

    #[test]
    fn bit_flips_are_never_silent() {
        let p = blur();
        let fmt = FixedFormat::default();
        let cosim = CoSimulator::new(&p, fmt).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_fn(6, 5, |x, y| {
            (x as f64 - y as f64) / 3.0
        })])
        .unwrap();
        let schedule = MaskSchedule::lsb().bit_flip_only();
        let report = cosim
            .fault_campaign(&init, 2, Window::square(2), 1, &schedule)
            .unwrap();
        assert_eq!(report.silent, 0, "{report}");
        assert_eq!(report.faults, report.instructions);
    }

    #[test]
    fn campaign_rejects_faulty_cosim() {
        let p = blur();
        let cosim = CoSimulator::new(&p, FixedFormat::default())
            .unwrap()
            .with_fault(Fault::bit_flip(0, 1));
        let init = FrameSet::from_frames(vec![Frame::new(4, 4)]).unwrap();
        let err = cosim
            .fault_campaign(&init, 1, Window::square(2), 1, &MaskSchedule::lsb())
            .unwrap_err();
        assert!(matches!(err, CosimError::Sim(_)));
    }
}
