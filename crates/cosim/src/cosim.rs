//! The co-simulator: integer-domain execution of whole architecture runs,
//! golden-vector generation and mismatch triage.

use isl_fpga::FixedFormat;
use isl_ir::{Cone, Leaf, Node, NodeId, StencilPattern, Window};
use isl_sim::{BorderMode, CompiledCone, CompiledPattern, Frame, FrameSet};
use isl_vhdl::codegen;
use isl_vhdl::vectors::{VectorFile, VectorRecord};
use isl_vhdl::VectorCheckError;

use crate::error::CosimError;
use crate::vm::{eval_cone_raw_traced, eval_kernel_raw, Fault};

/// Frames of raw fixed-point words — the integer-domain mirror of
/// [`isl_sim::FrameSet`]. One buffer per pattern field, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntFrameSet {
    width: usize,
    height: usize,
    frames: Vec<Vec<i64>>,
}

impl IntFrameSet {
    /// Load an `f64` frame set into the integer domain (round-to-nearest
    /// with saturation per sample — the window-buffer load of the hardware).
    pub fn quantize(fs: &FrameSet, fmt: FixedFormat) -> Self {
        IntFrameSet {
            width: fs.width(),
            height: fs.height(),
            frames: fs
                .frames()
                .iter()
                .map(|f| f.as_slice().iter().map(|&v| fmt.quantize(v)).collect())
                .collect(),
        }
    }

    /// Convert back to real-unit frames.
    pub fn dequantize(&self, fmt: FixedFormat) -> FrameSet {
        FrameSet::from_frames(
            self.frames
                .iter()
                .map(|data| {
                    Frame::from_vec(
                        self.width,
                        self.height,
                        data.iter().map(|&r| fmt.dequantize(r)).collect(),
                    )
                })
                .collect(),
        )
        .expect("congruent frames")
    }

    /// Frame width in samples.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in samples.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the set has no fields.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Raw word of field `field` at in-bounds `(x, y)`.
    pub fn word(&self, field: usize, x: usize, y: usize) -> i64 {
        self.frames[field][y * self.width + x]
    }

    /// Border-resolved raw read at possibly-out-of-frame coordinates. The
    /// border constant is quantised on entry, like any other loaded sample.
    pub fn sample(&self, field: usize, x: i64, y: i64, border: BorderMode, fmt: FixedFormat) -> i64 {
        let rx = border.resolve(x, self.width as i64);
        let ry = border.resolve(y, self.height as i64);
        match (rx, ry) {
            (Some(rx), Some(ry)) => self.frames[field][ry as usize * self.width + rx as usize],
            _ => fmt.quantize(
                border
                    .constant_value()
                    .expect("resolve returns None only for Constant"),
            ),
        }
    }
}

/// Numeric deviation of a fixed-point run from its `f64` reference — the
/// per-probe measurement of the precision design-space exploration (one
/// [`ErrorMetrics`] per probed [`FixedFormat`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorMetrics {
    /// Largest `|fixed − reference|` over every sample of every field.
    pub max_abs: f64,
    /// Root-mean-square error over every sample of every field.
    pub rms: f64,
    /// Samples compared.
    pub samples: usize,
}

/// Measure how far a (dequantised) fixed-point run drifted from its `f64`
/// reference: the max-abs and RMS error over every sample of every field.
///
/// A non-finite deviation (the `f64` reference diverged to NaN/∞ — the
/// integer domain itself cannot) reports as `f64::INFINITY` on both
/// metrics: deterministic, equal across runs (`NaN` would poison the
/// stored certificate's equality), and inadmissible under every budget.
///
/// # Panics
///
/// Panics when the two sets differ in field count or frame shape (they are
/// two runs of one workload by construction).
pub fn error_metrics(reference: &FrameSet, fixed: &FrameSet) -> ErrorMetrics {
    assert_eq!(reference.len(), fixed.len(), "field count mismatch");
    let mut max_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut samples = 0usize;
    for (a, b) in reference.frames().iter().zip(fixed.frames()) {
        assert!(
            a.width() == b.width() && a.height() == b.height(),
            "frame shape mismatch"
        );
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            let d = (x - y).abs();
            let d = if d.is_nan() { f64::INFINITY } else { d };
            max_abs = max_abs.max(d);
            sum_sq += d * d;
            samples += 1;
        }
    }
    let rms = if samples == 0 {
        0.0
    } else {
        (sum_sq / samples as f64).sqrt()
    };
    ErrorMetrics { max_abs, rms, samples }
}

/// The first diverging instruction of a triaged firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrDivergence {
    /// Instruction index in the compiled cone program.
    pub instr: usize,
    /// Short opcode mnemonic (`const`, `input`, `add`, `sqrt`, `select`,
    /// ...) — the instruction *kind*, stable across renderings.
    pub opcode: String,
    /// Human-readable rendering of the instruction.
    pub op: String,
    /// For `input` instructions, the source field and stencil offset the
    /// instruction reads (e.g. `field 1 @ (0, -1)`); `None` for
    /// non-input instructions.
    pub source: Option<String>,
    /// Result word of the clean reference VM.
    pub expected: i64,
    /// Result word under the fault hypothesis.
    pub got: i64,
}

impl InstrDivergence {
    /// Describe a compiled-cone instruction: `(opcode, render, source)`.
    pub(crate) fn describe(instr: &isl_sim::Instr) -> (String, String, Option<String>) {
        use isl_sim::Instr as I;
        let opcode = match instr {
            I::Const(_) => "const".to_string(),
            I::Input { .. } => "input".to_string(),
            I::Unary { op, .. } => format!("{op:?}").to_ascii_lowercase(),
            I::Binary { op, .. } => format!("{op:?}").to_ascii_lowercase(),
            I::Select { .. } => "select".to_string(),
        };
        let source = match instr {
            I::Input { field, dx, dy } => Some(format!("field {field} @ ({dx}, {dy})")),
            _ => None,
        };
        (opcode, format!("{instr:?}"), source)
    }
}

/// Outcome of [`CoSimulator::triage_vectors`]: either every response word of
/// the file checked out, or the first divergence with its full triage.
#[derive(Debug, Clone, PartialEq)]
pub enum TriageOutcome {
    /// Every record of the vector file matched the independent
    /// re-derivation bit for bit.
    NoDivergence,
    /// The file diverges; the report localises the first diverging firing
    /// (and, under a reproducing fault hypothesis, the instruction).
    Diverged(TriageReport),
}

impl TriageOutcome {
    /// `true` when every word checked out.
    pub fn is_clean(&self) -> bool {
        matches!(self, TriageOutcome::NoDivergence)
    }

    /// The triage report, when the file diverged.
    pub fn report(&self) -> Option<&TriageReport> {
        match self {
            TriageOutcome::NoDivergence => None,
            TriageOutcome::Diverged(r) => Some(r),
        }
    }

    /// Consume the outcome into its report, when the file diverged.
    pub fn into_report(self) -> Option<TriageReport> {
        match self {
            TriageOutcome::NoDivergence => None,
            TriageOutcome::Diverged(r) => Some(r),
        }
    }
}

/// A triaged golden-vector mismatch: the first diverging firing (record,
/// level, tile and port) and — when the co-simulator carries a fault
/// hypothesis that reproduces the file — the first diverging instruction
/// inside that firing.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageReport {
    /// Entity the vectors drive.
    pub entity: String,
    /// Record index in file order.
    pub record: usize,
    /// Decomposition level of the diverging firing.
    pub level: u32,
    /// Tile origin of the diverging firing, frame coordinates.
    pub tile: (i64, i64),
    /// First diverging output port.
    pub port: String,
    /// Raw word the independent checker derived.
    pub expected: i64,
    /// Raw word the file recorded.
    pub got: i64,
    /// First diverging instruction (present when the fault hypothesis
    /// reproduces a divergence on this firing's stimulus).
    pub divergence: Option<InstrDivergence>,
}

impl std::fmt::Display for TriageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "first divergence: `{}` record {} (level {}, tile ({}, {})) port `{}`: expected {}, got {}",
            self.entity, self.record, self.level, self.tile.0, self.tile.1, self.port,
            self.expected, self.got
        )?;
        if let Some(d) = &self.divergence {
            write!(
                f,
                "; instruction {} `{}` [{}]: {} -> {}",
                d.instr, d.opcode, d.op, d.expected, d.got
            )?;
            if let Some(src) = &d.source {
                write!(f, " (reads {src})")?;
            }
        }
        Ok(())
    }
}

/// Bit-true co-simulator of one stencil pattern on one hardware format.
///
/// Runs whole frames ([`CoSimulator::run_frames`]) and cone-architecture
/// decompositions ([`CoSimulator::run_cone_levels`]) entirely on raw `i64`
/// words through the integer VM, generates per-firing golden-vector files
/// ([`CoSimulator::golden_vectors`]) for the VHDL backend, and triages
/// vector mismatches down to the instruction
/// ([`CoSimulator::triage_vectors`]).
#[derive(Debug, Clone)]
pub struct CoSimulator<'p> {
    pattern: &'p StencilPattern,
    fmt: FixedFormat,
    border: BorderMode,
    pub(crate) params: Vec<f64>,
    pub(crate) fault: Option<Fault>,
}

impl<'p> CoSimulator<'p> {
    /// Wrap a validated pattern with default border (clamp) and default
    /// parameter values.
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] for invalid or rank-3 patterns.
    pub fn new(pattern: &'p StencilPattern, fmt: FixedFormat) -> Result<Self, CosimError> {
        // Every cone/kernel this co-simulator compiles is bytecode-verified
        // in debug builds (idempotent; first install wins).
        isl_analyze::install_debug_verifier();
        pattern
            .validate()
            .map_err(|e| CosimError::Sim(e.to_string()))?;
        if pattern.rank() > 2 {
            return Err(CosimError::Sim(format!(
                "cannot co-simulate rank-{} patterns (supported: 1, 2)",
                pattern.rank()
            )));
        }
        Ok(CoSimulator {
            pattern,
            fmt,
            border: BorderMode::default(),
            params: pattern.params().iter().map(|p| p.default).collect(),
            fault: None,
        })
    }

    /// Select the border mode.
    pub fn with_border(mut self, border: BorderMode) -> Self {
        self.border = border;
        self
    }

    /// Override parameter values (by [`isl_ir::ParamId`] index).
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] when the length differs from the pattern's
    /// parameter list.
    pub fn with_params(mut self, params: Vec<f64>) -> Result<Self, CosimError> {
        if params.len() != self.pattern.params().len() {
            return Err(CosimError::Sim(format!(
                "parameter vector has {} values but the pattern declares {}",
                params.len(),
                self.pattern.params().len()
            )));
        }
        self.params = params;
        Ok(self)
    }

    /// Inject a deliberate datapath fault (see [`Fault`]) into every cone
    /// firing — the self-test hook that lets the triage machinery prove it
    /// catches real divergence.
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The hardware format.
    pub fn format(&self) -> FixedFormat {
        self.fmt
    }

    /// The pattern being co-simulated.
    pub fn pattern(&self) -> &StencilPattern {
        self.pattern
    }

    fn check(&self, init: &FrameSet) -> Result<(), CosimError> {
        if init.len() != self.pattern.fields().len() {
            return Err(CosimError::Sim(format!(
                "frame set has {} frames but the pattern declares {} fields",
                init.len(),
                self.pattern.fields().len()
            )));
        }
        Ok(())
    }

    /// `iterations` whole-frame steps in the integer domain — the sibling
    /// of [`isl_sim::Simulator::run`] on raw words, every operation through
    /// the hardware datapath.
    ///
    /// # Errors
    ///
    /// [`CosimError::Sim`] on a frame-set mismatch.
    pub fn run_frames(&self, init: &FrameSet, iterations: u32) -> Result<IntFrameSet, CosimError> {
        self.check(init)?;
        let cp = CompiledPattern::compile(self.pattern, &self.params, false);
        let mut state = IntFrameSet::quantize(init, self.fmt);
        let (w, h) = (state.width as i64, state.height as i64);
        for _ in 0..iterations {
            let mut next = state.clone();
            for fi in 0..cp.field_count() {
                let Some(kernel) = cp.kernel(fi) else {
                    continue; // static field: buffer carried over
                };
                for y in 0..h {
                    for x in 0..w {
                        let v = eval_kernel_raw(kernel, self.fmt, |f, dx, dy| {
                            state.sample(
                                f as usize,
                                x + i64::from(dx),
                                y + i64::from(dy),
                                self.border,
                                self.fmt,
                            )
                        });
                        next.frames[fi][(y * w + x) as usize] = v;
                    }
                }
            }
            state = next;
        }
        Ok(state)
    }

    /// Execute the cone-architecture decomposition (`iterations` split into
    /// depth-`depth` levels plus a remainder level) entirely in the integer
    /// domain: every window tile of every level runs through the integer
    /// VM, borders resolved at each level's base inputs — exactly what the
    /// generated hardware computes.
    ///
    /// # Errors
    ///
    /// [`CosimError::Cone`] for `depth == 0` or cone-construction failures;
    /// [`CosimError::Sim`] on a frame-set mismatch.
    pub fn run_cone_levels(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<IntFrameSet, CosimError> {
        let (state, _) = self.cone_levels_impl(init, iterations, window, depth, false)?;
        Ok(state)
    }

    /// Run the cone-architecture decomposition and record every cone firing
    /// as a golden vector: the raw stimulus word of each data input port
    /// and the raw response word of each output port, per window tile per
    /// level. Returns one [`VectorFile`] per *distinct* cone shape (the
    /// main depth, plus the remainder depth when `depth` does not divide
    /// `iterations`), ready for [`isl_vhdl::check::verify_vectors`] and the
    /// vector-file testbench mode.
    ///
    /// # Errors
    ///
    /// Same as [`CoSimulator::run_cone_levels`].
    pub fn golden_vectors(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
    ) -> Result<Vec<VectorFile>, CosimError> {
        let _span = isl_telemetry::span("cosim", "golden vectors");
        let (_, files) = self.cone_levels_impl(init, iterations, window, depth, true)?;
        Ok(files)
    }

    fn cone_levels_impl(
        &self,
        init: &FrameSet,
        iterations: u32,
        window: Window,
        depth: u32,
        record: bool,
    ) -> Result<(IntFrameSet, Vec<VectorFile>), CosimError> {
        self.check(init)?;
        if depth == 0 {
            return Err(CosimError::Cone("cone depth must be at least 1".into()));
        }
        // The paper's decomposition — shared with the quantised engines so
        // co-simulated levels correspond to simulated levels exactly.
        let level_plan = isl_sim::level_depths(iterations, depth);
        struct Shape {
            cone: Cone,
            cc: CompiledCone,
            ports_in: Vec<String>,
            file: VectorFile,
        }
        let mut shapes: Vec<(u32, Shape)> = Vec::new();
        let mut state = IntFrameSet::quantize(init, self.fmt);
        let (w, h) = (state.width as i64, state.height as i64);
        let (tw, th) = (window.w as i64, window.h as i64);
        for (li, &d) in level_plan.iter().enumerate() {
            if !shapes.iter().any(|(sd, _)| *sd == d) {
                let cone = Cone::build(self.pattern, window, d)?;
                let cc = CompiledCone::compile_with(&cone, &self.params, false);
                let (ports_in, ports_out) = cone_ports(&cone);
                let file = VectorFile {
                    entity: codegen::entity_name(&cone),
                    format: self.fmt,
                    window,
                    depth: d,
                    ports_in: ports_in.clone(),
                    ports_out,
                    records: Vec::new(),
                };
                shapes.push((
                    d,
                    Shape {
                        cone,
                        cc,
                        ports_in,
                        file,
                    },
                ));
            }
            let shape = &mut shapes
                .iter_mut()
                .find(|(sd, _)| *sd == d)
                .expect("shape built above")
                .1;
            let mut next = state.clone();
            let mut ty = 0;
            while ty < h {
                let mut tx = 0;
                while tx < w {
                    let read = |f: u16, dx: i32, dy: i32| {
                        state.sample(
                            f as usize,
                            tx + i64::from(dx),
                            ty + i64::from(dy),
                            self.border,
                            self.fmt,
                        )
                    };
                    let (outs, _) = eval_cone_raw_traced(&shape.cc, self.fmt, read, self.fault);
                    if record {
                        let stimulus = stimulus_words(
                            &shape.cone,
                            &shape.ports_in,
                            &self.params,
                            self.fmt,
                            &read,
                        );
                        shape.file.records.push(VectorRecord {
                            level: li as u32,
                            tile: (tx, ty),
                            stimulus,
                            response: outs.clone(),
                        });
                    }
                    for (slot, v) in shape.cc.outputs().iter().zip(&outs) {
                        let (ax, ay) = (tx + i64::from(slot.px), ty + i64::from(slot.py));
                        if ax < w && ay < h {
                            next.frames[slot.field as usize][(ay * w + ax) as usize] = *v;
                        }
                    }
                    tx += tw;
                }
                ty += th;
            }
            state = next;
        }
        let files = shapes.into_iter().map(|(_, s)| s.file).collect();
        Ok((state, files))
    }

    /// Locate the first diverging firing of `file` against the clean
    /// integer reference — and, when this co-simulator carries a [`Fault`]
    /// hypothesis that reproduces the divergence, the first diverging
    /// instruction inside that firing. Returns
    /// [`TriageOutcome::NoDivergence`] when every word checks out.
    ///
    /// # Errors
    ///
    /// [`CosimError::Incompatible`] when the file does not describe a cone
    /// of this pattern; [`CosimError::Cone`] on construction failure.
    pub fn triage_vectors(&self, file: &VectorFile) -> Result<TriageOutcome, CosimError> {
        let cone = Cone::build(self.pattern, file.window, file.depth)?;
        let mismatch = match isl_vhdl::check::verify_vectors(&cone, self.fmt, file) {
            Ok(_) => return Ok(TriageOutcome::NoDivergence),
            Err(VectorCheckError::Incompatible(m)) => return Err(CosimError::Incompatible(m)),
            Err(VectorCheckError::Mismatch(m)) => m,
        };
        // Replay the diverging firing's stimulus through the clean VM and
        // through the fault hypothesis; the first trace divergence is the
        // offending instruction.
        let cc = CompiledCone::compile_with(&cone, &self.params, false);
        let read = replay_read(self.pattern, file, mismatch.record);
        let divergence = self.fault.and_then(|fault| {
            let (_, clean) = eval_cone_raw_traced(&cc, self.fmt, &read, None);
            let (_, faulty) = eval_cone_raw_traced(&cc, self.fmt, &read, Some(fault));
            clean
                .iter()
                .zip(&faulty)
                .position(|(a, b)| a != b)
                .map(|i| {
                    let (opcode, op, source) = InstrDivergence::describe(&cc.code()[i]);
                    InstrDivergence {
                        instr: i,
                        opcode,
                        op,
                        source,
                        expected: clean[i],
                        got: faulty[i],
                    }
                })
        });
        Ok(TriageOutcome::Diverged(TriageReport {
            entity: file.entity.clone(),
            record: mismatch.record,
            level: mismatch.level,
            tile: mismatch.tile,
            port: mismatch.port,
            expected: mismatch.expected,
            got: mismatch.got,
            divergence,
        }))
    }
}

/// A read closure that replays record `ri` of a vector file: every
/// field/offset read resolves to the recorded stimulus word of the matching
/// input port (absent ports read as zero — the cone never reads them).
pub(crate) fn replay_read<'f>(
    pattern: &'f StencilPattern,
    file: &'f VectorFile,
    ri: usize,
) -> impl Fn(u16, i32, i32) -> i64 + 'f {
    let record = &file.records[ri];
    move |f: u16, dx: i32, dy: i32| -> i64 {
        let fid = isl_ir::FieldId::new(f);
        let point = isl_ir::Point::d2(dx, dy);
        let name = if pattern.field(fid).kind == isl_ir::FieldKind::Static {
            codegen::static_port_name(fid, point)
        } else {
            codegen::input_port_name(fid, point)
        };
        file.input_column(&name)
            .map(|c| record.stimulus[c])
            .unwrap_or(0)
    }
}

/// The data-port lists of a cone, in entity declaration order (parameters,
/// dynamic inputs, static inputs; then outputs) — must match
/// `isl_vhdl::codegen::generate_cone` exactly.
fn cone_ports(cone: &Cone) -> (Vec<String>, Vec<String>) {
    let graph = cone.graph();
    let roots: Vec<NodeId> = cone.outputs().iter().map(|o| o.node).collect();
    let mask = graph.reachable(&roots);
    let mut param_ids: Vec<usize> = graph
        .nodes()
        .filter(|(id, _)| mask[id.index()])
        .filter_map(|(_, n)| match n {
            Node::Leaf(Leaf::Param(p)) => Some(p.index()),
            _ => None,
        })
        .collect();
    param_ids.sort_unstable();
    param_ids.dedup();
    let mut ports_in: Vec<String> = param_ids.into_iter().map(codegen::param_port_name).collect();
    ports_in.extend(
        cone.inputs()
            .iter()
            .map(|i| codegen::input_port_name(i.field, i.point)),
    );
    ports_in.extend(
        cone.static_inputs()
            .iter()
            .map(|i| codegen::static_port_name(i.field, i.point)),
    );
    let ports_out = cone
        .outputs()
        .iter()
        .map(|o| codegen::output_port_name(o.field, o.point))
        .collect();
    (ports_in, ports_out)
}

/// The stimulus row of one firing, aligned to `ports_in`: quantised
/// parameter words, then the border-resolved dynamic and static input words
/// the VM read.
fn stimulus_words<R>(
    cone: &Cone,
    ports_in: &[String],
    params: &[f64],
    fmt: FixedFormat,
    read: &R,
) -> Vec<i64>
where
    R: Fn(u16, i32, i32) -> i64,
{
    let n_params = ports_in
        .iter()
        .filter(|p| p.starts_with("param_p"))
        .count();
    let mut words = Vec::with_capacity(ports_in.len());
    for name in &ports_in[..n_params] {
        let idx: usize = name
            .strip_prefix("param_p")
            .and_then(|s| s.parse().ok())
            .expect("parameter port name");
        words.push(fmt.quantize(params.get(idx).copied().unwrap_or(0.0)));
    }
    for inp in cone.inputs().iter().chain(cone.static_inputs()) {
        words.push(read(inp.field.index() as u16, inp.point.x, inp.point.y));
    }
    debug_assert_eq!(words.len(), ports_in.len());
    words
}
