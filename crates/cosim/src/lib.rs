//! # isl-cosim — bit-true hardware co-simulation
//!
//! The DAC 2013 flow's value proposition is that the *simulated* ISL and
//! the *generated hardware* compute the same thing. This crate closes that
//! loop executably, without an FPGA or a VHDL simulator in the container:
//!
//! * an **integer-domain fixed-point VM** ([`vm`]) — a sibling of
//!   `isl_sim::vm` that executes the same [`isl_sim::CompiledPattern`] /
//!   [`isl_sim::CompiledCone`] bytecode on raw `i64` words through the
//!   hardware datapath ([`isl_fpga::FixedFormat::apply_unary`] /
//!   [`apply_binary`](isl_fpga::FixedFormat::apply_binary)): saturating
//!   adds, truncating widened multiplies and divides, non-restoring square
//!   root — exactly the `isl_fixed_pkg` operations the VHDL backend emits.
//!   Property tests pin it bit-identical to the independent fixed-point
//!   graph interpreter ([`isl_fpga::eval_fixed`]);
//! * a **co-simulator** ([`CoSimulator`]) that runs whole frames and full
//!   cone-architecture decompositions (levels of depth-`d` cones, window by
//!   window, borders resolved at each level's base — what the generated
//!   hardware actually computes) entirely in the integer domain;
//! * **golden-vector exchange** — [`CoSimulator::golden_vectors`] records
//!   every cone firing of a run as raw stimulus/response words in the
//!   [`isl_vhdl::vectors`] format; `isl_vhdl` replays them in a
//!   vector-file testbench and certifies them word-for-word with
//!   [`isl_vhdl::check::verify_vectors`];
//! * **error metrics** — [`error_metrics`] measures the max-abs / RMS
//!   drift of a dequantised fixed-point run from its `f64` reference; the
//!   flow-level *format search* evaluates one [`ErrorMetrics`] per probed
//!   format against its error budget;
//! * **mismatch triage** — [`CoSimulator::triage_vectors`] pinpoints the
//!   first diverging window, level and (under a [`Fault`] hypothesis) the
//!   exact instruction — opcode and source field included — so a rounding
//!   bug anywhere in the datapath has a street address instead of a
//!   frame-sized diff;
//! * **fault-injection campaigns** — [`Fault`] carries a [`FaultModel`]
//!   (transient bit-flip, stuck-at-0, stuck-at-1 on any instruction's
//!   result word), and [`CoSimulator::fault_campaign`] sweeps every
//!   instruction × a [`MaskSchedule`] over whole cone programs, replaying
//!   the recorded golden stimuli under each fault and classifying it as
//!   detected / masked / silent into a [`FaultCoverageReport`] — the
//!   quantified answer to "would certification notice a broken bit?".
//!
//! ## The integer datapath contract
//!
//! One rule ties the layers together: **a value is a raw `i64` word of the
//! design's [`FixedFormat`](isl_fpga::FixedFormat), and every operation is
//! performed by the same function the synthesis model and the VHDL support
//! package define** — quantise on load (round-to-nearest, saturate),
//! saturate adds, truncate multiplies/divides after widening, comparisons
//! produce fixed-point `1.0`, selects forward words untouched. The `f64`
//! quantised engines (`run_quantized`, `run_tiled_quantized`,
//! `run_cone_dag_quantized` in `isl-sim`) approximate this contract with
//! round-to-nearest after every op; this crate *is* the contract, bit for
//! bit. The conversions [`quantizer_of`] / [`format_of`] (plus their
//! lock-step property tests) keep `isl_sim::Quantizer` and
//! `isl_fpga::FixedFormat` two views of the same definition.
//!
//! ```
//! use isl_cosim::CoSimulator;
//! use isl_fpga::FixedFormat;
//! use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern, Window};
//! use isl_sim::{Frame, FrameSet};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2).with_name("blur");
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::sum([
//!     Expr::input(f, Offset::d2(0, -1)),
//!     Expr::input(f, Offset::d2(-1, 0)),
//!     Expr::input(f, Offset::d2(1, 0)),
//!     Expr::input(f, Offset::d2(0, 1)),
//! ]);
//! p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))?;
//!
//! let cosim = CoSimulator::new(&p, FixedFormat::default())?;
//! let init = FrameSet::from_frames(vec![Frame::from_fn(12, 12, |x, y| (x + y) as f64 / 8.0)])?;
//! // Golden vectors for a window-4, depth-2 architecture over 4 iterations.
//! let files = cosim.golden_vectors(&init, 4, Window::square(4), 2)?;
//! for file in &files {
//!     let cone = isl_ir::Cone::build(&p, file.window, file.depth)?;
//!     let report = isl_vhdl::check::verify_vectors(&cone, FixedFormat::default(), file)?;
//!     assert!(report.words > 0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod convert;
mod cosim;
mod error;
pub mod vm;

pub use campaign::{
    DetectedFault, FaultCoverageReport, LevelDetections, MaskSchedule, ModelCoverage,
};
pub use convert::{format_of, quantizer_of};
pub use cosim::{
    error_metrics, CoSimulator, ErrorMetrics, InstrDivergence, IntFrameSet, TriageOutcome,
    TriageReport,
};
pub use error::CosimError;
pub use vm::{eval_cone_raw, eval_cone_raw_traced, eval_kernel_raw, Fault, FaultModel};
