//! The integer-domain fixed-point VM.
//!
//! A sibling of `isl_sim::vm` that executes the *same* compiled bytecode —
//! [`CompiledKernel`] / [`CompiledCone`] programs — on raw `i64` fixed-point
//! words instead of `f64` samples. Every instruction goes through the
//! integer datapath of [`FixedFormat::apply_unary`] /
//! [`FixedFormat::apply_binary`]: saturating adds, truncating widened
//! multiplies and divides, non-restoring square root — exactly the
//! `isl_fixed_pkg` operations the VHDL backend emits. Programs must be
//! lowered **without** constant folding (`compile_with(..., false)`) so
//! that every operation node of the reference graph exists as one
//! instruction and performs its own fixed-point arithmetic.
//!
//! The VM supports deliberate **fault injection** ([`Fault`]): corrupting a
//! chosen instruction's result word under one of the classic gate-level
//! [`FaultModel`]s (transient bit-flip, stuck-at-0, stuck-at-1). That is the
//! hook the mismatch-triage machinery uses to prove that a single-LSB
//! rounding fault anywhere in a cone is caught and pinpointed, and the
//! primitive the fault-campaign driver ([`crate::campaign`]) sweeps over
//! whole cone programs.

use isl_fpga::FixedFormat;
use isl_sim::{CompiledCone, CompiledKernel, Instr};

/// How a faulted instruction's result word is corrupted — the three classic
/// gate-level fault models, each over an explicit bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Transient upset: the masked bits are inverted (`v ^ mask`).
    BitFlip {
        /// Bits to invert.
        mask: i64,
    },
    /// Permanent stuck-at-0: the masked bits are forced low (`v & !mask`).
    StuckAt0 {
        /// Bits forced to 0.
        mask: i64,
    },
    /// Permanent stuck-at-1: the masked bits are forced high (`v | mask`).
    StuckAt1 {
        /// Bits forced to 1.
        mask: i64,
    },
}

impl FaultModel {
    /// Apply the corruption to a result word.
    #[inline]
    pub fn apply(self, v: i64) -> i64 {
        match self {
            FaultModel::BitFlip { mask } => v ^ mask,
            FaultModel::StuckAt0 { mask } => v & !mask,
            FaultModel::StuckAt1 { mask } => v | mask,
        }
    }

    /// Short human-readable name of the model kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultModel::BitFlip { .. } => "bit-flip",
            FaultModel::StuckAt0 { .. } => "stuck-at-0",
            FaultModel::StuckAt1 { .. } => "stuck-at-1",
        }
    }

    /// The bit mask the model operates on.
    pub fn mask(self) -> i64 {
        match self {
            FaultModel::BitFlip { mask }
            | FaultModel::StuckAt0 { mask }
            | FaultModel::StuckAt1 { mask } => mask,
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(mask {:#x})", self.name(), self.mask())
    }
}

/// A deliberate single-instruction fault: after instruction `instr`
/// executes, its result word is corrupted under `model`. Used to validate
/// that the golden-vector check catches (and triage pinpoints) datapath
/// divergence, and as the unit of work of a fault campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Index of the instruction to corrupt.
    pub instr: usize,
    /// Corruption applied to the instruction's result word.
    pub model: FaultModel,
}

impl Fault {
    /// A transient bit-flip of `mask` on instruction `instr` — the
    /// historical single-XOR fault.
    pub fn bit_flip(instr: usize, mask: i64) -> Self {
        Fault {
            instr,
            model: FaultModel::BitFlip { mask },
        }
    }

    /// A stuck-at-0 of `mask` on instruction `instr`.
    pub fn stuck_at_0(instr: usize, mask: i64) -> Self {
        Fault {
            instr,
            model: FaultModel::StuckAt0 { mask },
        }
    }

    /// A stuck-at-1 of `mask` on instruction `instr`.
    pub fn stuck_at_1(instr: usize, mask: i64) -> Self {
        Fault {
            instr,
            model: FaultModel::StuckAt1 { mask },
        }
    }
}

/// Execute one instruction on raw words. `value_of` resolves operand slots.
#[inline]
fn exec<F: Fn(u32) -> i64, R: Fn(u16, i32, i32) -> i64>(
    fmt: FixedFormat,
    instr: &Instr,
    value_of: F,
    read: &R,
) -> i64 {
    match *instr {
        Instr::Const(v) => fmt.quantize(v),
        Instr::Input { field, dx, dy } => read(field, dx, dy),
        Instr::Unary { op, a } => fmt.apply_unary(op, value_of(a)),
        Instr::Binary { op, a, b } => fmt.apply_binary(op, value_of(a), value_of(b)),
        Instr::Select { c, t, e } => {
            if value_of(c) != 0 {
                value_of(t)
            } else {
                value_of(e)
            }
        }
    }
}

/// Evaluate a compiled kernel at one element, on raw words. `read` supplies
/// already-quantised input words (border resolution is the caller's job).
pub fn eval_kernel_raw<R>(kernel: &CompiledKernel, fmt: FixedFormat, read: R) -> i64
where
    R: Fn(u16, i32, i32) -> i64,
{
    let code = kernel.code();
    let mut regs = vec![0i64; code.len()];
    for (i, instr) in code.iter().enumerate() {
        regs[i] = exec(fmt, instr, |r| regs[r as usize], &read);
    }
    regs[kernel.result() as usize]
}

/// Evaluate a compiled cone program on raw words: one forward pass over the
/// slot-allocated bytecode. Returns the raw response word of every output,
/// in [`CompiledCone::outputs`] order.
pub fn eval_cone_raw<R>(cc: &CompiledCone, fmt: FixedFormat, read: R) -> Vec<i64>
where
    R: Fn(u16, i32, i32) -> i64,
{
    eval_cone_raw_traced(cc, fmt, read, None).0
}

/// [`eval_cone_raw`] with an optional [`Fault`] and a full per-instruction
/// trace: element `i` of the trace is the (post-fault) result word of
/// instruction `i`. Comparing a clean and a faulty trace yields the first
/// diverging instruction — the triage primitive.
pub fn eval_cone_raw_traced<R>(
    cc: &CompiledCone,
    fmt: FixedFormat,
    read: R,
    fault: Option<Fault>,
) -> (Vec<i64>, Vec<i64>)
where
    R: Fn(u16, i32, i32) -> i64,
{
    let code = cc.code();
    let dst = cc.dst();
    let capture = cc.capture();
    let retire = cc.retire();
    let mut slots = vec![0i64; cc.slots().max(1)];
    let mut trace = Vec::with_capacity(code.len());
    let mut outs = vec![0i64; cc.outputs().len()];
    let mut next_retire = 0usize;
    for (i, instr) in code.iter().enumerate() {
        let mut v = exec(fmt, instr, |r| slots[r as usize], &read);
        if let Some(f) = fault {
            if f.instr == i {
                v = f.model.apply(v);
            }
        }
        slots[dst[i] as usize] = v;
        trace.push(v);
        // Outputs retire at their defining instruction (their slot may be
        // reused afterwards); capture the post-fault word as it streams by.
        while next_retire < retire.len() && capture[retire[next_retire] as usize] as usize == i {
            let oi = retire[next_retire] as usize;
            outs[oi] = slots[cc.outputs()[oi].reg as usize];
            next_retire += 1;
        }
    }
    debug_assert_eq!(next_retire, outs.len(), "every output must retire");
    (outs, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_fpga::eval_fixed;
    use isl_ir::{BinaryOp, Cone, Expr, FieldKind, Offset, StencilPattern, UnaryOp, Window};
    use isl_sim::CompiledPattern;

    fn heavy() -> StencilPattern {
        // sqrt + divide + select: every datapath unit in one kernel.
        let mut p = StencilPattern::new(1).with_name("heavy");
        let f = p.add_field("f", FieldKind::Dynamic);
        let gx = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d1(1)),
            Expr::input(f, Offset::d1(-1)),
        );
        let den = Expr::binary(
            BinaryOp::Add,
            Expr::constant(1.0),
            Expr::unary(UnaryOp::Sqrt, Expr::binary(BinaryOp::Mul, gx.clone(), gx)),
        );
        let v = Expr::binary(BinaryOp::Div, Expr::input(f, Offset::ZERO), den);
        p.set_update(
            f,
            Expr::select(
                Expr::binary(BinaryOp::Gt, v.clone(), Expr::constant(0.25)),
                v,
                Expr::constant(0.25),
            ),
        )
        .unwrap();
        p
    }

    fn stimulus(f: u16, x: i32, y: i32) -> f64 {
        ((x * 5 + y * 11 + f as i32 * 3).rem_euclid(17)) as f64 / 4.0 - 2.0
    }

    #[test]
    fn cone_vm_matches_graph_interpreter_bitwise() {
        let p = heavy();
        let fmt = FixedFormat::default();
        for (w, d) in [(1u32, 1u32), (3, 2), (4, 3)] {
            let cone = Cone::build(&p, Window::line(w), d).unwrap();
            let cc = CompiledCone::compile_with(&cone, &[], false);
            let read_raw = |f: u16, x: i32, y: i32| fmt.quantize(stimulus(f, x, y));
            let got = eval_cone_raw(&cc, fmt, read_raw);
            let want = eval_fixed(
                &cone,
                fmt,
                |f, pt| stimulus(f.index() as u16, pt.x, pt.y),
                &[],
            );
            assert_eq!(got.len(), want.len());
            for (g, (_, pt, wv)) in got.iter().zip(&want) {
                assert_eq!(fmt.dequantize(*g), *wv, "w{w} d{d} at ({}, {})", pt.x, pt.y);
            }
        }
    }

    #[test]
    fn kernel_vm_matches_cone_vm_at_depth_one() {
        let p = heavy();
        let fmt = FixedFormat::default();
        let cp = CompiledPattern::compile(&p, &[], false);
        let kernel = cp.kernel(0).unwrap();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let cc = CompiledCone::compile_with(&cone, &[], false);
        let read_raw = |f: u16, x: i32, y: i32| fmt.quantize(stimulus(f, x, y));
        let by_kernel = eval_kernel_raw(kernel, fmt, read_raw);
        let by_cone = eval_cone_raw(&cc, fmt, read_raw)[0];
        assert_eq!(by_kernel, by_cone);
    }

    #[test]
    fn fault_flips_exactly_from_its_instruction() {
        let p = heavy();
        let fmt = FixedFormat::default();
        let cone = Cone::build(&p, Window::line(2), 2).unwrap();
        let cc = CompiledCone::compile_with(&cone, &[], false);
        let read_raw = |f: u16, x: i32, y: i32| fmt.quantize(stimulus(f, x, y));
        let (_, clean) = eval_cone_raw_traced(&cc, fmt, read_raw, None);
        let k = cc.len() / 2;
        let fault = Fault::bit_flip(k, 1);
        let (_, faulty) = eval_cone_raw_traced(&cc, fmt, read_raw, Some(fault));
        let first = clean
            .iter()
            .zip(&faulty)
            .position(|(a, b)| a != b)
            .expect("fault must perturb the trace");
        assert_eq!(first, k);
        assert_eq!(clean[k] ^ 1, faulty[k]);
    }

    #[test]
    fn fault_models_corrupt_as_specified() {
        let p = heavy();
        let fmt = FixedFormat::default();
        let cone = Cone::build(&p, Window::line(2), 2).unwrap();
        let cc = CompiledCone::compile_with(&cone, &[], false);
        let read_raw = |f: u16, x: i32, y: i32| fmt.quantize(stimulus(f, x, y));
        let (_, clean) = eval_cone_raw_traced(&cc, fmt, read_raw, None);
        let k = cc.len() / 3;
        let mask = 0b101;
        for (fault, expect) in [
            (Fault::bit_flip(k, mask), clean[k] ^ mask),
            (Fault::stuck_at_0(k, mask), clean[k] & !mask),
            (Fault::stuck_at_1(k, mask), clean[k] | mask),
        ] {
            let (_, faulty) = eval_cone_raw_traced(&cc, fmt, read_raw, Some(fault));
            assert_eq!(faulty[k], expect, "{}", fault.model);
        }
    }

    #[test]
    fn stuck_at_matching_bits_is_silent_at_the_faulted_instruction() {
        // A stuck-at that agrees with the clean value leaves the result word
        // untouched — the "silent fault" class a campaign must distinguish.
        let p = heavy();
        let fmt = FixedFormat::default();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let cc = CompiledCone::compile_with(&cone, &[], false);
        let read_raw = |f: u16, x: i32, y: i32| fmt.quantize(stimulus(f, x, y));
        let (_, clean) = eval_cone_raw_traced(&cc, fmt, read_raw, None);
        let k = cc.len() - 1;
        let fault = if clean[k] & 1 == 1 {
            Fault::stuck_at_1(k, 1)
        } else {
            Fault::stuck_at_0(k, 1)
        };
        let (_, faulty) = eval_cone_raw_traced(&cc, fmt, read_raw, Some(fault));
        assert_eq!(clean, faulty);
    }
}
