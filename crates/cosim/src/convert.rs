//! The one place the software and hardware fixed-point types meet.
//!
//! `isl_sim::Quantizer` (the simulator's rounding rule) and
//! `isl_fpga::FixedFormat` (the hardware format) describe the same thing —
//! a signed fixed-point format of `width` total and `frac` fractional bits.
//! Historically each crate carried its own copy "without creating a
//! dependency"; today `Quantizer` *wraps* a `FixedFormat`, so the two
//! cannot drift — this module is the sanctioned bridge between the names,
//! and its tests pin the rounding behaviour to stay bit-identical.

use isl_fpga::FixedFormat;
use isl_sim::Quantizer;

/// The simulator-side rounding rule of a hardware format. Total — since the
/// simulator's quantised engines run in the raw word domain, every hardware
/// format up to and including 64 bits has a simulator counterpart.
pub fn quantizer_of(fmt: FixedFormat) -> Quantizer {
    Quantizer::new(fmt.width, fmt.frac)
}

/// The hardware format matching a simulator rounding rule.
pub fn format_of(q: Quantizer) -> FixedFormat {
    FixedFormat::new(q.width(), q.frac())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_are_lossless() {
        for (w, f) in [(18, 10), (8, 4), (32, 16), (63, 20)] {
            let fmt = FixedFormat::new(w, f);
            let q = quantizer_of(fmt);
            assert_eq!(format_of(q), fmt);
            assert_eq!(q.width(), fmt.width);
            assert_eq!(q.frac(), fmt.frac);
        }
    }

    #[test]
    fn rounding_rules_agree_bit_for_bit() {
        // The property that makes the two types one definition: for every
        // finite input, Quantizer::apply and FixedFormat::round_trip produce
        // the same f64 (including at and beyond the saturation rails).
        for (w, f) in [(18, 10), (8, 4), (12, 1), (24, 20)] {
            let fmt = FixedFormat::new(w, f);
            let q = quantizer_of(fmt);
            let mut v = -2.0 * fmt.max_value().abs() - 1.0;
            let step = fmt.resolution() * 0.37 + 1e-4;
            while v < 2.0 * fmt.max_value().abs() + 1.0 {
                let a = q.apply(v);
                let b = fmt.round_trip(v);
                assert_eq!(a.to_bits(), b.to_bits(), "Q{w}.{f} at {v}: {a} vs {b}");
                v += step;
            }
        }
    }

    #[test]
    fn quantize_dequantize_matches_apply() {
        let fmt = FixedFormat::default();
        let q = quantizer_of(fmt);
        for i in -2000..2000 {
            let v = i as f64 * 0.013;
            assert_eq!(q.apply(v), fmt.dequantize(fmt.quantize(v)));
        }
    }
}
