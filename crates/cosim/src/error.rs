//! Co-simulation error type.

use std::error::Error;
use std::fmt;

/// Errors from constructing or running a co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum CosimError {
    /// The pattern cannot be co-simulated (invalid, wrong rank, frame
    /// mismatch) — mirrors the functional simulator's constraints.
    Sim(String),
    /// Cone construction failed.
    Cone(String),
    /// A vector file does not describe the cone it was checked against.
    Incompatible(String),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Sim(m) => write!(f, "co-simulation failed: {m}"),
            CosimError::Cone(m) => write!(f, "cone construction failed: {m}"),
            CosimError::Incompatible(m) => write!(f, "vector file incompatible: {m}"),
        }
    }
}

impl Error for CosimError {}

impl From<isl_sim::SimError> for CosimError {
    fn from(e: isl_sim::SimError) -> Self {
        CosimError::Sim(e.to_string())
    }
}

impl From<isl_ir::ConeError> for CosimError {
    fn from(e: isl_ir::ConeError) -> Self {
        CosimError::Cone(e.to_string())
    }
}
