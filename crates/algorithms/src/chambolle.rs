//! The Chambolle total-variation minimisation algorithm — the paper's second
//! case study (Section 4.2, citing \[18\] and the hand-made FPGA design \[19\]).
//!
//! Chambolle's dual formulation iterates on a vector field `p = (px, py)`:
//!
//! ```text
//! p^{k+1} = (p^k + τ ∇(div p^k − g/λ)) / (1 + τ |∇(div p^k − g/λ)|)
//! ```
//!
//! where `g` is the observed image (a *static* field — read-only across all
//! iterations) and `τ`, `λ` are scalar parameters. The denoised image is
//! recovered as `u = g − λ div p`.

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel of one Chambolle dual iteration.
pub const SOURCE: &str = r#"
#pragma isl iterations 10
#pragma isl border clamp
#pragma isl param tau 0.25
#pragma isl param lambda 0.1
void chambolle(const float px[H][W], const float py[H][W], const float g[H][W],
               float px_out[H][W], float py_out[H][W], float tau, float lambda) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float div_c = px[y][x] - px[y][x-1] + py[y][x] - py[y-1][x];
            float div_r = px[y][x+1] - px[y][x] + py[y][x+1] - py[y-1][x+1];
            float div_d = px[y+1][x] - px[y+1][x-1] + py[y+1][x] - py[y][x];
            float u_c = div_c - g[y][x] / lambda;
            float u_r = div_r - g[y][x+1] / lambda;
            float u_d = div_d - g[y+1][x] / lambda;
            float gx = u_r - u_c;
            float gy = u_d - u_c;
            float nrm = sqrtf(gx * gx + gy * gy);
            float den = 1.0f + tau * nrm;
            px_out[y][x] = (px[y][x] + tau * gx) / den;
            py_out[y][x] = (py[y][x] + tau * gy) / den;
        }
    }
}
"#;

/// The Chambolle total-variation algorithm (N = 10, τ = 0.25, λ = 0.1).
pub fn chambolle() -> Algorithm {
    Algorithm {
        name: "chambolle",
        description: "Chambolle dual total-variation minimisation (denoising / optical flow)",
        source: SOURCE,
        default_iterations: 10,
        params: &[("tau", 0.25), ("lambda", 0.1)],
        native_step: Some(native_step),
    }
}

/// Hand-written reference: one dual update, mirroring the C kernel exactly.
pub fn native_step(state: &FrameSet, border: BorderMode, params: &[f64]) -> FrameSet {
    let (tau, lambda) = (params[0], params[1]);
    let px = state.frame(0);
    let py = state.frame(1);
    let g = state.frame(2);
    let (w, h) = (px.width(), px.height());
    let sx = |x: i64, y: i64| px.sample(x, y, border);
    let sy = |x: i64, y: i64| py.sample(x, y, border);
    let sg = |x: i64, y: i64| g.sample(x, y, border);
    let mut npx = Frame::new(w, h);
    let mut npy = Frame::new(w, h);
    for y in 0..h as i64 {
        for x in 0..w as i64 {
            let div_c = sx(x, y) - sx(x - 1, y) + sy(x, y) - sy(x, y - 1);
            let div_r = sx(x + 1, y) - sx(x, y) + sy(x + 1, y) - sy(x + 1, y - 1);
            let div_d = sx(x, y + 1) - sx(x - 1, y + 1) + sy(x, y + 1) - sy(x, y);
            let u_c = div_c - sg(x, y) / lambda;
            let u_r = div_r - sg(x + 1, y) / lambda;
            let u_d = div_d - sg(x, y + 1) / lambda;
            let gx = u_r - u_c;
            let gy = u_d - u_c;
            let nrm = (gx * gx + gy * gy).sqrt();
            let den = 1.0 + tau * nrm;
            npx.set(x as usize, y as usize, (sx(x, y) + tau * gx) / den);
            npy.set(x as usize, y as usize, (sy(x, y) + tau * gy) / den);
        }
    }
    FrameSet::from_frames(vec![npx, npy, g.clone()]).expect("congruent frames")
}

/// Recover the denoised image `u = g − λ div p` from a converged dual field.
pub fn recover_image(state: &FrameSet, border: BorderMode, lambda: f64) -> Frame {
    let px = state.frame(0);
    let py = state.frame(1);
    let g = state.frame(2);
    Frame::from_fn(g.width(), g.height(), |x, y| {
        let (xi, yi) = (x as i64, y as i64);
        let div = px.sample(xi, yi, border) - px.sample(xi - 1, yi, border)
            + py.sample(xi, yi, border)
            - py.sample(xi, yi - 1, border);
        g.get(x, y) - lambda * div
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, Simulator};

    fn initial(w: usize, h: usize, seed: u64) -> FrameSet {
        let g = synthetic::add_noise(&synthetic::gaussian_spots(w, h, seed, 3), seed + 1, 0.3);
        FrameSet::from_frames(vec![Frame::new(w, h), Frame::new(w, h), g]).expect("frames")
    }

    #[test]
    fn symexec_matches_native() {
        let algo = chambolle();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_border(BorderMode::Clamp);
        let init = initial(14, 11, 3);
        let params = algo.default_params();
        let mut native = init.clone();
        for _ in 0..3 {
            native = native_step(&native, BorderMode::Clamp, &params);
        }
        let extracted = sim.run(&init, 3).unwrap();
        assert!(
            extracted.max_abs_diff(&native) < 1e-12,
            "diff {}",
            extracted.max_abs_diff(&native)
        );
    }

    #[test]
    fn dual_field_stays_bounded() {
        // Chambolle's projection keeps |p| bounded; our smooth variant keeps
        // it well within a small constant for smooth inputs.
        let algo = chambolle();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let out = sim.run(&initial(16, 16, 9), 20).unwrap();
        for f in [out.frame(0), out.frame(1)] {
            for &v in f.as_slice() {
                assert!(v.is_finite());
                assert!(v.abs() < 10.0);
            }
        }
    }

    #[test]
    fn denoising_reduces_error() {
        let (w, h) = (24, 24);
        let clean = synthetic::gaussian_spots(w, h, 5, 3);
        let noisy = synthetic::add_noise(&clean, 6, 0.4);
        let init =
            FrameSet::from_frames(vec![Frame::new(w, h), Frame::new(w, h), noisy.clone()])
                .unwrap();
        let algo = chambolle();
        let (pattern, _) = algo.compile().unwrap();
        // A slightly larger lambda smooths more aggressively.
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_params(vec![0.25, 0.3])
            .unwrap();
        let out = sim.run(&init, 30).unwrap();
        let denoised = recover_image(&out, BorderMode::Clamp, 0.3);
        let before = noisy.rms_diff(&clean);
        let after = denoised.rms_diff(&clean);
        assert!(
            after < before,
            "denoising should reduce RMS error: {after:.4} !< {before:.4}"
        );
    }

    #[test]
    fn pattern_shape() {
        let (pattern, _) = chambolle().compile().unwrap();
        assert_eq!(pattern.dynamic_fields().len(), 2);
        assert_eq!(pattern.static_fields().len(), 1);
        assert_eq!(pattern.radius(), 1);
        // Division and sqrt make this the expensive case study.
        let f = pattern.dynamic_fields()[0];
        let s = pattern.update(f).unwrap().to_string();
        assert!(s.contains("sqrt") && s.contains("div"));
    }
}
