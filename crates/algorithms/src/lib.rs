//! # isl-algorithms — the built-in iterative stencil loop library
//!
//! The paper's evaluation centres on two case studies — the **iterative
//! Gaussian filter** (IGF, Section 4.1) and the **Chambolle** total-variation
//! algorithm (Section 4.2) — and motivates the ISL class with convolution,
//! Jacobi-style solvers and multimedia kernels (Section 2). This crate ships
//! each of them in two *independent* forms:
//!
//! 1. a C-subset **kernel source** (what a user of the flow would write),
//!    compiled through the real frontend + symbolic executor;
//! 2. a hand-written **native Rust step** over [`isl_sim::FrameSet`].
//!
//! The pair gives the test suite a powerful cross-check: the pattern the
//! symbolic executor extracts from (1) must behave exactly like (2) on random
//! frames — any disagreement exposes a bug in the frontend, the executor or
//! the hand-written reference.
//!
//! ```
//! use isl_algorithms::gaussian_igf;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let algo = gaussian_igf();
//! let (pattern, info) = algo.compile()?;
//! assert_eq!(pattern.radius(), 1);
//! assert_eq!(info.iterations, Some(algo.default_iterations));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chambolle;
pub mod gaussian;
pub mod heat;
pub mod jacobi;
pub mod life;
pub mod sobel;

pub use chambolle::chambolle;
pub use gaussian::gaussian_igf;
pub use heat::heat_diffusion;
pub use jacobi::jacobi4;
pub use life::game_of_life;
pub use sobel::gradient_magnitude;

// `pub use` of the constructor functions above shadows nothing: the modules
// stay reachable (e.g. `chambolle::recover_image`).

use isl_frontend::KernelInfo;
use isl_sim::{BorderMode, FrameSet};
use isl_symexec::{compile_str, SymExecError};

/// A hand-written reference step: one ISL iteration over a frame set.
pub type NativeStep = fn(&FrameSet, BorderMode, &[f64]) -> FrameSet;

/// One built-in ISL algorithm.
#[derive(Debug, Clone)]
pub struct Algorithm {
    /// Short name (used in reports and file names).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Kernel in the C subset accepted by `isl-frontend`.
    pub source: &'static str,
    /// Iteration count used by the paper / typical deployments.
    pub default_iterations: u32,
    /// Parameter `(name, default)` pairs, in kernel declaration order.
    pub params: &'static [(&'static str, f64)],
    /// Independent native reference implementation of one iteration.
    pub native_step: Option<NativeStep>,
}

impl Algorithm {
    /// Parse, analyse and symbolically execute the kernel source.
    ///
    /// # Errors
    ///
    /// Propagates [`SymExecError`] (which never fires for the built-in
    /// sources — the test suite compiles each one).
    pub fn compile(&self) -> Result<(isl_ir::StencilPattern, KernelInfo), SymExecError> {
        compile_str(self.source)
    }

    /// Default parameter values, in declaration order.
    pub fn default_params(&self) -> Vec<f64> {
        self.params.iter().map(|(_, v)| *v).collect()
    }
}

/// Every built-in algorithm, in a stable order.
pub fn all() -> Vec<Algorithm> {
    vec![
        gaussian_igf(),
        chambolle(),
        jacobi4(),
        heat_diffusion(),
        game_of_life(),
        gradient_magnitude(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_compiles() {
        for algo in all() {
            let (pattern, info) = algo
                .compile()
                .unwrap_or_else(|e| panic!("{}: {e}", algo.name));
            assert!(pattern.radius() >= 1, "{}", algo.name);
            assert_eq!(info.iterations, Some(algo.default_iterations), "{}", algo.name);
            assert_eq!(pattern.params().len(), algo.params.len(), "{}", algo.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = all().iter().map(|a| a.name).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
    }

    #[test]
    fn param_defaults_match_pragmas() {
        for algo in all() {
            let (pattern, _) = algo.compile().unwrap();
            for (i, (name, default)) in algo.params.iter().enumerate() {
                assert_eq!(pattern.params()[i].name, *name, "{}", algo.name);
                assert_eq!(pattern.params()[i].default, *default, "{}", algo.name);
            }
        }
    }
}
