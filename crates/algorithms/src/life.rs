//! Conway's Game of Life — a multimedia-style ISL with data-dependent
//! selection, exercising the comparison/ternary path of the whole flow
//! (symbolic execution turns the rules into hardware selects).

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel of one Life generation. Cells are 0.0 / 1.0; the thresholds sit
/// between the integers so fixed-point rounding cannot flip a rule.
pub const SOURCE: &str = r#"
#pragma isl iterations 8
#pragma isl border zero
void life(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float s = in[y-1][x-1] + in[y-1][x] + in[y-1][x+1]
                    + in[y][x-1]               + in[y][x+1]
                    + in[y+1][x-1] + in[y+1][x] + in[y+1][x+1];
            out[y][x] = (s > 2.5f && s < 3.5f)
                ? 1.0f
                : ((s > 1.5f && s < 2.5f && in[y][x] > 0.5f) ? 1.0f : 0.0f);
        }
    }
}
"#;

/// Conway's Game of Life (N = 8, zero border).
pub fn game_of_life() -> Algorithm {
    Algorithm {
        name: "life",
        description: "Conway's Game of Life: data-dependent selects over a 3x3 neighbourhood",
        source: SOURCE,
        default_iterations: 8,
        params: &[],
        native_step: Some(native_step),
    }
}

/// Hand-written reference generation.
pub fn native_step(state: &FrameSet, border: BorderMode, _params: &[f64]) -> FrameSet {
    let src = state.frame(0);
    let (w, h) = (src.width(), src.height());
    let out = Frame::from_fn(w, h, |x, y| {
        let s = |dx: i64, dy: i64| src.sample(x as i64 + dx, y as i64 + dy, border);
        let n = s(-1, -1) + s(0, -1) + s(1, -1) + s(-1, 0) + s(1, 0) + s(-1, 1) + s(0, 1) + s(1, 1);
        let born = n > 2.5 && n < 3.5;
        let survives = n > 1.5 && n < 2.5 && s(0, 0) > 0.5;
        f64::from(born || survives)
    });
    FrameSet::from_frames(vec![out]).expect("single frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::Simulator;

    fn board(cells: &[(usize, usize)], w: usize, h: usize) -> FrameSet {
        let mut f = Frame::new(w, h);
        for &(x, y) in cells {
            f.set(x, y, 1.0);
        }
        FrameSet::from_frames(vec![f]).expect("single frame")
    }

    #[test]
    fn symexec_matches_native() {
        let algo = game_of_life();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_border(BorderMode::Constant(0.0));
        // An R-pentomino makes a lively test.
        let init = board(&[(5, 4), (6, 4), (4, 5), (5, 5), (5, 6)], 12, 12);
        let mut native = init.clone();
        for _ in 0..6 {
            native = native_step(&native, BorderMode::Constant(0.0), &[]);
        }
        let extracted = sim.run(&init, 6).unwrap();
        assert!(extracted.max_abs_diff(&native) < 1e-12);
    }

    #[test]
    fn block_is_a_still_life() {
        let algo = game_of_life();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_border(BorderMode::Constant(0.0));
        let init = board(&[(3, 3), (4, 3), (3, 4), (4, 4)], 8, 8);
        let out = sim.run(&init, 5).unwrap();
        assert!(out.max_abs_diff(&init) < 1e-12);
    }

    #[test]
    fn blinker_oscillates() {
        let algo = game_of_life();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_border(BorderMode::Constant(0.0));
        let horizontal = board(&[(2, 3), (3, 3), (4, 3)], 7, 7);
        let vertical = board(&[(3, 2), (3, 3), (3, 4)], 7, 7);
        let one = sim.run(&horizontal, 1).unwrap();
        assert!(one.max_abs_diff(&vertical) < 1e-12);
        let two = sim.run(&horizontal, 2).unwrap();
        assert!(two.max_abs_diff(&horizontal) < 1e-12);
    }
}
