//! Sobel gradient magnitude — a single-iteration convolution workload of the
//! kind the paper's related work targets (\[4\]'s sliding-window comparison),
//! exercising the degenerate `N = 1` corner of the architecture template.

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel computing `sqrt(Gx² + Gy²)` with the 3×3 Sobel operators,
/// written with inner constant-trip tap loops to exercise loop unrolling in
/// the symbolic executor.
pub const SOURCE: &str = r#"
#pragma isl iterations 1
#pragma isl border clamp
void sobel(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float gx = 0.0f;
            float gy = 0.0f;
            for (int k = -1; k <= 1; k++) {
                gx += in[y+k][x+1] - in[y+k][x-1];
                gy += in[y+1][x+k] - in[y-1][x+k];
            }
            gx += in[y][x+1] - in[y][x-1];
            gy += in[y+1][x] - in[y-1][x];
            out[y][x] = sqrtf(gx * gx + gy * gy);
        }
    }
}
"#;

/// Sobel gradient magnitude (N = 1).
pub fn gradient_magnitude() -> Algorithm {
    Algorithm {
        name: "sobel",
        description: "Sobel gradient magnitude (single-iteration sliding-window convolution)",
        source: SOURCE,
        default_iterations: 1,
        params: &[],
        native_step: Some(native_step),
    }
}

/// Hand-written reference.
pub fn native_step(state: &FrameSet, border: BorderMode, _params: &[f64]) -> FrameSet {
    let src = state.frame(0);
    let (w, h) = (src.width(), src.height());
    let out = Frame::from_fn(w, h, |x, y| {
        let s = |dx: i64, dy: i64| src.sample(x as i64 + dx, y as i64 + dy, border);
        let gx = (s(1, -1) - s(-1, -1)) + 2.0 * (s(1, 0) - s(-1, 0)) + (s(1, 1) - s(-1, 1));
        let gy = (s(-1, 1) - s(-1, -1)) + 2.0 * (s(0, 1) - s(0, -1)) + (s(1, 1) - s(1, -1));
        (gx * gx + gy * gy).sqrt()
    });
    FrameSet::from_frames(vec![out]).expect("single frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, Simulator};

    #[test]
    fn symexec_matches_native() {
        let algo = gradient_magnitude();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let init = FrameSet::from_frames(vec![synthetic::gaussian_spots(15, 13, 8, 2)]).unwrap();
        let native = native_step(&init, BorderMode::Clamp, &[]);
        let extracted = sim.run(&init, 1).unwrap();
        assert!(
            extracted.max_abs_diff(&native) < 1e-12,
            "diff {}",
            extracted.max_abs_diff(&native)
        );
    }

    #[test]
    fn flat_regions_have_zero_gradient() {
        let algo = gradient_magnitude();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let init = FrameSet::from_frames(vec![Frame::from_fn(10, 10, |_, _| 0.7)]).unwrap();
        let out = sim.run(&init, 1).unwrap();
        for &v in out.frame(0).as_slice() {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn edges_respond_strongly() {
        let algo = gradient_magnitude();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        // Vertical step edge at x = 5.
        let init = FrameSet::from_frames(vec![Frame::from_fn(10, 10, |x, _| {
            if x < 5 {
                0.0
            } else {
                1.0
            }
        })])
        .unwrap();
        let out = sim.run(&init, 1).unwrap();
        assert!(out.frame(0).get(5, 5) > 1.0);
        assert!(out.frame(0).get(1, 5) < 1e-9);
    }
}
