//! The iterative Gaussian filter (IGF) — the paper's first case study.
//!
//! A blur with a large Gaussian kernel is implemented as the repeated
//! convolution with the small 3×3 binomial kernel `[1 2 1; 2 4 2; 1 2 1]/16`
//! (Section 4.1, citing \[11\]): `n` iterations approximate a Gaussian of
//! variance `n/2`.

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel of one IGF iteration.
pub const SOURCE: &str = r#"
#pragma isl iterations 10
#pragma isl border clamp
void igf(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            out[y][x] = (1.0f * in[y-1][x-1] + 2.0f * in[y-1][x] + 1.0f * in[y-1][x+1]
                       + 2.0f * in[y][x-1]   + 4.0f * in[y][x]   + 2.0f * in[y][x+1]
                       + 1.0f * in[y+1][x-1] + 2.0f * in[y+1][x] + 1.0f * in[y+1][x+1]) / 16.0f;
        }
    }
}
"#;

/// The iterative Gaussian filter algorithm (3×3 binomial kernel, N = 10).
pub fn gaussian_igf() -> Algorithm {
    Algorithm {
        name: "igf",
        description: "iterative Gaussian filter: repeated 3x3 binomial convolution",
        source: SOURCE,
        default_iterations: 10,
        params: &[],
        native_step: Some(native_step),
    }
}

/// Hand-written reference: one binomial convolution.
pub fn native_step(state: &FrameSet, border: BorderMode, _params: &[f64]) -> FrameSet {
    let src = state.frame(0);
    let (w, h) = (src.width(), src.height());
    let out = Frame::from_fn(w, h, |x, y| {
        let s = |dx: i64, dy: i64| src.sample(x as i64 + dx, y as i64 + dy, border);
        (s(-1, -1)
            + 2.0 * s(0, -1)
            + s(1, -1)
            + 2.0 * s(-1, 0)
            + 4.0 * s(0, 0)
            + 2.0 * s(1, 0)
            + s(-1, 1)
            + 2.0 * s(0, 1)
            + s(1, 1))
            / 16.0
    });
    FrameSet::from_frames(vec![out]).expect("single frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, Simulator};

    #[test]
    fn symexec_matches_native() {
        let algo = gaussian_igf();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap().with_border(BorderMode::Clamp);
        let init = FrameSet::from_frames(vec![synthetic::noise(19, 15, 7)]).unwrap();
        let mut native = init.clone();
        for _ in 0..4 {
            native = native_step(&native, BorderMode::Clamp, &[]);
        }
        let extracted = sim.run(&init, 4).unwrap();
        assert!(extracted.max_abs_diff(&native) < 1e-12);
    }

    #[test]
    fn blur_reduces_variance_preserving_mean_wrap() {
        // Wrap borders conserve total mass under the binomial kernel.
        let algo = gaussian_igf();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap().with_border(BorderMode::Wrap);
        let init = FrameSet::from_frames(vec![synthetic::checkerboard(16, 16, 2)]).unwrap();
        let out = sim.run(&init, 6).unwrap();
        assert!((out.frame(0).mean() - init.frame(0).mean()).abs() < 1e-9);
        let var = |f: &Frame| {
            let m = f.mean();
            f.as_slice().iter().map(|v| (v - m) * (v - m)).sum::<f64>() / f.len() as f64
        };
        assert!(var(out.frame(0)) < 0.05 * var(init.frame(0)));
    }

    #[test]
    fn kernel_taps_are_powers_of_two() {
        // Why the IGF maps so well to FPGAs: all constant multiplies are
        // shifts and the divide is /16.
        let (pattern, _) = gaussian_igf().compile().unwrap();
        let f = pattern.dynamic_fields()[0];
        let expr = pattern.update(f).unwrap().to_string();
        assert!(expr.contains("div"));
        assert!(!expr.contains("sqrt"));
    }
}
