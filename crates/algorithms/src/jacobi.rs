//! Four-neighbour Jacobi relaxation — the classic ISL of the compiler
//! literature (the paper cites Jacobi-style iterative eigensolvers \[17\] as
//! motivating workloads).

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel of one Jacobi sweep.
pub const SOURCE: &str = r#"
#pragma isl iterations 16
#pragma isl border mirror
void jacobi(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
        }
    }
}
"#;

/// Jacobi 4-point relaxation (N = 16).
pub fn jacobi4() -> Algorithm {
    Algorithm {
        name: "jacobi",
        description: "4-neighbour Jacobi relaxation (Laplace smoothing)",
        source: SOURCE,
        default_iterations: 16,
        params: &[],
        native_step: Some(native_step),
    }
}

/// Hand-written reference sweep.
pub fn native_step(state: &FrameSet, border: BorderMode, _params: &[f64]) -> FrameSet {
    let src = state.frame(0);
    let (w, h) = (src.width(), src.height());
    let out = Frame::from_fn(w, h, |x, y| {
        let s = |dx: i64, dy: i64| src.sample(x as i64 + dx, y as i64 + dy, border);
        (s(0, -1) + s(0, 1) + s(-1, 0) + s(1, 0)) * 0.25
    });
    FrameSet::from_frames(vec![out]).expect("single frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, Simulator};

    #[test]
    fn symexec_matches_native() {
        let algo = jacobi4();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern)
            .unwrap()
            .with_border(BorderMode::Mirror);
        let init = FrameSet::from_frames(vec![synthetic::noise(13, 17, 1)]).unwrap();
        let mut native = init.clone();
        for _ in 0..5 {
            native = native_step(&native, BorderMode::Mirror, &[]);
        }
        let extracted = sim.run(&init, 5).unwrap();
        assert!(extracted.max_abs_diff(&native) < 1e-12);
    }

    #[test]
    fn converges_to_flat_field() {
        let algo = jacobi4();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let init = FrameSet::from_frames(vec![synthetic::noise(8, 8, 2)]).unwrap();
        let (fixed, report) = sim.run_until_converged(&init, 1e-10, 4000).unwrap();
        assert!(report.converged);
        let f = fixed.frame(0);
        let m = f.mean();
        for &v in f.as_slice() {
            assert!((v - m).abs() < 1e-6);
        }
    }
}
