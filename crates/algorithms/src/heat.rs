//! Explicit heat diffusion with a source term — a parameterised scientific
//! ISL exercising scalar parameters and a static field together.

use isl_sim::{BorderMode, Frame, FrameSet};

use crate::Algorithm;

/// C kernel of one explicit Euler step of `∂u/∂t = α ∇²u + q`.
pub const SOURCE: &str = r#"
#pragma isl iterations 20
#pragma isl border clamp
#pragma isl param alpha 0.2
void heat(const float u[H][W], const float q[H][W], float u_out[H][W], float alpha) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float lap = u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1] - 4.0f * u[y][x];
            u_out[y][x] = u[y][x] + alpha * lap + q[y][x];
        }
    }
}
"#;

/// Heat diffusion with source term (N = 20, α = 0.2).
pub fn heat_diffusion() -> Algorithm {
    Algorithm {
        name: "heat",
        description: "explicit heat diffusion with a static source field",
        source: SOURCE,
        default_iterations: 20,
        params: &[("alpha", 0.2)],
        native_step: Some(native_step),
    }
}

/// Hand-written reference step.
pub fn native_step(state: &FrameSet, border: BorderMode, params: &[f64]) -> FrameSet {
    let alpha = params[0];
    let u = state.frame(0);
    let q = state.frame(1);
    let (w, h) = (u.width(), u.height());
    let out = Frame::from_fn(w, h, |x, y| {
        let s = |dx: i64, dy: i64| u.sample(x as i64 + dx, y as i64 + dy, border);
        let lap = s(0, -1) + s(0, 1) + s(-1, 0) + s(1, 0) - 4.0 * s(0, 0);
        s(0, 0) + alpha * lap + q.get(x, y)
    });
    FrameSet::from_frames(vec![out, q.clone()]).expect("congruent frames")
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_sim::{synthetic, Simulator};

    #[test]
    fn symexec_matches_native() {
        let algo = heat_diffusion();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let q = synthetic::gaussian_spots(12, 12, 4, 1);
        let q = Frame::from_fn(12, 12, |x, y| 0.01 * q.get(x, y));
        let init = FrameSet::from_frames(vec![Frame::new(12, 12), q]).unwrap();
        let params = algo.default_params();
        let mut native = init.clone();
        for _ in 0..6 {
            native = native_step(&native, BorderMode::Clamp, &params);
        }
        let extracted = sim.run(&init, 6).unwrap();
        assert!(extracted.max_abs_diff(&native) < 1e-12);
    }

    #[test]
    fn heat_spreads_from_source() {
        let algo = heat_diffusion();
        let (pattern, _) = algo.compile().unwrap();
        let sim = Simulator::new(&pattern).unwrap();
        let mut q = Frame::new(9, 9);
        q.set(4, 4, 0.1);
        let init = FrameSet::from_frames(vec![Frame::new(9, 9), q]).unwrap();
        let out = sim.run(&init, 20).unwrap();
        // Centre hottest, corners warmed above zero by diffusion.
        let u = out.frame(0);
        assert!(u.get(4, 4) > u.get(0, 0));
        assert!(u.get(0, 0) > 0.0);
    }

    #[test]
    fn alpha_controls_diffusion_speed() {
        let algo = heat_diffusion();
        let (pattern, _) = algo.compile().unwrap();
        let mut q = Frame::new(9, 9);
        q.set(4, 4, 0.1);
        let init = FrameSet::from_frames(vec![Frame::new(9, 9), q]).unwrap();
        let slow = Simulator::new(&pattern)
            .unwrap()
            .with_params(vec![0.05])
            .unwrap()
            .run(&init, 10)
            .unwrap();
        let fast = Simulator::new(&pattern)
            .unwrap()
            .with_params(vec![0.24])
            .unwrap()
            .run(&init, 10)
            .unwrap();
        // Faster diffusion moves more heat away from the source point.
        assert!(fast.frame(0).get(0, 4) > slow.frame(0).get(0, 4));
    }
}
