//! The golden-vector exchange format.
//!
//! A *vector file* is the contract between the bit-true co-simulator
//! (`isl-cosim`) and the VHDL backend: per cone firing — one output window
//! at one level of one architecture instance — it records the raw
//! fixed-point stimulus word of every data input port and the raw response
//! word expected on every output port. The co-simulator generates these
//! files; [`crate::generate_vector_testbench`] turns one into a
//! self-checking testbench that replays every firing against the generated
//! entity in any VHDL simulator, and [`crate::check::verify_vectors`]
//! re-derives every response with the independent fixed-point graph
//! interpreter ([`isl_fpga::eval_fixed`]) so a file can be certified without
//! any simulator at all.
//!
//! The on-disk form is a line-oriented text format, chosen so vectors can be
//! diffed, versioned and consumed by non-Rust tooling:
//!
//! ```text
//! # isl golden vectors v1
//! entity blur_w4x4_d2
//! format 18 10
//! window 4 4
//! depth 2
//! in in_f0_xm2_ym2 in_f0_xm1_ym2 ...
//! out out_f0_x0_y0 out_f0_x1_y0 ...
//! vec <level> <tile_x> <tile_y> | <stimulus words> | <response words>
//! ```
//!
//! Words are decimal two's-complement raw values of the declared
//! fixed-point format, in the column order of the `in`/`out` headers —
//! which is exactly the data-port declaration order of the generated
//! entity.

use std::error::Error;
use std::fmt;

use isl_fpga::FixedFormat;
use isl_ir::Window;

/// One cone firing: the stimulus applied to every data input port and the
/// response expected on every output port, as raw fixed-point words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorRecord {
    /// Level index inside the architecture's iteration decomposition
    /// (0-based; levels of a run share the file when they share the depth).
    pub level: u32,
    /// Frame coordinates of the tile origin this firing computed.
    pub tile: (i64, i64),
    /// Raw stimulus words, aligned to [`VectorFile::ports_in`].
    pub stimulus: Vec<i64>,
    /// Raw response words, aligned to [`VectorFile::ports_out`].
    pub response: Vec<i64>,
}

/// A golden-vector set for one generated cone entity.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorFile {
    /// Entity the vectors drive (the cone's sanitised signature).
    pub entity: String,
    /// Fixed-point format of every word.
    pub format: FixedFormat,
    /// Output window of the cone.
    pub window: Window,
    /// Cone depth.
    pub depth: u32,
    /// Data input port names, in entity declaration order (parameters,
    /// dynamic inputs, static inputs).
    pub ports_in: Vec<String>,
    /// Output port names, in entity declaration order.
    pub ports_out: Vec<String>,
    /// The recorded firings.
    pub records: Vec<VectorRecord>,
}

/// Parse / structure errors of the vector format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorError(pub String);

impl fmt::Display for VectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed vector file: {}", self.0)
    }
}

impl Error for VectorError {}

impl VectorFile {
    /// Render the file in the text exchange format (see module docs).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# isl golden vectors v1\n");
        out.push_str(&format!("entity {}\n", self.entity));
        out.push_str(&format!("format {} {}\n", self.format.width, self.format.frac));
        out.push_str(&format!("window {} {}\n", self.window.w, self.window.h));
        out.push_str(&format!("depth {}\n", self.depth));
        out.push_str(&format!("in {}\n", self.ports_in.join(" ")));
        out.push_str(&format!("out {}\n", self.ports_out.join(" ")));
        for r in &self.records {
            let stim: Vec<String> = r.stimulus.iter().map(i64::to_string).collect();
            let resp: Vec<String> = r.response.iter().map(i64::to_string).collect();
            out.push_str(&format!(
                "vec {} {} {} | {} | {}\n",
                r.level,
                r.tile.0,
                r.tile.1,
                stim.join(" "),
                resp.join(" ")
            ));
        }
        out
    }

    /// Parse the text exchange format back into a file.
    ///
    /// # Errors
    ///
    /// [`VectorError`] on any structural violation: missing headers, word
    /// counts that disagree with the port lists, unparsable words.
    pub fn parse(text: &str) -> Result<VectorFile, VectorError> {
        let mut entity = None;
        let mut format = None;
        let mut window = None;
        let mut depth = None;
        let mut ports_in: Option<Vec<String>> = None;
        let mut ports_out: Option<Vec<String>> = None;
        let mut records = Vec::new();
        let bad = |m: &str| VectorError(m.to_string());
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, rest) = match line.split_once(' ') {
                Some(kv) => kv,
                // A cone with a constant-only update has no data ports at
                // all: `in`/`out` headers legally carry an empty list.
                None if line == "in" || line == "out" => (line, ""),
                None => return Err(bad(&format!("line {}: bare keyword `{line}`", ln + 1))),
            };
            match key {
                "entity" => entity = Some(rest.trim().to_string()),
                "format" => {
                    let mut it = rest.split_whitespace();
                    let w: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("format: missing width"))?;
                    let f: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("format: missing frac"))?;
                    // 63, not 64: every raw-word consumer (saturation,
                    // quantisation, the simulator's Quantizer) works in
                    // `i64` and needs `1 << (width - 1)` to be in range.
                    if w == 0 || w > 63 || f >= w {
                        return Err(bad(&format!("format: invalid Q format {w}/{f}")));
                    }
                    format = Some(FixedFormat::new(w, f));
                }
                "window" => {
                    let mut it = rest.split_whitespace();
                    let w: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&w| w > 0)
                        .ok_or_else(|| bad("window: missing width"))?;
                    let h: u32 = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&h| h > 0)
                        .ok_or_else(|| bad("window: missing height"))?;
                    window = Some(if h > 1 { Window::rect(w, h) } else { Window::line(w) });
                }
                "depth" => {
                    depth = Some(
                        rest.trim()
                            .parse()
                            .map_err(|_| bad("depth: not an integer"))?,
                    );
                }
                "in" => ports_in = Some(rest.split_whitespace().map(String::from).collect()),
                "out" => ports_out = Some(rest.split_whitespace().map(String::from).collect()),
                "vec" => {
                    let n_in = ports_in
                        .as_ref()
                        .ok_or_else(|| bad("vec before `in` header"))?
                        .len();
                    let n_out = ports_out
                        .as_ref()
                        .ok_or_else(|| bad("vec before `out` header"))?
                        .len();
                    let mut parts = rest.splitn(3, '|');
                    let head = parts.next().unwrap_or("");
                    let stim_s = parts
                        .next()
                        .ok_or_else(|| bad(&format!("line {}: missing stimulus", ln + 1)))?;
                    let resp_s = parts
                        .next()
                        .ok_or_else(|| bad(&format!("line {}: missing response", ln + 1)))?;
                    let mut hw = head.split_whitespace();
                    let level: u32 = hw
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("vec: missing level"))?;
                    let tx: i64 = hw
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("vec: missing tile x"))?;
                    let ty: i64 = hw
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("vec: missing tile y"))?;
                    let words = |s: &str| -> Result<Vec<i64>, VectorError> {
                        s.split_whitespace()
                            .map(|w| {
                                w.parse::<i64>()
                                    .map_err(|_| bad(&format!("unparsable word `{w}`")))
                            })
                            .collect()
                    };
                    let stimulus = words(stim_s)?;
                    let response = words(resp_s)?;
                    if stimulus.len() != n_in {
                        return Err(bad(&format!(
                            "vec at level {level} tile ({tx},{ty}): {} stimulus words for {n_in} input ports",
                            stimulus.len()
                        )));
                    }
                    if response.len() != n_out {
                        return Err(bad(&format!(
                            "vec at level {level} tile ({tx},{ty}): {} response words for {n_out} output ports",
                            response.len()
                        )));
                    }
                    records.push(VectorRecord {
                        level,
                        tile: (tx, ty),
                        stimulus,
                        response,
                    });
                }
                other => return Err(bad(&format!("line {}: unknown keyword `{other}`", ln + 1))),
            }
        }
        Ok(VectorFile {
            entity: entity.ok_or_else(|| bad("missing `entity` header"))?,
            format: format.ok_or_else(|| bad("missing `format` header"))?,
            window: window.ok_or_else(|| bad("missing `window` header"))?,
            depth: depth.ok_or_else(|| bad("missing `depth` header"))?,
            ports_in: ports_in.ok_or_else(|| bad("missing `in` header"))?,
            ports_out: ports_out.ok_or_else(|| bad("missing `out` header"))?,
            records,
        })
    }

    /// The column index of input port `name`, if present.
    pub fn input_column(&self, name: &str) -> Option<usize> {
        self.ports_in.iter().position(|p| p == name)
    }

    /// The column index of output port `name`, if present.
    pub fn output_column(&self, name: &str) -> Option<usize> {
        self.ports_out.iter().position(|p| p == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_port_lists_round_trip() {
        // A constant-only cone has no data input ports; the `in` header is
        // then a bare keyword and must still round-trip.
        let file = VectorFile {
            entity: "const_w1x1_d1".into(),
            format: FixedFormat::default(),
            window: Window::line(1),
            depth: 1,
            ports_in: vec![],
            ports_out: vec!["out_f0_x0_y0".into()],
            records: vec![VectorRecord {
                level: 0,
                tile: (0, 0),
                stimulus: vec![],
                response: vec![512],
            }],
        };
        let reparsed = VectorFile::parse(&file.to_text()).unwrap();
        assert_eq!(reparsed, file);
    }

    fn sample() -> VectorFile {
        VectorFile {
            entity: "avg_w2x1_d1".into(),
            format: FixedFormat::default(),
            window: Window::line(2),
            depth: 1,
            ports_in: vec!["in_f0_xm1_y0".into(), "in_f0_x0_y0".into()],
            ports_out: vec!["out_f0_x0_y0".into()],
            records: vec![
                VectorRecord {
                    level: 0,
                    tile: (0, 0),
                    stimulus: vec![-1024, 512],
                    response: vec![-256],
                },
                VectorRecord {
                    level: 1,
                    tile: (2, 0),
                    stimulus: vec![7, -9],
                    response: vec![0],
                },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let f = sample();
        let parsed = VectorFile::parse(&f.to_text()).unwrap();
        assert_eq!(f, parsed);
    }

    #[test]
    fn rejects_word_count_mismatch() {
        let text = sample().to_text().replace("| -256", "| -256 3");
        assert!(VectorFile::parse(&text).unwrap_err().0.contains("response"));
    }

    #[test]
    fn rejects_missing_headers() {
        let text = sample().to_text().replace("entity avg_w2x1_d1\n", "");
        assert!(VectorFile::parse(&text).unwrap_err().0.contains("entity"));
    }

    #[test]
    fn rejects_formats_wider_than_raw_words() {
        // width 64 would overflow every i64 raw-word consumer downstream.
        let text = sample().to_text().replace("format 18 10", "format 64 10");
        assert!(VectorFile::parse(&text).unwrap_err().0.contains("64"));
    }

    #[test]
    fn rejects_garbage_words() {
        let text = sample().to_text().replace("-1024", "banana");
        assert!(VectorFile::parse(&text).unwrap_err().0.contains("banana"));
    }

    #[test]
    fn column_lookup() {
        let f = sample();
        assert_eq!(f.input_column("in_f0_x0_y0"), Some(1));
        assert_eq!(f.output_column("out_f0_x0_y0"), Some(0));
        assert_eq!(f.input_column("ghost"), None);
    }
}
