//! Cone → VHDL entity generation.

use std::collections::HashMap;
use std::fmt::Write as _;

use isl_fpga::FixedFormat;
use isl_ir::{BinaryOp, Cone, FieldId, Leaf, Node, NodeId, Point, UnaryOp};

/// Options for VHDL generation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VhdlOptions {
    /// Fixed-point format; must match the `isl_fixed_pkg` the design is
    /// compiled against.
    pub format: FixedFormat,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDirection {
    /// Input port.
    In,
    /// Output port.
    Out,
}

/// One port of a generated entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortInfo {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// Whether this is a control port (clock/reset/valid) rather than data.
    pub is_control: bool,
}

/// A generated VHDL module.
#[derive(Debug, Clone, PartialEq)]
pub struct VhdlModule {
    /// Entity name.
    pub entity_name: String,
    /// Complete VHDL source (entity + architecture; compile together with
    /// [`crate::fixed_package`]).
    pub code: String,
    /// All ports, in declaration order.
    pub ports: Vec<PortInfo>,
    /// Pipeline depth in clock cycles (input window to `out_valid`).
    pub pipeline_stages: u32,
    /// Operation register signals (= the cone's register count).
    pub signal_count: usize,
    /// Balancing delay registers inserted to align pipeline stages.
    pub delay_registers: usize,
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if !s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        s.insert_str(0, "cone_");
    }
    while s.contains("__") {
        s = s.replace("__", "_");
    }
    s.trim_end_matches('_').to_string()
}

fn coord(c: i32) -> String {
    if c < 0 {
        format!("m{}", -c)
    } else {
        c.to_string()
    }
}

/// The entity name a cone is generated under (its sanitised signature).
/// Golden-vector files carry this name so a vector set and an entity can be
/// matched without regenerating the VHDL.
pub fn entity_name(cone: &Cone) -> String {
    sanitize(&cone.signature().to_string())
}

/// Port name of a dynamic-field input element (`in_f{F}_x{X}_y{Y}`,
/// negative coordinates rendered as `m{N}`).
pub fn input_port_name(field: FieldId, point: Point) -> String {
    format!("in_f{}_x{}_y{}", field.index(), coord(point.x), coord(point.y))
}

/// Port name of a static-field input element (`st_f{F}_x{X}_y{Y}`).
pub fn static_port_name(field: FieldId, point: Point) -> String {
    format!("st_f{}_x{}_y{}", field.index(), coord(point.x), coord(point.y))
}

/// Port name of a runtime parameter (`param_p{I}`).
pub fn param_port_name(index: usize) -> String {
    format!("param_p{index}")
}

/// Port name of an output element (`out_f{F}_x{X}_y{Y}`).
pub fn output_port_name(field: FieldId, point: Point) -> String {
    format!("out_f{}_x{}_y{}", field.index(), coord(point.x), coord(point.y))
}

fn leaf_port_name(leaf: &Leaf) -> Option<String> {
    match leaf {
        Leaf::Input { field, point } => Some(input_port_name(*field, *point)),
        Leaf::Static { field, point } => Some(static_port_name(*field, *point)),
        Leaf::Param(p) => Some(param_port_name(p.index())),
        Leaf::Const(_) => None,
    }
}

/// Render a cone into a pipelined VHDL entity.
///
/// Every operation node is registered (one stage). Operands that cross more
/// than one stage are carried by inserted delay registers, so every path to
/// an output has the same registered depth and `out_valid` marks exactly
/// when the window's results are simultaneously valid. The input window must
/// be held stable for the whole pipeline depth (standard window-buffer
/// discipline).
pub fn generate_cone(cone: &Cone, options: &VhdlOptions) -> VhdlModule {
    let graph = cone.graph();
    let entity = sanitize(&cone.signature().to_string());
    let levels = graph.asap_levels();
    let roots: Vec<NodeId> = cone.outputs().iter().map(|o| o.node).collect();
    let mask = graph.reachable(&roots);
    let max_stage = cone
        .outputs()
        .iter()
        .map(|o| levels[o.node.index()])
        .max()
        .unwrap_or(0)
        .max(1);

    let fmt = options.format;
    let quant = |v: f64| fmt.quantize(v);

    // Base name of a node's registered value (None for constants, which are
    // inlined as literals).
    let base_name = |id: NodeId| -> Option<String> {
        match graph.node(id) {
            Node::Leaf(l) => leaf_port_name(l),
            _ => Some(format!("n{}", id.index())),
        }
    };

    // Pass 1: determine how many delayed copies of each node are needed.
    let mut delays: HashMap<NodeId, u32> = HashMap::new();
    {
        let mut need = |id: NodeId, k: u32| {
            if k > 0 && base_name(id).is_some() {
                let e = delays.entry(id).or_insert(0);
                *e = (*e).max(k);
            }
        };
        for (id, node) in graph.nodes() {
            if !mask[id.index()] || matches!(node, Node::Leaf(_)) {
                continue;
            }
            let stage = levels[id.index()];
            for op in node.operands() {
                // Constants and parameters are stable: no delays.
                match graph.node(op) {
                    Node::Leaf(Leaf::Const(_))
                    | Node::Leaf(Leaf::Param(_))
                    | Node::Leaf(Leaf::Input { .. })
                    | Node::Leaf(Leaf::Static { .. }) => continue,
                    _ => {}
                }
                let avail = levels[op.index()];
                need(op, stage - 1 - avail);
            }
        }
        // Outputs must align to max_stage.
        for o in cone.outputs() {
            let avail = levels[o.node.index()];
            if matches!(graph.node(o.node), Node::Leaf(_)) {
                need(o.node, max_stage);
            } else {
                need(o.node, max_stage - avail);
            }
        }
    }

    // Operand reference at a given consuming stage.
    let operand_ref = |id: NodeId, consumer_stage: u32| -> String {
        match graph.node(id) {
            Node::Leaf(Leaf::Const(c)) => {
                format!("to_signed({}, DATA_WIDTH)", quant(c.value()))
            }
            Node::Leaf(_) => base_name(id).expect("non-const leaf has a port"),
            _ => {
                let avail = levels[id.index()];
                let k = consumer_stage - 1 - avail;
                let base = base_name(id).expect("ops have names");
                if k == 0 {
                    base
                } else {
                    format!("{base}_d{k}")
                }
            }
        }
    };

    // Ports.
    let mut ports: Vec<PortInfo> = vec![
        PortInfo { name: "clk".into(), direction: PortDirection::In, is_control: true },
        PortInfo { name: "rst".into(), direction: PortDirection::In, is_control: true },
        PortInfo { name: "in_valid".into(), direction: PortDirection::In, is_control: true },
        PortInfo { name: "out_valid".into(), direction: PortDirection::Out, is_control: true },
    ];
    let mut param_ids: Vec<usize> = Vec::new();
    for (id, node) in graph.nodes() {
        if mask[id.index()] {
            if let Node::Leaf(Leaf::Param(p)) = node {
                param_ids.push(p.index());
            }
        }
    }
    param_ids.sort_unstable();
    param_ids.dedup();
    for p in &param_ids {
        ports.push(PortInfo {
            name: format!("param_p{p}"),
            direction: PortDirection::In,
            is_control: false,
        });
    }
    for inp in cone.inputs() {
        ports.push(PortInfo {
            name: leaf_port_name(&Leaf::Input { field: inp.field, point: inp.point })
                .expect("input leaves have ports"),
            direction: PortDirection::In,
            is_control: false,
        });
    }
    for inp in cone.static_inputs() {
        ports.push(PortInfo {
            name: leaf_port_name(&Leaf::Static { field: inp.field, point: inp.point })
                .expect("static leaves have ports"),
            direction: PortDirection::In,
            is_control: false,
        });
    }
    let mut out_port_names: Vec<(String, NodeId)> = Vec::new();
    for o in cone.outputs() {
        let name = output_port_name(o.field, o.point);
        ports.push(PortInfo {
            name: name.clone(),
            direction: PortDirection::Out,
            is_control: false,
        });
        out_port_names.push((name, o.node));
    }

    // Emit.
    let mut code = String::new();
    let _ = writeln!(
        code,
        "-- Generated by isl-vhdl for cone `{}` (depth {}, window {}, {} registers).",
        cone.signature(),
        cone.depth(),
        cone.window(),
        cone.registers()
    );
    code.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\nuse work.isl_fixed_pkg.all;\n\n");
    let _ = writeln!(code, "entity {entity} is");
    code.push_str("  port (\n");
    for (i, p) in ports.iter().enumerate() {
        let dir = match p.direction {
            PortDirection::In => "in ",
            PortDirection::Out => "out",
        };
        let ty = if p.is_control { "std_logic" } else { "fixed_t" };
        let sep = if i + 1 == ports.len() { "" } else { ";" };
        let _ = writeln!(code, "    {} : {dir} {ty}{sep}", p.name);
    }
    code.push_str("  );\n");
    let _ = writeln!(code, "end entity {entity};");
    code.push('\n');
    let _ = writeln!(code, "architecture rtl of {entity} is");

    // Signal declarations: op registers, delay chains, valid shift register.
    let mut signal_count = 0usize;
    let mut delay_registers = 0usize;
    for (id, node) in graph.nodes() {
        if !mask[id.index()] || matches!(node, Node::Leaf(_)) {
            continue;
        }
        let _ = writeln!(code, "  signal n{} : fixed_t;", id.index());
        signal_count += 1;
    }
    let mut delay_list: Vec<(String, u32)> = delays
        .iter()
        .filter(|(_, &k)| k > 0)
        .map(|(&id, &k)| (base_name(id).expect("delayed nodes have names"), k))
        .collect();
    delay_list.sort();
    for (base, k) in &delay_list {
        for j in 1..=*k {
            let _ = writeln!(code, "  signal {base}_d{j} : fixed_t;");
            delay_registers += 1;
        }
    }
    let _ = writeln!(
        code,
        "  signal valid_sr : std_logic_vector(1 to {max_stage});"
    );
    code.push_str("begin\n");

    // The pipeline process.
    code.push_str("  pipeline : process (clk)\n  begin\n    if rising_edge(clk) then\n");
    code.push_str("      if rst = '1' then\n        valid_sr <= (others => '0');\n      else\n");
    code.push_str("        valid_sr(1) <= in_valid;\n");
    if max_stage > 1 {
        let _ = writeln!(
            code,
            "        valid_sr(2 to {max_stage}) <= valid_sr(1 to {});",
            max_stage - 1
        );
    }
    code.push_str("      end if;\n");

    // Stage-ordered operation registers.
    let mut by_stage: Vec<Vec<NodeId>> = vec![Vec::new(); max_stage as usize + 1];
    for (id, node) in graph.nodes() {
        if mask[id.index()] && !matches!(node, Node::Leaf(_)) {
            by_stage[levels[id.index()] as usize].push(id);
        }
    }
    for (stage, nodes) in by_stage.iter().enumerate().skip(1) {
        if nodes.is_empty() {
            continue;
        }
        let _ = writeln!(code, "      -- stage {stage}");
        for &id in nodes {
            let stage = stage as u32;
            let expr = match graph.node(id) {
                Node::Unary { op, arg } => {
                    let a = operand_ref(*arg, stage);
                    let f = match op {
                        UnaryOp::Neg => "fx_neg",
                        UnaryOp::Abs => "fx_abs",
                        UnaryOp::Sqrt => "fx_sqrt",
                    };
                    format!("{f}({a})")
                }
                Node::Binary { op, lhs, rhs } => {
                    let a = operand_ref(*lhs, stage);
                    let b = operand_ref(*rhs, stage);
                    let f = match op {
                        BinaryOp::Add => "fx_add",
                        BinaryOp::Sub => "fx_sub",
                        BinaryOp::Mul => "fx_mul",
                        BinaryOp::Div => "fx_div",
                        BinaryOp::Min => "fx_min",
                        BinaryOp::Max => "fx_max",
                        BinaryOp::Lt => "fx_lt",
                        BinaryOp::Le => "fx_le",
                        BinaryOp::Gt => "fx_gt",
                        BinaryOp::Ge => "fx_ge",
                    };
                    format!("{f}({a}, {b})")
                }
                Node::Select { cond, then_, else_ } => {
                    let c = operand_ref(*cond, stage);
                    let t = operand_ref(*then_, stage);
                    let e = operand_ref(*else_, stage);
                    format!("fx_sel({c}, {t}, {e})")
                }
                Node::Leaf(_) => unreachable!("leaves are filtered out"),
            };
            let _ = writeln!(code, "      n{} <= {expr};", id.index());
        }
    }

    if !delay_list.is_empty() {
        code.push_str("      -- pipeline balancing delays\n");
        for (base, k) in &delay_list {
            let _ = writeln!(code, "      {base}_d1 <= {base};");
            for j in 2..=*k {
                let _ = writeln!(code, "      {base}_d{j} <= {base}_d{};", j - 1);
            }
        }
    }
    code.push_str("    end if;\n  end process pipeline;\n\n");

    // Output wiring, aligned to max_stage.
    for (name, node) in &out_port_names {
        let avail = if matches!(graph.node(*node), Node::Leaf(_)) {
            0
        } else {
            levels[node.index()]
        };
        let k = max_stage - avail;
        let base = match graph.node(*node) {
            Node::Leaf(Leaf::Const(c)) => format!("to_signed({}, DATA_WIDTH)", quant(c.value())),
            _ => base_name(*node).expect("outputs are named"),
        };
        let src = if k == 0 || matches!(graph.node(*node), Node::Leaf(Leaf::Const(_))) {
            base
        } else {
            format!("{base}_d{k}")
        };
        let _ = writeln!(code, "  {name} <= {src};");
    }
    let _ = writeln!(code, "  out_valid <= valid_sr({max_stage});");
    let _ = writeln!(code, "end architecture rtl;");

    VhdlModule {
        entity_name: entity,
        code,
        ports,
        pipeline_stages: max_stage,
        signal_count,
        delay_registers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{Expr, FieldKind, Offset, StencilPattern, Window};

    fn avg_pattern() -> StencilPattern {
        let mut p = StencilPattern::new(1).with_name("avg");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::binary(
            BinaryOp::Add,
            Expr::binary(
                BinaryOp::Add,
                Expr::input(f, Offset::d1(-1)),
                Expr::input(f, Offset::d1(0)),
            ),
            Expr::input(f, Offset::d1(1)),
        );
        p.set_update(
            f,
            Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)),
        )
        .unwrap();
        p
    }

    fn build(window: u32, depth: u32) -> VhdlModule {
        let p = avg_pattern();
        let cone = Cone::build(&p, Window::line(window), depth).unwrap();
        generate_cone(&cone, &VhdlOptions::default())
    }

    #[test]
    fn entity_and_ports() {
        let m = build(2, 1);
        assert_eq!(m.entity_name, "avg_w2x1_d1");
        assert!(m.code.contains("entity avg_w2x1_d1 is"));
        // 4 control + 4 inputs (window 2 + halo 2) + 2 outputs.
        let data_in = m
            .ports
            .iter()
            .filter(|p| !p.is_control && p.direction == PortDirection::In)
            .count();
        let data_out = m
            .ports
            .iter()
            .filter(|p| !p.is_control && p.direction == PortDirection::Out)
            .count();
        assert_eq!(data_in, 4);
        assert_eq!(data_out, 2);
    }

    #[test]
    fn signals_match_registers() {
        let p = avg_pattern();
        let cone = Cone::build(&p, Window::line(3), 2).unwrap();
        let m = generate_cone(&cone, &VhdlOptions::default());
        assert_eq!(m.signal_count, cone.registers());
    }

    #[test]
    fn code_passes_structural_check() {
        for (w, d) in [(1, 1), (2, 1), (3, 2), (4, 3)] {
            let m = build(w, d);
            crate::check::validate(&m.code)
                .unwrap_or_else(|e| panic!("w{w} d{d}: {e}\n{}", m.code));
        }
    }

    #[test]
    fn negative_coordinates_sanitised() {
        let m = build(2, 2);
        assert!(m.code.contains("in_f0_xm"));
        assert!(!m.code.contains("--1")); // no raw negative in identifiers
    }

    #[test]
    fn pipeline_depth_grows_with_cone_depth() {
        let shallow = build(2, 1);
        let deep = build(2, 3);
        assert!(deep.pipeline_stages > shallow.pipeline_stages);
        assert!(deep
            .code
            .contains(&format!("valid_sr({})", deep.pipeline_stages)));
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(build(3, 2).code, build(3, 2).code);
    }

    #[test]
    fn constants_are_quantised_literals() {
        let m = build(1, 1);
        // 0.25 in Q8.10 is 256.
        assert!(m.code.contains("to_signed(256, DATA_WIDTH)"), "{}", m.code);
    }

    #[test]
    fn select_and_compare_render() {
        let mut p = StencilPattern::new(1).with_name("clamp");
        let f = p.add_field("f", FieldKind::Dynamic);
        let x = Expr::input(f, Offset::d1(0));
        let e = Expr::select(
            Expr::binary(BinaryOp::Gt, x.clone(), Expr::constant(1.0)),
            Expr::constant(1.0),
            x,
        );
        p.set_update(f, e).unwrap();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let m = generate_cone(&cone, &VhdlOptions::default());
        assert!(m.code.contains("fx_gt("));
        assert!(m.code.contains("fx_sel("));
        crate::check::validate(&m.code).unwrap();
    }

    #[test]
    fn multi_field_ports() {
        let mut p = StencilPattern::new(1).with_name("pair");
        let u = p.add_field("u", FieldKind::Dynamic);
        let v = p.add_field("v", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        p.set_update(
            u,
            Expr::binary(
                BinaryOp::Add,
                Expr::input(v, Offset::d1(0)),
                Expr::input(g, Offset::d1(0)),
            ),
        )
        .unwrap();
        p.set_update(v, Expr::input(u, Offset::d1(0))).unwrap();
        let cone = Cone::build(&p, Window::line(1), 2).unwrap();
        let m = generate_cone(&cone, &VhdlOptions::default());
        assert!(m.ports.iter().any(|pt| pt.name.starts_with("st_f2")));
        assert!(m.ports.iter().any(|pt| pt.name.starts_with("out_f0")));
        assert!(m.ports.iter().any(|pt| pt.name.starts_with("out_f1")));
        crate::check::validate(&m.code).unwrap();
    }
}
