//! Testbench generation: self-checking stimulus for a generated cone.
//!
//! Two modes: the classic single-window smoke testbench
//! ([`generate_testbench`], one synthetic stimulus, expectations from the
//! `f64` IR evaluator with an LSB tolerance), and the **vector-file mode**
//! ([`generate_vector_testbench`]) that replays a full golden-vector set
//! from the bit-true co-simulator — every cone firing of an architecture
//! run, asserted word-for-word.

use std::fmt::Write as _;

use isl_fpga::FixedFormat;
use isl_ir::{Cone, FieldId, Point};

use crate::codegen::{PortDirection, VhdlModule};
use crate::vectors::{VectorError, VectorFile};

/// Deterministic stimulus value for an input port index.
fn stimulus(i: usize) -> f64 {
    ((i * 37 + 11) % 23) as f64 / 8.0 - 1.0
}

/// Generate a self-checking testbench for `module`.
///
/// The expected outputs are computed by evaluating the cone's dataflow graph
/// with the same stimulus, quantised to the fixed-point format; the
/// testbench asserts each output within a small tolerance (behavioural
/// divide/sqrt in the support package round differently from `f64` by a few
/// LSBs).
pub fn generate_testbench(cone: &Cone, module: &VhdlModule, fmt: FixedFormat) -> String {
    // Assign stimulus per data input port, in port order.
    let data_inputs: Vec<&crate::codegen::PortInfo> = module
        .ports
        .iter()
        .filter(|p| !p.is_control && p.direction == PortDirection::In)
        .collect();
    let stim: Vec<(String, f64)> = data_inputs
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.clone(), stimulus(i)))
        .collect();

    // Expected outputs via the IR evaluator: map (field, point) -> value.
    let lookup = |field: FieldId, point: Point| -> f64 {
        let dynamic = crate::codegen::input_port_name(field, point);
        let static_ = crate::codegen::static_port_name(field, point);
        stim.iter()
            .find(|(n, _)| n == &dynamic || n == &static_)
            .map(|(_, v)| fmt.round_trip(*v))
            .unwrap_or(0.0)
    };
    let params: Vec<f64> = (0..64).map(|_| 0.0).collect(); // params driven to 0 in the TB
    let expected = cone.eval(lookup, &params);

    let entity = &module.entity_name;
    let mut tb = String::new();
    let _ = writeln!(tb, "-- Self-checking testbench for `{entity}`.");
    tb.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\nuse work.isl_fixed_pkg.all;\n\n");
    let _ = writeln!(tb, "entity tb_{entity} is\nend entity tb_{entity};");
    tb.push('\n');
    let _ = writeln!(tb, "architecture sim of tb_{entity} is");
    tb.push_str("  constant CLK_PERIOD : time := 10 ns;\n");
    tb.push_str("  constant TOLERANCE  : integer := 16; -- LSBs, covers behavioural div/sqrt rounding\n");
    tb.push_str("  signal clk : std_logic := '0';\n  signal rst : std_logic := '1';\n");
    tb.push_str("  signal in_valid, out_valid : std_logic := '0';\n");
    for p in module.ports.iter().filter(|p| !p.is_control) {
        let _ = writeln!(tb, "  signal {} : fixed_t := (others => '0');", p.name);
    }
    tb.push_str("begin\n");
    tb.push_str("  clk <= not clk after CLK_PERIOD / 2;\n\n");

    // DUT instantiation.
    let _ = writeln!(tb, "  dut : entity work.{entity}");
    tb.push_str("    port map (\n");
    for (i, p) in module.ports.iter().enumerate() {
        let sep = if i + 1 == module.ports.len() { "" } else { "," };
        let _ = writeln!(tb, "      {} => {}{sep}", p.name, p.name);
    }
    tb.push_str("    );\n\n");

    // Stimulus + checks.
    tb.push_str("  stimulus : process\n  begin\n");
    tb.push_str("    wait for 2 * CLK_PERIOD;\n    rst <= '0';\n");
    for (name, v) in &stim {
        let _ = writeln!(tb, "    {name} <= to_signed({}, DATA_WIDTH);", fmt.quantize(*v));
    }
    tb.push_str("    in_valid <= '1';\n");
    let _ = writeln!(tb, "    wait for CLK_PERIOD;");
    tb.push_str("    in_valid <= '0';\n");
    let _ = writeln!(
        tb,
        "    wait for {} * CLK_PERIOD;",
        module.pipeline_stages + 2
    );
    tb.push_str("    assert out_valid = '1' report \"out_valid did not rise\" severity error;\n");
    for (field, point, value) in &expected {
        let port = crate::codegen::output_port_name(*field, *point);
        let q = fmt.quantize(*value);
        let _ = writeln!(
            tb,
            "    assert abs(to_integer({port}) - {q}) <= TOLERANCE\n      report \"{port}: expected {q}\" severity error;"
        );
    }
    tb.push_str("    report \"testbench finished\" severity note;\n    wait;\n  end process stimulus;\n");
    let _ = writeln!(tb, "end architecture sim;");
    tb
}

/// Two's-complement bit-string literal of `word` in a `width`-bit format —
/// how vector words wider than VHDL's 32-bit `integer` are emitted.
fn bit_string_literal(word: i64, width: u32) -> String {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    format!("\"{:0w$b}\"", (word as u64) & mask, w = width as usize)
}

/// Generate a vector-driven self-checking testbench: every record of
/// `vectors` is applied to the DUT's data ports in sequence and every output
/// port is asserted against the recorded response word.
///
/// The stimulus/response words live in VHDL constant arrays, so the
/// testbench is self-contained — no file I/O in the simulator. Words are
/// asserted with tolerance 0: the vectors were generated by the bit-true
/// integer VM, which implements exactly the `isl_fixed_pkg` datapath.
/// Formats up to 31 bits use `integer` word arrays (readable decimal
/// literals); wider formats — which the precision format search probes up
/// to 63 bits — switch to `fixed_t` arrays of two's-complement bit-string
/// literals, since the words no longer fit VHDL's 32-bit `integer`.
///
/// # Errors
///
/// [`VectorError`] when the vector file's ports do not cover the module's
/// data ports (wrong entity or stale file), or when the file is empty.
pub fn generate_vector_testbench(
    module: &VhdlModule,
    vectors: &VectorFile,
) -> Result<String, VectorError> {
    if vectors.records.is_empty() {
        return Err(VectorError("no records to replay".into()));
    }
    let wide = vectors.format.width > 31;
    let word_width = vectors.format.width;
    // Map each of the module's data ports onto a vector-file column.
    let mut in_ports: Vec<(&str, usize)> = Vec::new(); // (port, stimulus column)
    let mut out_ports: Vec<(&str, usize)> = Vec::new(); // (port, response column)
    for p in module.ports.iter().filter(|p| !p.is_control) {
        match p.direction {
            PortDirection::In => in_ports.push((
                &p.name,
                vectors.input_column(&p.name).ok_or_else(|| {
                    VectorError(format!("file has no stimulus for port `{}`", p.name))
                })?,
            )),
            PortDirection::Out => out_ports.push((
                &p.name,
                vectors.output_column(&p.name).ok_or_else(|| {
                    VectorError(format!("file has no response for port `{}`", p.name))
                })?,
            )),
        }
    }

    let entity = &module.entity_name;
    let n = vectors.records.len();
    let (ni, no) = (in_ports.len(), out_ports.len());
    if ni == 0 || no == 0 {
        return Err(VectorError(format!(
            "entity `{entity}` has {ni} data input / {no} output ports; a vector testbench needs at least one of each"
        )));
    }
    let mut tb = String::new();
    let _ = writeln!(
        tb,
        "-- Vector-driven testbench for `{entity}`: {n} recorded cone firings."
    );
    tb.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\nuse work.isl_fixed_pkg.all;\n\n");
    let _ = writeln!(tb, "entity tb_{entity}_vec is\nend entity tb_{entity}_vec;");
    tb.push('\n');
    let _ = writeln!(tb, "architecture sim of tb_{entity}_vec is");
    tb.push_str("  constant CLK_PERIOD : time := 10 ns;\n");
    let _ = writeln!(tb, "  constant N_VECTORS  : integer := {n};");
    if wide {
        tb.push_str("  type word_array is array (natural range <>) of fixed_t;\n");
    } else {
        tb.push_str("  type word_array is array (natural range <>) of integer;\n");
    }
    // Stimulus and response words, flattened record-major in *module port
    // order* (not file order), so the replay loop indexes linearly. A
    // single-element array must use named association — VHDL reads a
    // one-element positional aggregate `(42)` as a parenthesised scalar.
    let flat = |ports: &[(&str, usize)], words_of: &dyn Fn(usize) -> Vec<i64>| -> String {
        let mut lits = Vec::with_capacity(n * ports.len());
        for r in 0..n {
            let words = words_of(r);
            for &(_, col) in ports {
                if wide {
                    lits.push(bit_string_literal(words[col], word_width));
                } else {
                    lits.push(words[col].to_string());
                }
            }
        }
        if lits.len() == 1 {
            format!("0 => {}", lits[0])
        } else {
            lits.join(", ")
        }
    };
    let _ = writeln!(
        tb,
        "  constant STIM : word_array(0 to {}) := ({});",
        n * ni - 1,
        flat(&in_ports, &|r| vectors.records[r].stimulus.clone())
    );
    let _ = writeln!(
        tb,
        "  constant RESP : word_array(0 to {}) := ({});",
        n * no - 1,
        flat(&out_ports, &|r| vectors.records[r].response.clone())
    );
    tb.push_str("  signal clk : std_logic := '0';\n  signal rst : std_logic := '1';\n");
    tb.push_str("  signal in_valid, out_valid : std_logic := '0';\n");
    for p in module.ports.iter().filter(|p| !p.is_control) {
        let _ = writeln!(tb, "  signal {} : fixed_t := (others => '0');", p.name);
    }
    tb.push_str("begin\n");
    tb.push_str("  clk <= not clk after CLK_PERIOD / 2;\n\n");
    let _ = writeln!(tb, "  dut : entity work.{entity}");
    tb.push_str("    port map (\n");
    for (i, p) in module.ports.iter().enumerate() {
        let sep = if i + 1 == module.ports.len() { "" } else { "," };
        let _ = writeln!(tb, "      {} => {}{sep}", p.name, p.name);
    }
    tb.push_str("    );\n\n");
    tb.push_str("  replay : process\n  begin\n");
    tb.push_str("    wait for 2 * CLK_PERIOD;\n    rst <= '0';\n");
    tb.push_str("    for v in 0 to N_VECTORS - 1 loop\n");
    for (k, (name, _)) in in_ports.iter().enumerate() {
        if wide {
            let _ = writeln!(tb, "      {name} <= STIM(v * {ni} + {k});");
        } else {
            let _ = writeln!(
                tb,
                "      {name} <= to_signed(STIM(v * {ni} + {k}), DATA_WIDTH);"
            );
        }
    }
    tb.push_str("      in_valid <= '1';\n");
    tb.push_str("      wait for CLK_PERIOD;\n");
    tb.push_str("      in_valid <= '0';\n");
    let _ = writeln!(
        tb,
        "      wait for {} * CLK_PERIOD;",
        module.pipeline_stages + 2
    );
    tb.push_str("      assert out_valid = '1' report \"out_valid did not rise\" severity error;\n");
    for (k, (name, _)) in out_ports.iter().enumerate() {
        if wide {
            let _ = writeln!(
                tb,
                "      assert {name} = RESP(v * {no} + {k})\n        report \"{name}: word mismatch at vector \" & integer'image(v) severity error;"
            );
        } else {
            let _ = writeln!(
                tb,
                "      assert to_integer({name}) = RESP(v * {no} + {k})\n        report \"{name}: word mismatch at vector \" & integer'image(v) severity error;"
            );
        }
    }
    tb.push_str("    end loop;\n");
    tb.push_str("    report \"vector testbench finished\" severity note;\n    wait;\n  end process replay;\n");
    let _ = writeln!(tb, "end architecture sim;");
    Ok(tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{generate_cone, VhdlOptions};
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern, Window};

    fn module() -> (Cone, VhdlModule) {
        let mut p = StencilPattern::new(1).with_name("avg");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::binary(
            BinaryOp::Add,
            Expr::input(f, Offset::d1(-1)),
            Expr::input(f, Offset::d1(1)),
        );
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.5)))
            .unwrap();
        let cone = Cone::build(&p, Window::line(2), 2).unwrap();
        let m = generate_cone(&cone, &VhdlOptions::default());
        (cone, m)
    }

    #[test]
    fn bit_string_literals_are_exact_twos_complement() {
        assert_eq!(bit_string_literal(5, 4), "\"0101\"");
        assert_eq!(bit_string_literal(-1, 4), "\"1111\"");
        assert_eq!(bit_string_literal(-2, 3), "\"110\"");
        assert_eq!(bit_string_literal(i64::MAX, 64).len(), 66);
        assert_eq!(bit_string_literal(i64::MIN, 64), format!("\"1{}\"", "0".repeat(63)));
    }

    #[test]
    fn wide_format_vector_testbench_uses_bit_strings() {
        use crate::vectors::{VectorFile, VectorRecord};
        let (_, m) = module();
        let fmt = FixedFormat::new(40, 32);
        let ports_in: Vec<String> = m
            .ports
            .iter()
            .filter(|p| !p.is_control && matches!(p.direction, PortDirection::In))
            .map(|p| p.name.clone())
            .collect();
        let ports_out: Vec<String> = m
            .ports
            .iter()
            .filter(|p| !p.is_control && matches!(p.direction, PortDirection::Out))
            .map(|p| p.name.clone())
            .collect();
        let record = VectorRecord {
            level: 0,
            tile: (0, 0),
            stimulus: vec![1 << 33; ports_in.len()],
            response: vec![-(1 << 34); ports_out.len()],
        };
        let file = VectorFile {
            entity: m.entity_name.clone(),
            window: isl_ir::Window::line(2),
            depth: 2,
            format: fmt,
            ports_in,
            ports_out,
            records: vec![record],
        };
        // Words beyond VHDL's 32-bit integer: the testbench must switch to
        // fixed_t bit-string arrays (the old path errored out here).
        let tb = generate_vector_testbench(&m, &file).unwrap();
        assert!(tb.contains("array (natural range <>) of fixed_t"));
        assert!(!tb.contains("to_signed(STIM"));
        assert!(tb.contains(&bit_string_literal(1 << 33, 40)));
        crate::check::balance_only(&tb).unwrap();
        // Narrow formats keep the readable integer arrays.
        let narrow = VectorFile { format: FixedFormat::default(), ..file };
        let tb = generate_vector_testbench(&m, &narrow).unwrap();
        assert!(tb.contains("array (natural range <>) of integer"));
        assert!(tb.contains("to_signed(STIM"));
    }

    #[test]
    fn testbench_references_dut() {
        let (cone, m) = module();
        let tb = generate_testbench(&cone, &m, FixedFormat::default());
        assert!(tb.contains(&format!("entity tb_{} is", m.entity_name)));
        assert!(tb.contains(&format!("dut : entity work.{}", m.entity_name)));
        // One assertion per output.
        let asserts = tb.matches("assert abs(").count();
        assert_eq!(asserts, cone.outputs().len());
    }

    #[test]
    fn testbench_waits_for_pipeline() {
        let (cone, m) = module();
        let tb = generate_testbench(&cone, &m, FixedFormat::default());
        assert!(tb.contains(&format!("wait for {} * CLK_PERIOD;", m.pipeline_stages + 2)));
    }

    #[test]
    fn stimulus_is_deterministic() {
        let (cone, m) = module();
        let a = generate_testbench(&cone, &m, FixedFormat::default());
        let b = generate_testbench(&cone, &m, FixedFormat::default());
        assert_eq!(a, b);
    }

    #[test]
    fn expected_values_are_quantised() {
        let (cone, m) = module();
        let tb = generate_testbench(&cone, &m, FixedFormat::default());
        // All expected literals must fit the 18-bit format.
        for line in tb.lines() {
            if let Some(i) = line.find("expected ") {
                let tail: String = line[i + 9..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '-')
                    .collect();
                let v: i64 = tail.parse().unwrap();
                assert!(v.abs() < (1 << 17));
            }
        }
    }
}
