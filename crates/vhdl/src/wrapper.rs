//! Tile wrapper generation: the window-buffer + control shell around a cone.
//!
//! A bare cone entity exposes one port per window element — fine for the
//! synthesis tool, impractical to wire by hand. The paper's architecture
//! feeds cones from on-chip buffers filled by DMA (Section 3.1); this module
//! generates that shell: a serial load interface (`load_valid`/`load_data`,
//! one element per cycle in input-port order), a registered window buffer,
//! and a fire-and-collect handshake around the cone's `valid` chain.
//!
//! The wrapper is the unit a system integrator instantiates; the testbench
//! story stays with the bare cone (where expected values are per-port).

use std::fmt::Write as _;

use isl_ir::Cone;

use crate::codegen::{PortDirection, VhdlModule};

/// A generated tile wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct VhdlWrapper {
    /// Wrapper entity name (`<cone>_tile`).
    pub entity_name: String,
    /// Complete VHDL source (compile after the cone entity).
    pub code: String,
    /// Elements the serial loader shifts in per tile.
    pub window_elements: usize,
    /// Output elements presented per tile.
    pub output_elements: usize,
}

/// Generate the tile wrapper for a cone and its generated module.
///
/// Interface:
///
/// * `load_valid`/`load_data` — shift one window element per cycle, in the
///   cone's data-input port order (dynamic inputs, then static inputs;
///   parameters are separate stable ports);
/// * `start` — pulse once the window is loaded; the wrapper raises the
///   cone's `in_valid` for one cycle;
/// * `done` — high when the cone's `out_valid` arrives; the flattened
///   results sit on `result_<port>` outputs until the next `start`.
pub fn generate_wrapper(cone: &Cone, module: &VhdlModule) -> VhdlWrapper {
    let _ = cone; // identity is carried by `module`; kept for API symmetry
    let entity = format!("{}_tile", module.entity_name);
    let data_in: Vec<&str> = module
        .ports
        .iter()
        .filter(|p| !p.is_control && p.direction == PortDirection::In && !p.name.starts_with("param_"))
        .map(|p| p.name.as_str())
        .collect();
    let params: Vec<&str> = module
        .ports
        .iter()
        .filter(|p| p.name.starts_with("param_"))
        .map(|p| p.name.as_str())
        .collect();
    let data_out: Vec<&str> = module
        .ports
        .iter()
        .filter(|p| !p.is_control && p.direction == PortDirection::Out)
        .map(|p| p.name.as_str())
        .collect();
    let n = data_in.len();

    let mut code = String::new();
    let _ = writeln!(
        code,
        "-- Tile wrapper for `{}`: serial window loader + fire/collect control.",
        module.entity_name
    );
    code.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\nuse work.isl_fixed_pkg.all;\n\n");
    let _ = writeln!(code, "entity {entity} is");
    code.push_str("  port (\n    clk : in  std_logic;\n    rst : in  std_logic;\n");
    code.push_str("    load_valid : in  std_logic;\n    load_data : in  fixed_t;\n");
    code.push_str("    start : in  std_logic;\n    done : out std_logic;\n");
    for p in &params {
        let _ = writeln!(code, "    {p} : in  fixed_t;");
    }
    for (i, p) in data_out.iter().enumerate() {
        let sep = if i + 1 == data_out.len() { "" } else { ";" };
        let _ = writeln!(code, "    result_{p} : out fixed_t{sep}");
    }
    code.push_str("  );\n");
    let _ = writeln!(code, "end entity {entity};");
    code.push('\n');
    let _ = writeln!(code, "architecture rtl of {entity} is");
    let _ = writeln!(code, "  type window_t is array (0 to {}) of fixed_t;", n - 1);
    code.push_str("  signal window : window_t;\n");
    let _ = writeln!(
        code,
        "  signal load_ptr : integer range 0 to {};",
        n - 1
    );
    code.push_str("  signal fire : std_logic;\n  signal cone_done : std_logic;\n");
    for p in &data_out {
        let _ = writeln!(code, "  signal cone_{p} : fixed_t;");
    }
    code.push_str("begin\n");

    // The cone instance.
    let _ = writeln!(code, "  core : entity work.{}", module.entity_name);
    code.push_str("    port map (\n      clk => clk,\n      rst => rst,\n      in_valid => fire,\n      out_valid => cone_done,\n");
    for p in &params {
        let _ = writeln!(code, "      {p} => {p},");
    }
    for (i, p) in data_in.iter().enumerate() {
        let _ = writeln!(code, "      {p} => window({i}),");
    }
    for (i, p) in data_out.iter().enumerate() {
        let sep = if i + 1 == data_out.len() { "" } else { "," };
        let _ = writeln!(code, "      {p} => cone_{p}{sep}");
    }
    code.push_str("    );\n\n");

    // Loader + control.
    code.push_str("  control : process (clk)\n  begin\n    if rising_edge(clk) then\n");
    code.push_str("      if rst = '1' then\n        load_ptr <= 0;\n        fire <= '0';\n      else\n");
    code.push_str("        fire <= start;\n");
    code.push_str("        if load_valid = '1' then\n");
    code.push_str("          window(load_ptr) <= load_data;\n");
    let _ = writeln!(
        code,
        "          if load_ptr = {} then\n            load_ptr <= 0;\n          else\n            load_ptr <= load_ptr + 1;\n          end if;",
        n - 1
    );
    code.push_str("        end if;\n      end if;\n    end if;\n  end process control;\n\n");
    code.push_str("  done <= cone_done;\n");
    for p in &data_out {
        let _ = writeln!(code, "  result_{p} <= cone_{p};");
    }
    let _ = writeln!(code, "end architecture rtl;");

    VhdlWrapper {
        entity_name: entity,
        code,
        window_elements: n,
        output_elements: data_out.len(),
    }
}

/// Structural checks for a wrapper (looser than the cone checker: the
/// wrapper uses arrays and an instantiation, so we verify the block balance,
/// the instantiation target and the interface survivors).
///
/// # Errors
///
/// [`crate::check::CheckError::Malformed`] on violations.
pub fn validate_wrapper(
    wrapper: &VhdlWrapper,
    module: &VhdlModule,
) -> Result<(), crate::check::CheckError> {
    use crate::check::CheckError;
    let code = &wrapper.code;
    if !code.contains(&format!("entity {} is", wrapper.entity_name)) {
        return Err(CheckError::Malformed("missing wrapper entity".into()));
    }
    if !code.contains(&format!("core : entity work.{}", module.entity_name)) {
        return Err(CheckError::Malformed("wrapper does not instantiate the cone".into()));
    }
    // Every cone port must be mapped exactly once.
    for p in &module.ports {
        let mapping = format!("{} =>", p.name);
        if !code.contains(&mapping) {
            return Err(CheckError::Malformed(format!(
                "port `{}` is not mapped in the wrapper",
                p.name
            )));
        }
    }
    crate::check::balance_only(code)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{generate_cone, VhdlOptions};
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern, Window};

    fn module() -> (Cone, VhdlModule) {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let tau = p.add_param("tau", 0.5);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::param(tau)))
            .unwrap();
        let cone = Cone::build(&p, Window::square(2), 2).unwrap();
        let m = generate_cone(&cone, &VhdlOptions::default());
        (cone, m)
    }

    #[test]
    fn wrapper_instantiates_and_validates() {
        let (cone, m) = module();
        let w = generate_wrapper(&cone, &m);
        assert_eq!(w.entity_name, format!("{}_tile", m.entity_name));
        assert_eq!(w.window_elements, cone.inputs().len() + cone.static_inputs().len());
        assert_eq!(w.output_elements, cone.outputs().len());
        validate_wrapper(&w, &m).unwrap_or_else(|e| panic!("{e}\n{}", w.code));
    }

    #[test]
    fn wrapper_exposes_serial_interface() {
        let (cone, m) = module();
        let w = generate_wrapper(&cone, &m);
        for needle in ["load_valid", "load_data", "start", "done", "window(load_ptr) <= load_data"] {
            assert!(w.code.contains(needle), "missing `{needle}`");
        }
        // Parameters stay as stable pass-through ports, not loader slots.
        assert!(w.code.contains("param_p0 : in  fixed_t;"));
        assert!(w.code.contains("param_p0 => param_p0,"));
    }

    #[test]
    fn wrapper_detects_unmapped_ports() {
        let (cone, m) = module();
        let mut w = generate_wrapper(&cone, &m);
        w.code = w.code.replace("in_valid => fire,", "");
        assert!(validate_wrapper(&w, &m).is_err());
    }

    #[test]
    fn wrapper_is_deterministic() {
        let (cone, m) = module();
        assert_eq!(generate_wrapper(&cone, &m).code, generate_wrapper(&cone, &m).code);
    }
}
