//! Structural validation of generated VHDL and golden-vector certification.
//!
//! Not a VHDL compiler — a disciplined checker for the shapes this backend
//! emits, used by the test suite to guarantee that every generated design
//! is internally consistent: one entity/architecture pair, balanced
//! `begin`/`end`, all referenced identifiers declared, single driver per
//! signal, and input ports never driven.
//!
//! [`verify_vectors`] extends the discipline to *numerics*: every response
//! word of a golden-vector file is re-derived through the independent
//! fixed-point graph interpreter ([`isl_fpga::eval_fixed_raw`]) — a tree walk
//! over the cone's dataflow graph, sharing no code with the bytecode VM
//! that generated the file — and compared bit-for-bit.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use isl_fpga::{eval_fixed_raw, FixedFormat};
use isl_ir::Cone;

use crate::codegen;
use crate::vectors::VectorFile;

/// Check failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// Structure problems (missing entity, unbalanced blocks...).
    Malformed(String),
    /// A referenced identifier is not declared.
    Undeclared(String),
    /// A signal is driven by more than one assignment.
    MultipleDrivers(String),
    /// An input port appears on the left of an assignment.
    InputDriven(String),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Malformed(m) => write!(f, "malformed VHDL: {m}"),
            CheckError::Undeclared(n) => write!(f, "undeclared identifier `{n}`"),
            CheckError::MultipleDrivers(n) => write!(f, "signal `{n}` has multiple drivers"),
            CheckError::InputDriven(n) => write!(f, "input port `{n}` is driven"),
        }
    }
}

impl Error for CheckError {}

/// Summary facts of a validated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VhdlStructure {
    /// Entity name.
    pub entity: String,
    /// Number of ports.
    pub ports: usize,
    /// Number of declared signals.
    pub signals: usize,
    /// Number of signal assignments (`<=`).
    pub assignments: usize,
}

const KEYWORDS: &[&str] = &[
    "library", "use", "all", "entity", "is", "port", "in", "out", "end", "architecture", "of",
    "signal", "begin", "process", "if", "then", "else", "elsif", "rising_edge", "std_logic",
    "std_logic_vector", "signed", "unsigned", "downto", "to", "others", "not", "and", "or",
    "when", "constant", "integer", "subtype", "function", "return", "variable", "loop", "for",
    "work", "ieee", "numeric_std", "std_logic_1164", "fixed_t", "resize", "shift_left",
    "shift_right", "to_signed", "to_unsigned", "abs", "rst", "clk", "rtl", "generic", "map",
    "component", "package", "body", "null", "data_width", "data_frac", "isl_fixed_pkg",
];

fn is_builtin(word: &str) -> bool {
    let w = word.to_ascii_lowercase();
    KEYWORDS.contains(&w.as_str()) || w.starts_with("fx_") || w.parse::<i64>().is_ok()
}

fn words(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in line.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find("--") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Count block openers vs `end` tokens over the whole source.
fn block_balance(code: &str) -> (i64, i64) {
    let mut tokens: Vec<String> = Vec::new();
    for line in code.lines() {
        tokens.extend(words(strip_comment(line)));
    }
    let mut opens = 0i64;
    let mut ends = 0i64;
    for (i, w) in tokens.iter().enumerate() {
        let prev = if i > 0 { tokens[i - 1].as_str() } else { "" };
        let next = tokens.get(i + 1).map(String::as_str).unwrap_or("");
        match w.as_str() {
            "end" => ends += 1,
            // `entity work.X` in an instantiation is a reference, not an opener.
            "entity" if prev != "end" && next != "work" => opens += 1,
            "architecture" if prev != "end" => opens += 1,
            "process" if prev != "end" => opens += 1,
            "if" if prev != "end" => opens += 1,
            "loop" if prev != "end" => opens += 1,
            "package" if prev != "end" => opens += 1,
            "case" if prev != "end" => opens += 1,
            _ => {}
        }
    }
    // Function *bodies* open a block (`function ... is`); declarations in a
    // package spec (`function ...;`) do not. Distinguish line-wise.
    for line in code.lines() {
        let line = strip_comment(line).trim();
        if line.starts_with("function ") && line.ends_with(" is") {
            opens += 1;
        }
    }
    (opens, ends)
}

/// Validate a generated cone entity (see module docs for the checks).
///
/// # Errors
///
/// The first violated rule as a [`CheckError`].
pub fn validate(code: &str) -> Result<VhdlStructure, CheckError> {
    let entity = {
        let mut name = None;
        for line in code.lines() {
            let line = strip_comment(line).trim();
            if let Some(rest) = line.strip_prefix("entity ") {
                if let Some(n) = rest.strip_suffix(" is") {
                    name = Some(n.trim().to_string());
                    break;
                }
            }
        }
        name.ok_or_else(|| CheckError::Malformed("no entity declaration".into()))?
    };
    if !code.contains(&format!("architecture rtl of {entity} is")) {
        return Err(CheckError::Malformed(format!(
            "no architecture `rtl` for entity `{entity}`"
        )));
    }

    // Block balance: every opener (entity, architecture, process, if, loop,
    // function body) must have a matching `end`.
    let (opens, ends) = block_balance(code);
    if ends != opens {
        return Err(CheckError::Malformed(format!(
            "unbalanced blocks: {opens} openers / {ends} ends"
        )));
    }

    // Declarations.
    let mut in_ports: HashSet<String> = HashSet::new();
    let mut out_ports: HashSet<String> = HashSet::new();
    let mut signals: HashSet<String> = HashSet::new();
    for raw in code.lines() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = line.strip_prefix("signal ") {
            if let Some((name, _)) = rest.split_once(':') {
                signals.insert(name.trim().to_string());
            }
        } else if line.contains(" : in ") {
            if let Some((name, _)) = line.split_once(':') {
                in_ports.insert(name.trim().to_string());
            }
        } else if line.contains(" : out ") {
            if let Some((name, _)) = line.split_once(':') {
                out_ports.insert(name.trim().to_string());
            }
        }
    }

    // Assignments.
    let mut drivers: HashMap<String, usize> = HashMap::new();
    let mut assignments = 0usize;
    for raw in code.lines() {
        let line = strip_comment(raw).trim();
        let Some((lhs, rhs)) = line.split_once("<=") else {
            continue;
        };
        // Skip comparisons inside if-conditions (they contain `then`).
        if line.starts_with("if ") || line.contains(" then") {
            continue;
        }
        assignments += 1;
        let lhs_name = words(lhs)
            .into_iter()
            .next()
            .ok_or_else(|| CheckError::Malformed(format!("empty assignment target: {line}")))?;
        if in_ports.contains(&lhs_name) {
            return Err(CheckError::InputDriven(lhs_name));
        }
        if !signals.contains(&lhs_name) && !out_ports.contains(&lhs_name) {
            return Err(CheckError::Undeclared(lhs_name));
        }
        *drivers.entry(lhs_name).or_insert(0) += 1;
        for w in words(rhs) {
            if is_builtin(&w) {
                continue;
            }
            if !signals.contains(&w) && !in_ports.contains(&w) && !out_ports.contains(&w) {
                return Err(CheckError::Undeclared(w));
            }
        }
    }
    for (name, n) in &drivers {
        // A signal may be assigned once per control path; our generator
        // drives each signal from exactly one statement except valid_sr,
        // which has a reset branch plus shifted updates.
        if *n > 1 && name != "valid_sr" {
            return Err(CheckError::MultipleDrivers(name.clone()));
        }
    }

    Ok(VhdlStructure {
        entity,
        ports: in_ports.len() + out_ports.len(),
        signals: signals.len(),
        assignments,
    })
}

/// Block-balance check only (used by the wrapper validator, whose array
/// types and instantiations fall outside the cone checker's discipline).
///
/// # Errors
///
/// [`CheckError::Malformed`] when openers and `end`s disagree.
pub fn balance_only(code: &str) -> Result<(), CheckError> {
    let (opens, ends) = block_balance(code);
    if opens != ends {
        return Err(CheckError::Malformed(format!(
            "unbalanced blocks: {opens} openers / {ends} ends"
        )));
    }
    Ok(())
}

// -- golden-vector certification --------------------------------------------

/// Summary of a successful [`verify_vectors`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorCheckReport {
    /// Cone firings (vector records) checked.
    pub records: usize,
    /// Response words compared bit-for-bit.
    pub words: usize,
}

/// Why a golden-vector file failed certification.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorCheckError {
    /// The file does not describe this cone (entity, shape, format or port
    /// mismatch).
    Incompatible(String),
    /// A response word disagrees with the independent re-evaluation.
    Mismatch(VectorMismatch),
}

/// The first diverging response word of a failed certification: which
/// firing (record, level, tile), which output port, and both raw words.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorMismatch {
    /// Record index in file order.
    pub record: usize,
    /// Level of the architecture decomposition the firing belongs to.
    pub level: u32,
    /// Tile origin of the firing, frame coordinates.
    pub tile: (i64, i64),
    /// Output port that diverged.
    pub port: String,
    /// Raw word the checker derived.
    pub expected: i64,
    /// Raw word the file recorded.
    pub got: i64,
}

impl fmt::Display for VectorCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorCheckError::Incompatible(m) => {
                write!(f, "vector file incompatible with cone: {m}")
            }
            VectorCheckError::Mismatch(m) => write!(
                f,
                "vector mismatch at record {} (level {}, tile ({}, {})), port `{}`: expected {}, file has {}",
                m.record, m.level, m.tile.0, m.tile.1, m.port, m.expected, m.got
            ),
        }
    }
}

impl Error for VectorCheckError {}

/// Certify a golden-vector file against `cone`: every record's stimulus is
/// fed through the independent fixed-point graph interpreter
/// ([`isl_fpga::eval_fixed_raw`], in the raw-word domain so widths past
/// `f64`'s mantissa stay exact) and every response word must match
/// bit-for-bit. The first divergence is reported with its record, level,
/// tile and port — enough for `isl-cosim`'s triage to pinpoint the
/// offending instruction.
///
/// # Errors
///
/// [`VectorCheckError::Incompatible`] when the file does not describe this
/// cone; [`VectorCheckError::Mismatch`] on the first diverging word.
pub fn verify_vectors(
    cone: &Cone,
    fmt: FixedFormat,
    file: &VectorFile,
) -> Result<VectorCheckReport, VectorCheckError> {
    let expect_entity = codegen::entity_name(cone);
    if file.entity != expect_entity {
        return Err(VectorCheckError::Incompatible(format!(
            "file is for `{}`, cone is `{expect_entity}`",
            file.entity
        )));
    }
    if file.window != cone.window() || file.depth != cone.depth() {
        return Err(VectorCheckError::Incompatible(format!(
            "file shape w{} d{} vs cone w{} d{}",
            file.window,
            file.depth,
            cone.window(),
            cone.depth()
        )));
    }
    if file.format != fmt {
        return Err(VectorCheckError::Incompatible(format!(
            "file format {} vs requested {fmt}",
            file.format
        )));
    }
    // Column of every input the cone will read; strict — a missing port
    // means the file cannot drive this cone.
    let mut in_cols: HashMap<String, usize> = HashMap::new();
    for (i, name) in file.ports_in.iter().enumerate() {
        in_cols.insert(name.clone(), i);
    }
    let col_of = |name: &str| -> Result<usize, VectorCheckError> {
        in_cols
            .get(name)
            .copied()
            .ok_or_else(|| VectorCheckError::Incompatible(format!("missing input port `{name}`")))
    };
    let dyn_cols: Vec<usize> = cone
        .inputs()
        .iter()
        .map(|i| col_of(&codegen::input_port_name(i.field, i.point)))
        .collect::<Result<_, _>>()?;
    let static_cols: Vec<usize> = cone
        .static_inputs()
        .iter()
        .map(|i| col_of(&codegen::static_port_name(i.field, i.point)))
        .collect::<Result<_, _>>()?;
    // Parameter columns, by ParamId index (absent params read as zero).
    let param_cols: Vec<Option<usize>> = {
        let max_param = file
            .ports_in
            .iter()
            .filter_map(|p| p.strip_prefix("param_p").and_then(|s| s.parse::<usize>().ok()))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        (0..max_param)
            .map(|i| in_cols.get(&codegen::param_port_name(i)).copied())
            .collect()
    };
    let out_cols: Vec<(usize, String)> = cone
        .outputs()
        .iter()
        .map(|o| {
            let name = codegen::output_port_name(o.field, o.point);
            file.output_column(&name)
                .map(|c| (c, name.clone()))
                .ok_or(VectorCheckError::Incompatible(format!(
                    "missing output port `{name}`"
                )))
        })
        .collect::<Result<_, _>>()?;

    let mut words = 0usize;
    for (ri, record) in file.records.iter().enumerate() {
        // Raw-word lookup: stimulus words drive the evaluation directly.
        // Dequantising first would round words wider than f64's mantissa
        // (width > 53) and break bit-exact certification.
        let lookup: HashMap<(u16, i32, i32), i64> = cone
            .inputs()
            .iter()
            .zip(&dyn_cols)
            .chain(cone.static_inputs().iter().zip(&static_cols))
            .map(|(inp, &c)| {
                (
                    (inp.field.index() as u16, inp.point.x, inp.point.y),
                    record.stimulus[c],
                )
            })
            .collect();
        let params: Vec<i64> = param_cols
            .iter()
            .map(|c| c.map(|c| record.stimulus[c]).unwrap_or(0))
            .collect();
        let outs = eval_fixed_raw(
            cone,
            fmt,
            |f, p| {
                lookup
                    .get(&(f.index() as u16, p.x, p.y))
                    .copied()
                    .unwrap_or(0)
            },
            &params,
        );
        for ((_, _, value), (col, name)) in outs.iter().zip(&out_cols) {
            let expected = *value;
            let got = record.response[*col];
            words += 1;
            if expected != got {
                return Err(VectorCheckError::Mismatch(VectorMismatch {
                    record: ri,
                    level: record.level,
                    tile: record.tile,
                    port: name.clone(),
                    expected,
                    got,
                }));
            }
        }
    }
    Ok(VectorCheckReport {
        records: file.records.len(),
        words,
    })
}

/// Validate the support package: presence of `package` and `package body`
/// and balanced function/if/loop blocks.
///
/// # Errors
///
/// [`CheckError::Malformed`] on violations.
pub fn validate_package(code: &str) -> Result<(), CheckError> {
    if !code.contains("package isl_fixed_pkg is") {
        return Err(CheckError::Malformed("missing package declaration".into()));
    }
    if !code.contains("package body isl_fixed_pkg is") {
        return Err(CheckError::Malformed("missing package body".into()));
    }
    let (opens, ends) = block_balance(code);
    if opens != ends {
        return Err(CheckError::Malformed(format!(
            "unbalanced package blocks: {opens} openers / {ends} ends"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
entity t is
  port (
    clk : in  std_logic;
    a : in fixed_t;
    y : out fixed_t
  );
end entity t;

architecture rtl of t is
  signal n0 : fixed_t;
begin
  p : process (clk)
  begin
    if rising_edge(clk) then
      n0 <= fx_add(a, a);
    end if;
  end process p;
  y <= n0;
end architecture rtl;
"#;

    #[test]
    fn accepts_well_formed() {
        let s = validate(GOOD).unwrap();
        assert_eq!(s.entity, "t");
        assert_eq!(s.signals, 1);
        assert_eq!(s.assignments, 2);
    }

    #[test]
    fn rejects_undeclared_rhs() {
        let bad = GOOD.replace("fx_add(a, a)", "fx_add(a, ghost)");
        assert_eq!(
            validate(&bad).unwrap_err(),
            CheckError::Undeclared("ghost".into())
        );
    }

    #[test]
    fn rejects_undeclared_lhs() {
        let bad = GOOD.replace("n0 <= fx_add(a, a);", "nx <= fx_add(a, a);");
        assert!(matches!(validate(&bad), Err(CheckError::Undeclared(_))));
    }

    #[test]
    fn rejects_driven_input() {
        let bad = GOOD.replace("y <= n0;", "y <= n0;\n  a <= n0;");
        assert_eq!(
            validate(&bad).unwrap_err(),
            CheckError::InputDriven("a".into())
        );
    }

    #[test]
    fn rejects_double_driver() {
        let bad = GOOD.replace("y <= n0;", "y <= n0;\n  y <= n0;");
        assert_eq!(
            validate(&bad).unwrap_err(),
            CheckError::MultipleDrivers("y".into())
        );
    }

    #[test]
    fn rejects_unbalanced() {
        let bad = GOOD.replace("end process p;", "");
        assert!(matches!(validate(&bad), Err(CheckError::Malformed(_))));
    }

    #[test]
    fn rejects_missing_entity() {
        assert!(matches!(
            validate("architecture rtl of t is begin end;"),
            Err(CheckError::Malformed(_))
        ));
    }
}
