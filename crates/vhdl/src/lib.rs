//! # isl-vhdl — synthesizable VHDL backend for stencil cones
//!
//! The DAC 2013 flow "generates synthesizable VHDL descriptions of all the
//! cones", relying on register reuse to keep the code "slim" (Section 3.2).
//! This crate renders a hash-consed [`isl_ir::Cone`] into:
//!
//! * a **fixed-point support package** (`isl_fixed_pkg`) with the arithmetic
//!   helpers the data path uses;
//! * one **entity per cone**: every operation node becomes one registered
//!   signal (one pipeline stage), operands crossing more than one stage get
//!   explicit balancing delay registers, and a `valid` chain tracks the
//!   pipeline latency;
//! * a **testbench** that drives a stimulus window and asserts the outputs
//!   against expected values computed by the IR evaluator in the same
//!   fixed-point format — so the generated hardware is checkable in any
//!   VHDL simulator without this library;
//! * a **golden-vector exchange** ([`vectors`]): per-firing
//!   stimulus/response files produced by the bit-true co-simulator
//!   (`isl-cosim`), replayed by the vector-file testbench mode
//!   ([`generate_vector_testbench`]) and certified word-for-word by
//!   [`check::verify_vectors`] against the independent fixed-point graph
//!   interpreter;
//! * a **structural checker** ([`check`]) used by the test suite: balanced
//!   `begin`/`end`, every referenced signal declared, every signal driven
//!   exactly once, and pipeline stages consistent.
//!
//! Division and square root are emitted as calls into the support package
//! (behaviourally specified, single stage); production users would swap in
//! vendor pipelined IP — the area/timing models in `isl-fpga` already
//! account for the iterative-array cost.
//!
//! ```
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset, Window, Cone};
//! use isl_vhdl::{generate_cone, VhdlOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(1).with_name("avg");
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::binary(
//!     BinaryOp::Add,
//!     Expr::input(f, Offset::d1(-1)),
//!     Expr::input(f, Offset::d1(1)),
//! );
//! p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.5)))?;
//! let cone = Cone::build(&p, Window::line(2), 2)?;
//! let module = generate_cone(&cone, &VhdlOptions::default());
//! assert!(module.code.contains("entity avg_w2x1_d2 is"));
//! isl_vhdl::check::validate(&module.code)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod codegen;
mod package;
mod testbench;
pub mod vectors;
mod wrapper;

pub use check::{verify_vectors, VectorCheckError, VectorCheckReport, VectorMismatch};
pub use codegen::{generate_cone, PortDirection, PortInfo, VhdlModule, VhdlOptions};
pub use package::fixed_package;
pub use testbench::{generate_testbench, generate_vector_testbench};
pub use vectors::{VectorError, VectorFile, VectorRecord};
pub use wrapper::{generate_wrapper, validate_wrapper, VhdlWrapper};
