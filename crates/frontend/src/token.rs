//! Tokens and source spans.

use std::fmt;

/// A half-open source location used for error reporting (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub const fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds of the C subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (variable, array or function name).
    Ident(String),
    /// Numeric literal (integer or float, `f`/`F` suffix allowed).
    Num(f64),
    /// `void`
    KwVoid,
    /// `const`
    KwConst,
    /// `float`
    KwFloat,
    /// `int`
    KwInt,
    /// `for`
    KwFor,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `return`
    KwReturn,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Num(v) => format!("number `{v}`"),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::KwConst => "`const`".into(),
            TokenKind::KwFloat => "`float`".into(),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwFor => "`for`".into(),
            TokenKind::KwIf => "`if`".into(),
            TokenKind::KwElse => "`else`".into(),
            TokenKind::KwReturn => "`return`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::PlusAssign => "`+=`".into(),
            TokenKind::MinusAssign => "`-=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Not => "`!`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Question => "`?`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::PlusPlus => "`++`".into(),
            TokenKind::MinusMinus => "`--`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}
