//! Frontend error type.

use std::error::Error;
use std::fmt;

use crate::token::Span;

/// What went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// A character the lexer does not understand.
    UnexpectedChar(char),
    /// A malformed numeric literal.
    BadNumber(String),
    /// A malformed `#pragma isl` directive.
    BadPragma(String),
    /// The parser found `got` where it expected `expected`.
    UnexpectedToken {
        /// What was expected.
        expected: String,
        /// What was found.
        got: String,
    },
    /// A semantic-analysis violation (signature, loop structure, ...).
    Semantic(String),
    /// Expression or statement nesting beyond the parser's depth budget
    /// (protects against stack exhaustion on adversarial input).
    NestingTooDeep,
}

/// An error with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontendError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Where (1-based line/column).
    pub span: Span,
}

impl FrontendError {
    /// Construct an error at a location.
    pub fn new(kind: ErrorKind, span: Span) -> Self {
        FrontendError { kind, span }
    }

    /// Construct a semantic error at a location.
    pub fn semantic(msg: impl Into<String>, span: Span) -> Self {
        FrontendError {
            kind: ErrorKind::Semantic(msg.into()),
            span,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => {
                write!(f, "{}: unexpected character `{c}`", self.span)
            }
            ErrorKind::BadNumber(s) => write!(f, "{}: malformed number `{s}`", self.span),
            ErrorKind::BadPragma(s) => write!(f, "{}: malformed pragma: {s}", self.span),
            ErrorKind::UnexpectedToken { expected, got } => {
                write!(f, "{}: expected {expected}, found {got}", self.span)
            }
            ErrorKind::Semantic(msg) => write!(f, "{}: {msg}", self.span),
            ErrorKind::NestingTooDeep => {
                write!(f, "{}: expression or statement nesting too deep", self.span)
            }
        }
    }
}

impl Error for FrontendError {}
