//! Recursive-descent parser for the C subset.

use crate::ast::{
    ArrayParam, BinOp, ExprAst, Kernel, LValue, ScalarParam, Stmt, UnOp,
};
use crate::error::{ErrorKind, FrontendError};
use crate::lexer::lex;
use crate::token::{Span, Token, TokenKind};

/// Parse a kernel source file into a [`Kernel`].
///
/// # Errors
///
/// Returns a located [`FrontendError`] on lexical or syntactic problems.
pub fn parse(source: &str) -> Result<Kernel, FrontendError> {
    let (tokens, pragmas) = lex(source)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut kernel = p.kernel()?;
    kernel.pragmas = pragmas;
    Ok(kernel)
}

/// Recursion budget shared by statement and expression nesting. Each
/// syntactic nesting level costs a handful of recursive-descent frames, so
/// this bounds native stack use long before exhaustion — adversarial
/// `((((...` input gets [`ErrorKind::NestingTooDeep`] instead of a crash.
const MAX_NESTING: u32 = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: u32,
}

impl Parser {
    fn enter(&mut self) -> Result<(), FrontendError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(FrontendError::new(
                ErrorKind::NestingTooDeep,
                self.peek().span,
            ));
        }
        Ok(())
    }

    fn exit(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, FrontendError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&kind.describe()))
        }
    }

    fn unexpected(&self, expected: &str) -> FrontendError {
        FrontendError::new(
            ErrorKind::UnexpectedToken {
                expected: expected.to_string(),
                got: self.peek_kind().describe(),
            },
            self.peek().span,
        )
    }

    fn ident(&mut self) -> Result<(String, Span), FrontendError> {
        let t = self.peek().clone();
        if let TokenKind::Ident(name) = t.kind {
            self.bump();
            Ok((name, t.span))
        } else {
            Err(self.unexpected("an identifier"))
        }
    }

    // -- kernel -----------------------------------------------------------

    fn kernel(&mut self) -> Result<Kernel, FrontendError> {
        self.expect(TokenKind::KwVoid)?;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LParen)?;
        let mut arrays = Vec::new();
        let mut scalars = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                self.parameter(&mut arrays, &mut scalars)?;
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(TokenKind::RParen)?;
                break;
            }
        }
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Err(self.unexpected("`}`"));
            }
            body.push(self.stmt()?);
        }
        Ok(Kernel {
            name,
            arrays,
            scalars,
            body,
            pragmas: Vec::new(),
        })
    }

    fn parameter(
        &mut self,
        arrays: &mut Vec<ArrayParam>,
        scalars: &mut Vec<ScalarParam>,
    ) -> Result<(), FrontendError> {
        let is_const = self.eat(&TokenKind::KwConst);
        if !self.eat(&TokenKind::KwFloat) && !self.eat(&TokenKind::KwInt) {
            return Err(self.unexpected("`float` or `int`"));
        }
        let (name, span) = self.ident()?;
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let dim = match self.peek_kind().clone() {
                TokenKind::Ident(d) => {
                    self.bump();
                    d
                }
                TokenKind::Num(n) => {
                    self.bump();
                    format!("{}", n as i64)
                }
                _ => return Err(self.unexpected("a dimension name or size")),
            };
            self.expect(TokenKind::RBracket)?;
            dims.push(dim);
        }
        if dims.is_empty() {
            if is_const {
                return Err(FrontendError::semantic(
                    format!("scalar parameter `{name}` must not be const"),
                    span,
                ));
            }
            scalars.push(ScalarParam { name, span });
        } else {
            arrays.push(ArrayParam { name, is_const, dims, span });
        }
        Ok(())
    }

    // -- statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        self.enter()?;
        let r = self.stmt_inner();
        self.exit();
        r
    }

    fn stmt_inner(&mut self) -> Result<Stmt, FrontendError> {
        match self.peek_kind() {
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&TokenKind::RBrace) {
                    if matches!(self.peek_kind(), TokenKind::Eof) {
                        return Err(self.unexpected("`}`"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            TokenKind::KwFloat | TokenKind::KwInt => {
                let span = self.peek().span;
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Decl { name, value, span })
            }
            TokenKind::Semi => {
                self.bump();
                Ok(Stmt::Block(Vec::new()))
            }
            _ => self.assign_stmt(),
        }
    }

    fn for_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.peek().span;
        self.expect(TokenKind::KwFor)?;
        self.expect(TokenKind::LParen)?;
        let _ = self.eat(&TokenKind::KwInt);
        let (var, var_span) = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let from = self.expr()?;
        self.expect(TokenKind::Semi)?;
        // Condition: `var < bound` or `var <= bound` (normalised to exclusive).
        let (cond_var, _) = self.ident()?;
        if cond_var != var {
            return Err(FrontendError::semantic(
                format!("loop condition must test `{var}`, found `{cond_var}`"),
                var_span,
            ));
        }
        let inclusive = match self.bump().kind {
            TokenKind::Lt => false,
            TokenKind::Le => true,
            _ => return Err(self.unexpected("`<` or `<=`")),
        };
        let mut to = self.expr()?;
        if inclusive {
            to = ExprAst::Binary {
                op: BinOp::Add,
                lhs: Box::new(to),
                rhs: Box::new(ExprAst::Num(1.0)),
            };
        }
        self.expect(TokenKind::Semi)?;
        self.loop_increment(&var, var_span)?;
        self.expect(TokenKind::RParen)?;
        let body = self.stmt()?;
        Ok(Stmt::For {
            var,
            from,
            to,
            body: Box::new(body),
            span,
        })
    }

    /// Accepts `v++`, `++v`, `v += 1`, `v = v + 1`.
    fn loop_increment(&mut self, var: &str, span: Span) -> Result<(), FrontendError> {
        let err = || {
            FrontendError::semantic(
                format!("loop increment must step `{var}` by 1"),
                span,
            )
        };
        match self.peek_kind().clone() {
            TokenKind::PlusPlus => {
                self.bump();
                let (v, _) = self.ident()?;
                if v != var {
                    return Err(err());
                }
                Ok(())
            }
            TokenKind::Ident(v) if v == var => {
                self.bump();
                match self.bump().kind {
                    TokenKind::PlusPlus => Ok(()),
                    TokenKind::PlusAssign => match self.bump().kind {
                        TokenKind::Num(n) if (n - 1.0).abs() < f64::EPSILON => Ok(()),
                        _ => Err(err()),
                    },
                    TokenKind::Assign => {
                        let (v2, _) = self.ident()?;
                        if v2 != var {
                            return Err(err());
                        }
                        self.expect(TokenKind::Plus)?;
                        match self.bump().kind {
                            TokenKind::Num(n) if (n - 1.0).abs() < f64::EPSILON => Ok(()),
                            _ => Err(err()),
                        }
                    }
                    _ => Err(err()),
                }
            }
            _ => Err(err()),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let span = self.peek().span;
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_ = Box::new(self.stmt()?);
        let else_ = if self.eat(&TokenKind::KwElse) {
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::If { cond, then_, else_, span })
    }

    fn assign_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let (name, span) = self.ident()?;
        let target = if self.peek_kind() == &TokenKind::LBracket {
            let mut indices = Vec::new();
            while self.eat(&TokenKind::LBracket) {
                indices.push(self.expr()?);
                self.expect(TokenKind::RBracket)?;
            }
            LValue::Elem { array: name, indices, span }
        } else {
            LValue::Var(name, span)
        };
        let op = self.bump().kind;
        let rhs = self.expr()?;
        self.expect(TokenKind::Semi)?;
        let value = match op {
            TokenKind::Assign => rhs,
            TokenKind::PlusAssign | TokenKind::MinusAssign => {
                // Desugar `lv op= e` into `lv = lv op e`.
                let read = match &target {
                    LValue::Var(n, s) => ExprAst::Ident(n.clone(), *s),
                    LValue::Elem { array, indices, span } => ExprAst::Index {
                        array: array.clone(),
                        indices: indices.clone(),
                        span: *span,
                    },
                };
                ExprAst::Binary {
                    op: if op == TokenKind::PlusAssign {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    },
                    lhs: Box::new(read),
                    rhs: Box::new(rhs),
                }
            }
            _ => return Err(self.unexpected("`=`, `+=` or `-=`")),
        };
        Ok(Stmt::Assign { target, value })
    }

    // -- expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> Result<ExprAst, FrontendError> {
        self.enter()?;
        let r = self.ternary();
        self.exit();
        r
    }

    fn ternary(&mut self) -> Result<ExprAst, FrontendError> {
        let cond = self.or_expr()?;
        if self.eat(&TokenKind::Question) {
            let then_ = self.expr()?;
            self.expect(TokenKind::Colon)?;
            // Right-associative chains recurse here without passing through
            // `expr`, so they spend nesting budget of their own.
            self.enter()?;
            let else_ = self.ternary();
            self.exit();
            let else_ = else_?;
            Ok(ExprAst::Ternary {
                cond: Box::new(cond),
                then_: Box::new(then_),
                else_: Box::new(else_),
            })
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            e = ExprAst::Binary {
                op: BinOp::Or,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            e = ExprAst::Binary {
                op: BinOp::And,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<ExprAst, FrontendError> {
        let e = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            _ => return Ok(e),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(ExprAst::Binary {
            op,
            lhs: Box::new(e),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = ExprAst::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = ExprAst::Binary {
                op,
                lhs: Box::new(e),
                rhs: Box::new(rhs),
            };
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<ExprAst, FrontendError> {
        self.enter()?;
        let r = self.unary_inner();
        self.exit();
        r
    }

    fn unary_inner(&mut self) -> Result<ExprAst, FrontendError> {
        match self.peek_kind() {
            TokenKind::Minus => {
                self.bump();
                let arg = self.unary_expr()?;
                Ok(ExprAst::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(arg),
                })
            }
            TokenKind::Not => {
                self.bump();
                let arg = self.unary_expr()?;
                Ok(ExprAst::Unary {
                    op: UnOp::Not,
                    arg: Box::new(arg),
                })
            }
            TokenKind::Plus => {
                self.bump();
                self.unary_expr()
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<ExprAst, FrontendError> {
        match self.peek_kind().clone() {
            TokenKind::Num(v) => {
                self.bump();
                Ok(ExprAst::Num(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let span = self.peek().span;
                self.bump();
                if self.peek_kind() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen)?;
                            break;
                        }
                    }
                    Ok(ExprAst::Call { func: name, args, span })
                } else if self.peek_kind() == &TokenKind::LBracket {
                    let mut indices = Vec::new();
                    while self.eat(&TokenKind::LBracket) {
                        indices.push(self.expr()?);
                        self.expect(TokenKind::RBracket)?;
                    }
                    Ok(ExprAst::Index { array: name, indices, span })
                } else {
                    Ok(ExprAst::Ident(name, span))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = r#"
#pragma isl iterations 10
void step(const float in[H][W], float out[H][W]) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
        }
    }
}
"#;

    #[test]
    fn parses_jacobi() {
        let k = parse(JACOBI).unwrap();
        assert_eq!(k.name, "step");
        assert_eq!(k.arrays.len(), 2);
        assert!(k.arrays[0].is_const);
        assert!(!k.arrays[1].is_const);
        assert_eq!(k.arrays[0].dims, vec!["H", "W"]);
        assert_eq!(k.iterations(), Some(10));
        assert_eq!(k.body.len(), 1);
    }

    #[test]
    fn nested_loop_structure() {
        let k = parse(JACOBI).unwrap();
        let Stmt::For { var, body, .. } = &k.body[0] else {
            panic!("expected outer for");
        };
        assert_eq!(var, "y");
        let Stmt::Block(inner) = body.as_ref() else {
            panic!("expected block");
        };
        let Stmt::For { var, .. } = &inner[0] else {
            panic!("expected inner for");
        };
        assert_eq!(var, "x");
    }

    #[test]
    fn scalar_parameters_parse() {
        let k = parse(
            "void step(const float p[H][W], float q[H][W], float tau) { }",
        )
        .unwrap();
        assert_eq!(k.scalars.len(), 1);
        assert_eq!(k.scalars[0].name, "tau");
    }

    #[test]
    fn inclusive_bound_is_normalised() {
        let k = parse("void f(float a[N]) { for (int i = 0; i <= N; i++) ; }").unwrap();
        let Stmt::For { to, .. } = &k.body[0] else {
            panic!()
        };
        assert!(matches!(to, ExprAst::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn all_increment_forms_accepted() {
        for inc in ["i++", "++i", "i += 1", "i = i + 1"] {
            let src = format!("void f(float a[N]) {{ for (int i = 0; i < N; {inc}) ; }}");
            parse(&src).unwrap_or_else(|e| panic!("{inc}: {e}"));
        }
    }

    #[test]
    fn non_unit_increment_rejected() {
        let src = "void f(float a[N]) { for (int i = 0; i < N; i += 2) ; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn compound_assignment_desugars() {
        let k = parse("void f(float a[N]) { float t = 0.0f; t += 2.0f; }").unwrap();
        let Stmt::Assign { value, .. } = &k.body[1] else {
            panic!()
        };
        assert!(matches!(value, ExprAst::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn ternary_and_calls() {
        let k = parse(
            "void f(const float a[N], float b[N], float t) {
                for (int i = 0; i < N; i++)
                    b[i] = a[i] > t ? sqrtf(a[i]) : fminf(a[i], t);
            }",
        )
        .unwrap();
        let Stmt::For { body, .. } = &k.body[0] else {
            panic!()
        };
        let Stmt::Assign { value, .. } = body.as_ref() else {
            panic!()
        };
        assert!(matches!(value, ExprAst::Ternary { .. }));
    }

    #[test]
    fn error_has_location() {
        let err = parse("void f(float a[N]) { for }").unwrap_err();
        assert!(err.span.line >= 1);
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn pretty_print_roundtrip() {
        // Spans differ between original and reprinted source, so compare the
        // printed forms: printing must be a fixed point of parse ∘ print.
        let k = parse(JACOBI).unwrap();
        let printed = k.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn empty_parameter_list() {
        let k = parse("void f() { }").unwrap();
        assert!(k.arrays.is_empty());
        assert!(k.scalars.is_empty());
    }

    #[test]
    fn wrong_loop_condition_variable_rejected() {
        let src = "void f(float a[N]) { for (int i = 0; j < N; i++) ; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_crash() {
        // Each of these once blew the native stack; now they must come back
        // as a located NestingTooDeep error.
        let cases = [
            format!(
                "void f(float a[N]) {{ float t = {}1.0{}; }}",
                "(".repeat(100_000),
                ")".repeat(100_000)
            ),
            format!("void f(float a[N]) {{ float t = {}1.0; }}", "!".repeat(100_000)),
            format!(
                "void f(float a[N]) {{ float t = {}1.0; }}",
                "1.0 ? 1.0 : ".repeat(100_000)
            ),
            format!(
                "void f(float a[N]) {{ {} {} }}",
                "{".repeat(100_000),
                "}".repeat(100_000)
            ),
            format!(
                "void f(float a[N]) {{ {} ; }}",
                "if (1.0)".repeat(100_000)
            ),
        ];
        for src in &cases {
            let err = parse(src).unwrap_err();
            assert_eq!(err.kind, ErrorKind::NestingTooDeep, "{}", &src[..60]);
        }
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let src = format!(
            "void f(float a[N]) {{ float t = {}1.0{}; }}",
            "(".repeat(40),
            ")".repeat(40)
        );
        parse(&src).unwrap();
    }
}
