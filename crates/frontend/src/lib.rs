//! # isl-frontend — C-subset frontend for iterative stencil loop kernels
//!
//! The DAC 2013 flow "takes a high level description (C language) of the
//! algorithm as input". This crate implements that front door: a lexer,
//! recursive-descent parser and semantic analyser for the C subset in which
//! single-iteration ISL kernels are written.
//!
//! A kernel is a `void` function whose array parameters are the frames:
//!
//! ```c
//! #pragma isl iterations 10
//! void step(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++) {
//!         for (int x = 0; x < W; x++) {
//!             out[y][x] = (in[y-1][x] + in[y+1][x]
//!                        + in[y][x-1] + in[y][x+1]) * 0.25f;
//!         }
//!     }
//! }
//! ```
//!
//! Conventions (checked by [`analyze`]):
//!
//! * every `const` array is an input, every non-`const` array an output;
//! * outputs pair with inputs either by the `_out` suffix (`px` / `px_out`)
//!   or — when there is exactly one input and one output array — by
//!   position (`in` / `out`); unpaired `const` arrays are *static* fields
//!   (read-only for the whole run, e.g. Chambolle's observed image);
//! * scalar parameters become runtime parameters of the stencil;
//! * `#pragma isl iterations N`, `#pragma isl param name value` and
//!   `#pragma isl border mode` carry metadata the flow needs.
//!
//! The grammar intentionally covers what ISL kernels use: nested `for`
//! loops, scalar `float`/`int` declarations, assignments, arithmetic with
//! comparisons and ternaries, the C math calls `sqrtf`, `fabsf`, `fminf`,
//! `fmaxf`, and constant-trip loops (which symbolic execution later
//! unrolls).
//!
//! ```
//! use isl_frontend::{parse, analyze};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = r#"
//! #pragma isl iterations 4
//! void step(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++)
//!         for (int x = 0; x < W; x++)
//!             out[y][x] = in[y][x];
//! }
//! "#;
//! let kernel = parse(src)?;
//! let info = analyze(&kernel)?;
//! assert_eq!(info.rank, 2);
//! assert_eq!(info.iterations, Some(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lexer;
mod parser;
mod sema;
mod token;

pub use ast::{
    ArrayParam, BinOp, ExprAst, Kernel, LValue, Pragma, ScalarParam, Stmt, UnOp,
};
pub use error::{ErrorKind, FrontendError};
pub use lexer::lex;
pub use parser::parse;
pub use sema::{analyze, FieldInfo, FieldRole, KernelInfo, ParamInfo};
pub use token::{Span, Token, TokenKind};
