//! Abstract syntax tree of the C subset, plus a pretty-printer.
//!
//! The pretty-printer regenerates compilable source from an AST; the
//! integration suite uses it for parse → print → parse round-trip
//! property tests.

use std::fmt;

use crate::token::Span;

/// A metadata directive (`#pragma isl ...`).
#[derive(Debug, Clone, PartialEq)]
pub enum Pragma {
    /// `#pragma isl iterations N` — default iteration count of the ISL.
    Iterations(u32),
    /// `#pragma isl param name value` — default value of a scalar parameter.
    ParamDefault {
        /// Parameter name (must match a scalar function parameter).
        name: String,
        /// Default value.
        value: f64,
    },
    /// `#pragma isl border mode` — border handling hint (clamp/mirror/wrap/zero).
    Border(String),
}

/// An array (frame) parameter such as `const float in[H][W]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayParam {
    /// Parameter name.
    pub name: String,
    /// `const` marks inputs.
    pub is_const: bool,
    /// Dimension names/sizes from outermost to innermost, e.g. `["H", "W"]`.
    pub dims: Vec<String>,
    /// Source location of the declaration.
    pub span: Span,
}

/// A scalar parameter such as `float tau`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarParam {
    /// Parameter name.
    pub name: String,
    /// Source location of the declaration.
    pub span: Span,
}

/// Binary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// C spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Unary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprAst {
    /// Numeric literal.
    Num(f64),
    /// Variable reference (loop variable, scalar parameter or local).
    Ident(String, Span),
    /// Array element access `name[e1][e2]...`.
    Index {
        /// Array name.
        array: String,
        /// One index expression per dimension, outermost first.
        indices: Vec<ExprAst>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Box<ExprAst>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<ExprAst>,
        /// Right operand.
        rhs: Box<ExprAst>,
    },
    /// Function call (the math subset: `sqrtf`, `fabsf`, `fminf`, `fmaxf`).
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<ExprAst>,
        /// Source location.
        span: Span,
    },
    /// C ternary `cond ? then : else`.
    Ternary {
        /// Condition.
        cond: Box<ExprAst>,
        /// Value if the condition is non-zero.
        then_: Box<ExprAst>,
        /// Value otherwise.
        else_: Box<ExprAst>,
    },
}

impl ExprAst {
    /// Source location most representative of this expression.
    pub fn span(&self) -> Span {
        match self {
            ExprAst::Num(_) => Span::default(),
            ExprAst::Ident(_, s) => *s,
            ExprAst::Index { span, .. } => *span,
            ExprAst::Unary { arg, .. } => arg.span(),
            ExprAst::Binary { lhs, .. } => lhs.span(),
            ExprAst::Call { span, .. } => *span,
            ExprAst::Ternary { cond, .. } => cond.span(),
        }
    }
}

/// Assignment target: scalar or array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar local variable.
    Var(String, Span),
    /// An array element.
    Elem {
        /// Array name.
        array: String,
        /// Index expressions, outermost first.
        indices: Vec<ExprAst>,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// Source location of the target.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, s) => *s,
            LValue::Elem { span, .. } => *span,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A counted `for` loop with unit increment:
    /// `for (int v = from; v < to; v++) body`.
    For {
        /// Loop variable.
        var: String,
        /// Lower bound (inclusive).
        from: ExprAst,
        /// Upper bound (exclusive).
        to: ExprAst,
        /// Loop body.
        body: Box<Stmt>,
        /// Source location.
        span: Span,
    },
    /// Local scalar declaration with initialiser: `float t = e;`.
    Decl {
        /// Variable name.
        name: String,
        /// Initialiser.
        value: ExprAst,
        /// Source location.
        span: Span,
    },
    /// Assignment `lv = e;` (compound `+=`/`-=` are desugared by the parser).
    Assign {
        /// Target.
        target: LValue,
        /// Value.
        value: ExprAst,
    },
    /// `if (cond) then [else else]` — both branches may assign; symbolic
    /// execution merges them into hardware selects.
    If {
        /// Condition.
        cond: ExprAst,
        /// Taken branch.
        then_: Box<Stmt>,
        /// Optional fallback branch.
        else_: Option<Box<Stmt>>,
        /// Source location.
        span: Span,
    },
    /// `{ ... }`.
    Block(Vec<Stmt>),
}

/// A parsed kernel: one `void` function plus its pragmas.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Function name.
    pub name: String,
    /// Array (frame) parameters, in declaration order.
    pub arrays: Vec<ArrayParam>,
    /// Scalar parameters, in declaration order.
    pub scalars: Vec<ScalarParam>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Collected `#pragma isl` directives.
    pub pragmas: Vec<Pragma>,
}

impl Kernel {
    /// The `iterations` pragma value, if present.
    pub fn iterations(&self) -> Option<u32> {
        self.pragmas.iter().find_map(|p| match p {
            Pragma::Iterations(n) => Some(*n),
            _ => None,
        })
    }

    /// The default value declared for scalar parameter `name`, if any.
    pub fn param_default(&self, name: &str) -> Option<f64> {
        self.pragmas.iter().find_map(|p| match p {
            Pragma::ParamDefault { name: n, value } if n == name => Some(*value),
            _ => None,
        })
    }

    /// The `border` pragma value, if present.
    pub fn border(&self) -> Option<&str> {
        self.pragmas.iter().find_map(|p| match p {
            Pragma::Border(b) => Some(b.as_str()),
            _ => None,
        })
    }
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

fn fmt_expr(e: &ExprAst, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        ExprAst::Num(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                write!(f, "{v:.1}")
            } else {
                write!(f, "{v}")
            }
        }
        ExprAst::Ident(n, _) => write!(f, "{n}"),
        ExprAst::Index { array, indices, .. } => {
            write!(f, "{array}")?;
            for i in indices {
                write!(f, "[")?;
                fmt_expr(i, f)?;
                write!(f, "]")?;
            }
            Ok(())
        }
        ExprAst::Unary { op, arg } => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            write!(f, "({sym}")?;
            fmt_expr(arg, f)?;
            write!(f, ")")
        }
        ExprAst::Binary { op, lhs, rhs } => {
            write!(f, "(")?;
            fmt_expr(lhs, f)?;
            write!(f, " {} ", op.symbol())?;
            fmt_expr(rhs, f)?;
            write!(f, ")")
        }
        ExprAst::Call { func, args, .. } => {
            write!(f, "{func}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_expr(a, f)?;
            }
            write!(f, ")")
        }
        ExprAst::Ternary { cond, then_, else_ } => {
            write!(f, "(")?;
            fmt_expr(cond, f)?;
            write!(f, " ? ")?;
            fmt_expr(then_, f)?;
            write!(f, " : ")?;
            fmt_expr(else_, f)?;
            write!(f, ")")
        }
    }
}

impl fmt::Display for ExprAst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f)
    }
}

fn fmt_stmt(s: &Stmt, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::For { var, from, to, body, .. } => {
            writeln!(f, "{pad}for (int {var} = {from}; {var} < {to}; {var}++)")?;
            fmt_stmt(body, f, indent + 1)
        }
        Stmt::Decl { name, value, .. } => writeln!(f, "{pad}float {name} = {value};"),
        Stmt::Assign { target, value } => match target {
            LValue::Var(n, _) => writeln!(f, "{pad}{n} = {value};"),
            LValue::Elem { array, indices, .. } => {
                write!(f, "{pad}{array}")?;
                for i in indices {
                    write!(f, "[{i}]")?;
                }
                writeln!(f, " = {value};")
            }
        },
        Stmt::If { cond, then_, else_, .. } => {
            writeln!(f, "{pad}if ({cond})")?;
            fmt_stmt(then_, f, indent + 1)?;
            if let Some(e) = else_ {
                writeln!(f, "{pad}else")?;
                fmt_stmt(e, f, indent + 1)?;
            }
            Ok(())
        }
        Stmt::Block(stmts) => {
            writeln!(f, "{pad}{{")?;
            for st in stmts {
                fmt_stmt(st, f, indent + 1)?;
            }
            writeln!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_stmt(self, f, 0)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.pragmas {
            match p {
                Pragma::Iterations(n) => writeln!(f, "#pragma isl iterations {n}")?,
                Pragma::ParamDefault { name, value } => {
                    writeln!(f, "#pragma isl param {name} {value}")?
                }
                Pragma::Border(b) => writeln!(f, "#pragma isl border {b}")?,
            }
        }
        write!(f, "void {}(", self.name)?;
        let mut first = true;
        for a in &self.arrays {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if a.is_const {
                write!(f, "const ")?;
            }
            write!(f, "float {}", a.name)?;
            for d in &a.dims {
                write!(f, "[{d}]")?;
            }
        }
        for s in &self.scalars {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "float {}", s.name)?;
        }
        writeln!(f, ") {{")?;
        for s in &self.body {
            fmt_stmt(s, f, 1)?;
        }
        writeln!(f, "}}")
    }
}
