//! Hand-written lexer for the C subset, including `#pragma isl` directives.

use crate::ast::Pragma;
use crate::error::{ErrorKind, FrontendError};
use crate::token::{Span, Token, TokenKind};

/// Tokenise `source`, separating `#pragma isl` directives from the token
/// stream. `//` and `/* */` comments are skipped; unknown preprocessor lines
/// (`#define`, `#include`) are ignored so realistic kernel files lex cleanly.
///
/// # Errors
///
/// Returns a located [`FrontendError`] on unknown characters, malformed
/// numbers or malformed `#pragma isl` directives.
pub fn lex(source: &str) -> Result<(Vec<Token>, Vec<Pragma>), FrontendError> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: &'s str,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<(Vec<Token>, Vec<Pragma>), FrontendError> {
        let mut tokens = Vec::new();
        let mut pragmas = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token { kind: TokenKind::Eof, span });
                break;
            };
            if c == '#' {
                if let Some(p) = self.preprocessor_line(span)? {
                    pragmas.push(p);
                }
                continue;
            }
            let kind = self.token(span)?;
            tokens.push(Token { kind, span });
        }
        Ok((tokens, pragmas))
    }

    fn skip_trivia(&mut self) -> Result<(), FrontendError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => break,
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Consume a whole `#...` line. Recognised `#pragma isl` directives are
    /// returned; other preprocessor lines are ignored.
    fn preprocessor_line(&mut self, span: Span) -> Result<Option<Pragma>, FrontendError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let words: Vec<&str> = text.split_whitespace().collect();
        if words.len() >= 2 && words[0] == "#pragma" && words[1] == "isl" {
            let bad = |msg: &str| {
                Err(FrontendError::new(ErrorKind::BadPragma(msg.to_string()), span))
            };
            match words.get(2).copied() {
                Some("iterations") => {
                    let Some(n) = words.get(3).and_then(|w| w.parse::<u32>().ok()) else {
                        return bad("expected `iterations <positive integer>`");
                    };
                    if n == 0 {
                        return bad("iteration count must be positive");
                    }
                    Ok(Some(Pragma::Iterations(n)))
                }
                Some("param") => {
                    let (Some(name), Some(value)) = (words.get(3), words.get(4)) else {
                        return bad("expected `param <name> <value>`");
                    };
                    let Ok(v) = value.parse::<f64>() else {
                        return bad("parameter default must be numeric");
                    };
                    Ok(Some(Pragma::ParamDefault {
                        name: name.to_string(),
                        value: v,
                    }))
                }
                Some("border") => {
                    let Some(mode) = words.get(3) else {
                        return bad("expected `border <mode>`");
                    };
                    Ok(Some(Pragma::Border(mode.to_string())))
                }
                other => bad(&format!(
                    "unknown directive `{}`; expected iterations/param/border",
                    other.unwrap_or("")
                )),
            }
        } else {
            Ok(None) // #define / #include etc.: ignored
        }
    }

    fn token(&mut self, span: Span) -> Result<TokenKind, FrontendError> {
        let c = self.bump().expect("caller checked peek");
        let two = |lexer: &mut Self, next: char, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semi,
            ',' => TokenKind::Comma,
            '?' => TokenKind::Question,
            ':' => TokenKind::Colon,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '+' => match self.peek() {
                Some('+') => {
                    self.bump();
                    TokenKind::PlusPlus
                }
                Some('=') => {
                    self.bump();
                    TokenKind::PlusAssign
                }
                _ => TokenKind::Plus,
            },
            '-' => match self.peek() {
                Some('-') => {
                    self.bump();
                    TokenKind::MinusMinus
                }
                Some('=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            '<' => two(self, '=', TokenKind::Le, TokenKind::Lt),
            '>' => two(self, '=', TokenKind::Ge, TokenKind::Gt),
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '!' => two(self, '=', TokenKind::Ne, TokenKind::Not),
            '&' => {
                if self.peek() == Some('&') {
                    self.bump();
                    TokenKind::AndAnd
                } else {
                    return Err(FrontendError::new(ErrorKind::UnexpectedChar('&'), span));
                }
            }
            '|' => {
                if self.peek() == Some('|') {
                    self.bump();
                    TokenKind::OrOr
                } else {
                    return Err(FrontendError::new(ErrorKind::UnexpectedChar('|'), span));
                }
            }
            c if c.is_ascii_digit() || (c == '.' && self.peek().is_some_and(|n| n.is_ascii_digit())) => {
                self.number(c, span)?
            }
            c if c.is_ascii_alphabetic() || c == '_' => self.ident(c),
            other => return Err(FrontendError::new(ErrorKind::UnexpectedChar(other), span)),
        };
        Ok(kind)
    }

    fn number(&mut self, first: char, span: Span) -> Result<TokenKind, FrontendError> {
        let mut text = String::new();
        text.push(first);
        let mut seen_dot = first == '.';
        let mut seen_exp = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' if !seen_dot && !seen_exp => {
                    seen_dot = true;
                    text.push(c);
                    self.bump();
                }
                'e' | 'E' if !seen_exp => {
                    seen_exp = true;
                    text.push(c);
                    self.bump();
                    if matches!(self.peek(), Some('+') | Some('-')) {
                        text.push(self.bump().expect("peeked"));
                    }
                }
                'f' | 'F' => {
                    self.bump(); // float suffix, drop it
                    break;
                }
                _ => break,
            }
        }
        text.parse::<f64>()
            .map(TokenKind::Num)
            .map_err(|_| FrontendError::new(ErrorKind::BadNumber(text), span))
    }

    fn ident(&mut self, first: char) -> TokenKind {
        let mut text = String::new();
        text.push(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match text.as_str() {
            "void" => TokenKind::KwVoid,
            "const" => TokenKind::KwConst,
            "float" | "double" => TokenKind::KwFloat,
            "int" => TokenKind::KwInt,
            "for" => TokenKind::KwFor,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "return" => TokenKind::KwReturn,
            _ => TokenKind::Ident(text),
        }
    }

    #[allow(dead_code)]
    fn source(&self) -> &'s str {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().0.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_symbols_and_idents() {
        let ks = kinds("out[y][x] = in[y-1][x] * 0.25f;");
        assert_eq!(ks[0], TokenKind::Ident("out".into()));
        assert_eq!(ks[1], TokenKind::LBracket);
        assert!(ks.contains(&TokenKind::Num(0.25)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_two_char_operators() {
        let ks = kinds("<= >= == != && || ++ -- += -=");
        assert_eq!(
            &ks[..10],
            &[
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::EqEq,
                TokenKind::Ne,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::PlusPlus,
                TokenKind::MinusMinus,
                TokenKind::PlusAssign,
                TokenKind::MinusAssign,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // line\n /* block\nblock */ b");
        assert_eq!(ks.len(), 3); // a, b, eof
    }

    #[test]
    fn parses_pragmas() {
        let (_, pragmas) = lex("#pragma isl iterations 10\n#pragma isl param tau 0.25\n#pragma isl border clamp\nvoid f() {}").unwrap();
        assert_eq!(
            pragmas,
            vec![
                Pragma::Iterations(10),
                Pragma::ParamDefault { name: "tau".into(), value: 0.25 },
                Pragma::Border("clamp".into()),
            ]
        );
    }

    #[test]
    fn ignores_other_preprocessor_lines() {
        let (tokens, pragmas) = lex("#include <math.h>\n#define W 1024\nx").unwrap();
        assert!(pragmas.is_empty());
        assert_eq!(tokens.len(), 2);
    }

    #[test]
    fn rejects_bad_pragma() {
        assert!(lex("#pragma isl iterations zero\n").is_err());
        assert!(lex("#pragma isl bogus\n").is_err());
        assert!(lex("#pragma isl iterations 0\n").is_err());
    }

    #[test]
    fn number_forms() {
        assert_eq!(kinds("1 2.5 .5 1e3 1.5e-2 3f")[..6].to_vec(), vec![
            TokenKind::Num(1.0),
            TokenKind::Num(2.5),
            TokenKind::Num(0.5),
            TokenKind::Num(1000.0),
            TokenKind::Num(0.015),
            TokenKind::Num(3.0),
        ]);
    }

    #[test]
    fn reports_unknown_char_with_location() {
        let err = lex("a\n  @").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert_eq!(err.span.col, 3);
        assert!(matches!(err.kind, ErrorKind::UnexpectedChar('@')));
    }

    #[test]
    fn single_ampersand_is_error() {
        assert!(lex("a & b").is_err());
    }
}
