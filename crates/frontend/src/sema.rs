//! Semantic analysis: signature checks and field-role inference.
//!
//! `analyze` validates the kernel signature and derives the *field map*: how
//! the C arrays of the kernel correspond to the stencil's dynamic and static
//! fields. The loop structure and index affinity (translational invariance)
//! are checked later by the symbolic executor, which is where array accesses
//! are actually resolved.

use std::collections::{HashMap, HashSet};

use crate::ast::Kernel;
use crate::error::FrontendError;
use crate::token::Span;

/// How one stencil field is realised in the kernel signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldRole {
    /// A field that is rewritten every iteration: the kernel reads array
    /// `input` and writes array `output`.
    Dynamic {
        /// Name of the `const` array holding iteration `i`.
        input: String,
        /// Name of the array receiving iteration `i + 1`.
        output: String,
    },
    /// A frame-constant field: read-only across all iterations.
    Static {
        /// Name of the `const` array.
        input: String,
    },
}

/// One stencil field derived from the kernel signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Canonical field name (the input array's name).
    pub name: String,
    /// How the field appears in the signature.
    pub role: FieldRole,
}

impl FieldInfo {
    /// Whether the field is dynamic (updated every iteration).
    pub fn is_dynamic(&self) -> bool {
        matches!(self.role, FieldRole::Dynamic { .. })
    }

    /// The output array name, for dynamic fields.
    pub fn output_array(&self) -> Option<&str> {
        match &self.role {
            FieldRole::Dynamic { output, .. } => Some(output),
            FieldRole::Static { .. } => None,
        }
    }
}

/// A scalar runtime parameter with its (pragma-supplied) default.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Default value (`0.0` when no `#pragma isl param` is given).
    pub default: f64,
}

/// The validated signature-level facts about a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelInfo {
    /// Kernel (function) name.
    pub name: String,
    /// Spatial rank (number of array dimensions), 1 to 3.
    pub rank: usize,
    /// Dimension names, outermost (slowest) first — e.g. `["H", "W"]`.
    pub dim_names: Vec<String>,
    /// Stencil fields in input-array declaration order.
    pub fields: Vec<FieldInfo>,
    /// Scalar parameters in declaration order.
    pub params: Vec<ParamInfo>,
    /// Default iteration count from `#pragma isl iterations`, if present.
    pub iterations: Option<u32>,
    /// Border-mode hint from `#pragma isl border`, if present.
    pub border: Option<String>,
}

impl KernelInfo {
    /// Index of the field whose *input* array is `array`, if any.
    pub fn field_of_input(&self, array: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == array)
    }

    /// Index of the dynamic field whose *output* array is `array`, if any.
    pub fn field_of_output(&self, array: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.output_array() == Some(array))
    }

    /// Index of the scalar parameter named `name`, if any.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }
}

/// Validate a parsed kernel's signature and derive its field map.
///
/// Pairing rules (in order):
///
/// 1. a non-`const` array named `X_out` pairs with a `const` array `X`;
/// 2. if after suffix pairing exactly one `const` and one non-`const` array
///    remain, they pair positionally (the classic `in`/`out` signature);
/// 3. remaining `const` arrays become static fields; a remaining non-`const`
///    array is an error (an output with no matching input cannot iterate).
///
/// # Errors
///
/// Returns a [`FrontendError`] with kind `Semantic` describing the first
/// violated rule (no arrays, mismatched dimensions, duplicate names,
/// unpairable outputs, unknown pragma parameter names, bad rank).
pub fn analyze(kernel: &Kernel) -> Result<KernelInfo, FrontendError> {
    let span = Span::new(1, 1);
    if kernel.arrays.is_empty() {
        return Err(FrontendError::semantic(
            "kernel declares no array (frame) parameter",
            span,
        ));
    }

    // Unique names across arrays and scalars.
    let mut seen: HashSet<&str> = HashSet::new();
    for a in &kernel.arrays {
        if !seen.insert(a.name.as_str()) {
            return Err(FrontendError::semantic(
                format!("duplicate parameter name `{}`", a.name),
                a.span,
            ));
        }
    }
    for s in &kernel.scalars {
        if !seen.insert(s.name.as_str()) {
            return Err(FrontendError::semantic(
                format!("duplicate parameter name `{}`", s.name),
                s.span,
            ));
        }
    }

    // Congruent dimensions.
    let dim_names = kernel.arrays[0].dims.clone();
    let rank = dim_names.len();
    if !(1..=3).contains(&rank) {
        return Err(FrontendError::semantic(
            format!("array rank {rank} unsupported (must be 1, 2 or 3)"),
            kernel.arrays[0].span,
        ));
    }
    for a in &kernel.arrays {
        if a.dims != dim_names {
            return Err(FrontendError::semantic(
                format!(
                    "array `{}` has dimensions [{}] but `{}` has [{}]; all frames must be congruent",
                    a.name,
                    a.dims.join("]["),
                    kernel.arrays[0].name,
                    dim_names.join("][")
                ),
                a.span,
            ));
        }
    }

    // Pair outputs with inputs.
    let inputs: Vec<_> = kernel.arrays.iter().filter(|a| a.is_const).collect();
    let outputs: Vec<_> = kernel.arrays.iter().filter(|a| !a.is_const).collect();
    if outputs.is_empty() {
        return Err(FrontendError::semantic(
            "kernel has no output array (every array is const)",
            kernel.arrays[0].span,
        ));
    }

    let mut paired: HashMap<&str, &str> = HashMap::new(); // input -> output
    let mut unpaired_outputs: Vec<&crate::ast::ArrayParam> = Vec::new();
    for o in &outputs {
        if let Some(base) = o.name.strip_suffix("_out") {
            if inputs.iter().any(|i| i.name == base) {
                paired.insert(
                    inputs.iter().find(|i| i.name == base).map(|i| i.name.as_str()).expect("checked"),
                    o.name.as_str(),
                );
                continue;
            }
        }
        unpaired_outputs.push(o);
    }
    let unpaired_inputs: Vec<&&crate::ast::ArrayParam> = inputs
        .iter()
        .filter(|i| !paired.contains_key(i.name.as_str()))
        .collect();
    match (unpaired_inputs.len(), unpaired_outputs.len()) {
        (_, 0) => {}
        (1, 1) => {
            paired.insert(&unpaired_inputs[0].name, &unpaired_outputs[0].name);
        }
        _ => {
            return Err(FrontendError::semantic(
                format!(
                    "cannot pair output array `{}` with an input; name it `<input>_out` or use a single in/out pair",
                    unpaired_outputs[0].name
                ),
                unpaired_outputs[0].span,
            ));
        }
    }

    let fields: Vec<FieldInfo> = inputs
        .iter()
        .map(|i| FieldInfo {
            name: i.name.clone(),
            role: match paired.get(i.name.as_str()) {
                Some(out) => FieldRole::Dynamic {
                    input: i.name.clone(),
                    output: (*out).to_string(),
                },
                None => FieldRole::Static { input: i.name.clone() },
            },
        })
        .collect();

    if !fields.iter().any(|f| f.is_dynamic()) {
        return Err(FrontendError::semantic(
            "kernel has no dynamic field (no const/non-const array pair)",
            kernel.arrays[0].span,
        ));
    }

    // Scalar params with pragma defaults; pragma names must exist.
    let params: Vec<ParamInfo> = kernel
        .scalars
        .iter()
        .map(|s| ParamInfo {
            name: s.name.clone(),
            default: kernel.param_default(&s.name).unwrap_or(0.0),
        })
        .collect();
    for p in &kernel.pragmas {
        if let crate::ast::Pragma::ParamDefault { name, .. } = p {
            if !kernel.scalars.iter().any(|s| &s.name == name) {
                return Err(FrontendError::semantic(
                    format!("pragma names unknown parameter `{name}`"),
                    span,
                ));
            }
        }
    }

    Ok(KernelInfo {
        name: kernel.name.clone(),
        rank,
        dim_names,
        fields,
        params,
        iterations: kernel.iterations(),
        border: kernel.border().map(str::to_string),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn info(src: &str) -> Result<KernelInfo, FrontendError> {
        analyze(&parse(src)?)
    }

    #[test]
    fn single_in_out_pairs_positionally() {
        let i = info("void f(const float in[H][W], float out[H][W]) { }").unwrap();
        assert_eq!(i.rank, 2);
        assert_eq!(i.fields.len(), 1);
        assert_eq!(
            i.fields[0].role,
            FieldRole::Dynamic { input: "in".into(), output: "out".into() }
        );
    }

    #[test]
    fn suffix_pairing_with_static_extra() {
        let i = info(
            "void f(const float px[H][W], const float py[H][W], const float g[H][W],
                    float px_out[H][W], float py_out[H][W]) { }",
        )
        .unwrap();
        assert_eq!(i.fields.len(), 3);
        assert!(i.fields[0].is_dynamic());
        assert!(i.fields[1].is_dynamic());
        assert_eq!(i.fields[2].role, FieldRole::Static { input: "g".into() });
        assert_eq!(i.field_of_output("px_out"), Some(0));
        assert_eq!(i.field_of_input("g"), Some(2));
    }

    #[test]
    fn unpairable_output_is_error() {
        let err = info(
            "void f(const float a[H][W], const float b[H][W], float c[H][W], float d[H][W]) { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("cannot pair"));
    }

    #[test]
    fn mismatched_dims_rejected() {
        let err = info("void f(const float a[H][W], float b[W][H]) { }").unwrap_err();
        assert!(err.to_string().contains("congruent"));
    }

    #[test]
    fn all_const_rejected() {
        let err = info("void f(const float a[H][W]) { }").unwrap_err();
        assert!(err.to_string().contains("no output array"));
    }

    #[test]
    fn no_arrays_rejected() {
        let err = info("void f(float t) { }").unwrap_err();
        assert!(err.to_string().contains("no array"));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = info("void f(const float a[H][W], float a[H][W]) { }").unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rank_bounds() {
        assert!(info("void f(const float a[A][B][C][D], float b[A][B][C][D]) { }").is_err());
        assert_eq!(info("void f(const float a[N], float b[N]) { }").unwrap().rank, 1);
        assert_eq!(
            info("void f(const float a[D][H][W], float b[D][H][W]) { }").unwrap().rank,
            3
        );
    }

    #[test]
    fn params_and_pragmas() {
        let i = info(
            "#pragma isl iterations 7\n#pragma isl param tau 0.25\n#pragma isl border mirror\n
             void f(const float a[H][W], float b[H][W], float tau, float lam) { }",
        )
        .unwrap();
        assert_eq!(i.iterations, Some(7));
        assert_eq!(i.border.as_deref(), Some("mirror"));
        assert_eq!(i.params.len(), 2);
        assert_eq!(i.params[0], ParamInfo { name: "tau".into(), default: 0.25 });
        assert_eq!(i.params[1], ParamInfo { name: "lam".into(), default: 0.0 });
        assert_eq!(i.param_index("lam"), Some(1));
    }

    #[test]
    fn pragma_for_unknown_param_rejected() {
        let err = info(
            "#pragma isl param nope 1.0\nvoid f(const float a[H][W], float b[H][W]) { }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown parameter"));
    }
}
