//! Versioned, zero-dependency on-disk persistence for pipeline artifacts.
//!
//! The flow-level artifact store makes warm work nearly free *within* one
//! process; this crate is what lets that warmth survive a restart. It is a
//! deliberately dumb layer: an atomic, corruption-tolerant
//! `(kind, key) → bytes` record file plus the little-endian
//! [`ByteWriter`]/[`ByteReader`] primitives the artifact codecs (which
//! live in `isl-hls`, next to the types they encode) are written with.
//! Nothing here knows what a calibration or a certificate is.
//!
//! # On-disk record format
//!
//! A store file is a fixed header followed by zero or more framed records
//! (all integers little-endian):
//!
//! ```text
//! file   := header record*
//! header := magic "ISLP"            4 bytes   (FILE_MAGIC)
//!           format_version: u32     container layout version (FORMAT_VERSION)
//!           app_version:    u64     artifact-codec version of the writer
//! record := rec_magic C0 DE 0D 0A   4 bytes   (REC_MAGIC, the resync marker)
//!           body_len:  u32          bytes of `body`
//!           body      := kind:    u8          artifact-kind discriminant
//!                        stamp:   u64         logical LRU access stamp
//!                        key_len: u32
//!                        key:     [u8; key_len]
//!                        value:   [u8; body_len - 13 - key_len]
//!           checksum:  u64          FNV-1a over `body`
//! ```
//!
//! # Versioning and invalidation
//!
//! Two versions gate a load, and **either mismatching invalidates the file
//! wholesale** (an empty store, never a partial one):
//!
//! * `format_version` — the container layout above, owned by this crate.
//! * `app_version` — the codec version of the layer that wrote the
//!   payloads, passed to [`DiskStore::open`]. The pipeline bumps it
//!   whenever any artifact encoding changes, so stale bytes are never
//!   half-decoded.
//!
//! Invalidation is deliberate and cheap: artifacts are caches of
//! deterministic computations, so the safe response to *any* doubt about
//! the bytes is to recompute cold.
//!
//! # Corruption tolerance
//!
//! [`load_bytes`] never panics on hostile input (the `isl-fuzz persist`
//! mode bit-flips real files through it). Each record is independently
//! checksummed and framed by a sync marker: a corrupt record is skipped,
//! counted in [`LoadReport::skipped_corrupt`], and decoding resynchronises
//! at the next marker — one flipped byte costs one record, not the file.
//! Payloads that pass the checksum but later fail their codec are handed
//! back via [`DiskStore::discard_corrupt`], which counts them the same way.
//!
//! # Publication and eviction
//!
//! [`DiskStore::flush`] writes the whole store to a sibling temp file and
//! atomically `rename`s it into place — readers observe the old file or
//! the new one, never a torn write. Within one version, an optional LRU
//! byte budget ([`DiskStore::with_byte_budget`]) evicts the
//! least-recently-stamped records at flush time until the encoded file
//! fits; stamps advance on insertion and on every [`DiskStore::lookup`]
//! hit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod store;

pub use bytes::{ByteReader, ByteWriter, DecodeError};
pub use store::{
    evict_lru, fnv1a, load_bytes, save_bytes, DiskStats, DiskStore, FlushReport, LoadReport,
    RawRecord, FILE_MAGIC, FORMAT_VERSION, RECORD_OVERHEAD, REC_MAGIC,
};
