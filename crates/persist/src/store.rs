//! The record file format and the mutable [`DiskStore`] over it.
//!
//! See the [crate-level documentation](crate) for the byte-level layout,
//! the versioning contract and the eviction policy. This module owns the
//! mechanics: checksummed framing, resynchronising corrupt-tolerant
//! decode, atomic publication and the LRU byte budget.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File magic: the first four bytes of every store file.
pub const FILE_MAGIC: [u8; 4] = *b"ISLP";

/// Container format version. Bumping it (a layout change in *this* module)
/// invalidates every existing store file wholesale.
pub const FORMAT_VERSION: u32 = 1;

/// Per-record sync marker. Decode resynchronises on this word after a
/// corrupt record, so one flipped byte costs one record, not the file.
pub const REC_MAGIC: [u8; 4] = *b"\xC0\xDE\x0D\x0A";

/// Fixed per-record framing overhead: magic + body length + checksum.
pub const RECORD_OVERHEAD: usize = 4 + 4 + 8;

const MAX_BODY: usize = 1 << 30;

/// FNV-1a over `bytes` — the per-record checksum. Stable, dependency-free
/// and byte-order-independent; corruption detection, not cryptography.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// One stored record: an opaque `(kind, key) → value` binding plus the
/// logical access stamp the LRU byte budget orders evictions by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    /// Artifact-kind discriminant (the codec layered on top assigns them).
    pub kind: u8,
    /// Logical access stamp: larger = more recently used.
    pub stamp: u64,
    /// Encoded content key.
    pub key: Vec<u8>,
    /// Encoded artifact payload.
    pub value: Vec<u8>,
}

impl RawRecord {
    /// Bytes this record occupies on disk, framing included.
    pub fn disk_size(&self) -> usize {
        RECORD_OVERHEAD + 1 + 8 + 4 + self.key.len() + self.value.len()
    }
}

/// What one [`load_bytes`]/[`DiskStore::open`] observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records that decoded cleanly (duplicate keys resolved last-wins).
    pub records: Vec<RawRecord>,
    /// Corrupt records skipped (bad magic runs, bad lengths, checksum
    /// mismatches). Never a panic: corruption degrades to a cold cache.
    pub skipped_corrupt: usize,
    /// Whether a version mismatch invalidated the file wholesale.
    pub invalidated: bool,
    /// Size of the file the records came from, bytes.
    pub bytes_on_disk: u64,
}

/// Encode a whole store file: header then every record, framed and
/// checksummed. The inverse of [`load_bytes`].
pub fn save_bytes(app_version: u64, records: &[RawRecord]) -> Vec<u8> {
    let total: usize = records.iter().map(RawRecord::disk_size).sum();
    let mut out = Vec::with_capacity(16 + total);
    out.extend_from_slice(&FILE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&app_version.to_le_bytes());
    for rec in records {
        let mut body = Vec::with_capacity(1 + 8 + 4 + rec.key.len() + rec.value.len());
        body.push(rec.kind);
        body.extend_from_slice(&rec.stamp.to_le_bytes());
        body.extend_from_slice(&(rec.key.len() as u32).to_le_bytes());
        body.extend_from_slice(&rec.key);
        body.extend_from_slice(&rec.value);
        out.extend_from_slice(&REC_MAGIC);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        let sum = fnv1a(&body);
        out.extend_from_slice(&body);
        out.extend_from_slice(&sum.to_le_bytes());
    }
    out
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    bytes.get(at..at + 8).map(|b| {
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    })
}

/// Scan forward from `from` for the next [`REC_MAGIC`], the resync point
/// after a corrupt record.
fn next_magic(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len().saturating_sub(REC_MAGIC.len() - 1))
        .find(|&i| bytes[i..i + 4] == REC_MAGIC)
}

/// Decode a store file image. **Never panics on hostile bytes** — the
/// persist fuzz mode bit-flips real files through here. Corrupt records
/// are skipped and counted; a header whose magic or version does not match
/// `app_version` yields an empty, `invalidated` report (the wholesale
/// invalidation contract).
pub fn load_bytes(bytes: &[u8], app_version: u64) -> LoadReport {
    let mut report = LoadReport {
        bytes_on_disk: bytes.len() as u64,
        ..LoadReport::default()
    };
    if bytes.len() < 16
        || bytes[..4] != FILE_MAGIC
        || read_u32(bytes, 4) != Some(FORMAT_VERSION)
        || read_u64(bytes, 8) != Some(app_version)
    {
        report.invalidated = true;
        return report;
    }
    let mut by_key: HashMap<(u8, Vec<u8>), usize> = HashMap::new();
    let mut pos = 16usize;
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_OVERHEAD || bytes[pos..pos + 4] != REC_MAGIC {
            // Not a record start: corruption (or trailing garbage). Count
            // one skip for the whole run and resync at the next marker.
            report.skipped_corrupt += 1;
            match next_magic(bytes, pos + 1) {
                Some(next) => {
                    pos = next;
                    continue;
                }
                None => break,
            }
        }
        let body_len = read_u32(bytes, pos + 4).unwrap_or(u32::MAX) as usize;
        let body_at = pos + 8;
        let ok = body_len <= MAX_BODY
            && body_at + body_len + 8 <= bytes.len()
            && read_u64(bytes, body_at + body_len)
                == Some(fnv1a(&bytes[body_at..body_at + body_len]));
        if !ok {
            report.skipped_corrupt += 1;
            match next_magic(bytes, pos + 1) {
                Some(next) => pos = next,
                None => break,
            }
            continue;
        }
        let body = &bytes[body_at..body_at + body_len];
        pos = body_at + body_len + 8;
        // Body layout: kind u8, stamp u64, key_len u32, key, value. The
        // checksum passed, so an inconsistent key_len still means a codec
        // mismatch — treat it as corruption, not a panic.
        if body.len() < 13 {
            report.skipped_corrupt += 1;
            continue;
        }
        let kind = body[0];
        let stamp = read_u64(body, 1).expect("13-byte minimum checked");
        let key_len = read_u32(body, 9).expect("13-byte minimum checked") as usize;
        if 13 + key_len > body.len() {
            report.skipped_corrupt += 1;
            continue;
        }
        let key = body[13..13 + key_len].to_vec();
        let value = body[13 + key_len..].to_vec();
        let rec = RawRecord { kind, stamp, key: key.clone(), value };
        match by_key.entry((kind, key)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                report.records[*e.get()] = rec;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(report.records.len());
                report.records.push(rec);
            }
        }
    }
    report
}

/// Drop least-recently-stamped records until the encoded file fits
/// `byte_budget` (header included). Returns how many records were evicted.
/// A budget smaller than the header alone evicts everything.
pub fn evict_lru(records: &mut Vec<RawRecord>, byte_budget: u64) -> usize {
    let mut total: u64 = 16 + records.iter().map(|r| r.disk_size() as u64).sum::<u64>();
    if total <= byte_budget {
        return 0;
    }
    let mut order: Vec<usize> = (0..records.len()).collect();
    order.sort_by_key(|&i| records[i].stamp);
    let mut drop_idx = Vec::new();
    for i in order {
        if total <= byte_budget {
            break;
        }
        total -= records[i].disk_size() as u64;
        drop_idx.push(i);
    }
    let evicted = drop_idx.len();
    drop_idx.sort_unstable_by(|a, b| b.cmp(a));
    for i in drop_idx {
        records.swap_remove(i);
    }
    evicted
}

/// Counters of one [`DiskStore`] — the disk tier's side of the pipeline's
/// hit/miss evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Lookups served from a loaded record.
    pub hits: u64,
    /// Lookups that found no record (the artifact must be built cold).
    pub misses: u64,
    /// Corrupt records skipped: framing/checksum failures at load plus
    /// records whose payload later failed to decode.
    pub skipped_corrupt: u64,
    /// Size of the store file at the last load or flush, bytes.
    pub bytes_on_disk: u64,
    /// Records currently held.
    pub records: u64,
    /// Records evicted by the LRU byte budget across all flushes.
    pub evicted: u64,
    /// Whether the on-disk file was invalidated wholesale by a version
    /// mismatch at open.
    pub invalidated: bool,
}

/// What one [`DiskStore::flush`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Records written.
    pub records: usize,
    /// Bytes written.
    pub bytes: u64,
    /// Records evicted by the byte budget before writing.
    pub evicted: usize,
    /// Whether anything was written at all (`false` = store was clean).
    pub wrote: bool,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<(u8, Vec<u8>), (u64, Vec<u8>)>,
    clock: u64,
    dirty: bool,
    evicted: u64,
}

/// A mutable, thread-safe `(kind, key) → value` store over one record
/// file: load at [`open`](DiskStore::open), mutate in memory, publish
/// atomically at [`flush`](DiskStore::flush).
///
/// The store is byte-oriented — it knows nothing about the artifacts
/// themselves. The pipeline layers codecs on top and owns the `kind`
/// discriminants and the `app_version` (its codec version).
#[derive(Debug)]
pub struct DiskStore {
    path: PathBuf,
    app_version: u64,
    byte_budget: Option<u64>,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    skipped: AtomicU64,
    bytes_on_disk: AtomicU64,
    invalidated: bool,
}

impl DiskStore {
    /// Open (or create) the store at `path` under codec version
    /// `app_version`, loading whatever survives the corruption checks. A
    /// missing file is an empty store; a version-mismatched file is an
    /// empty store with [`DiskStats::invalidated`] set; corrupt records
    /// are skipped and counted. None of these are errors — only real I/O
    /// failures (permissions, unreadable directory) are.
    ///
    /// # Errors
    ///
    /// [`io::Error`] when the file exists but cannot be read.
    pub fn open(path: impl AsRef<Path>, app_version: u64) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let report = match std::fs::read(&path) {
            Ok(bytes) => load_bytes(&bytes, app_version),
            Err(e) if e.kind() == io::ErrorKind::NotFound => LoadReport::default(),
            Err(e) => return Err(e),
        };
        let mut inner = Inner::default();
        for rec in &report.records {
            inner.clock = inner.clock.max(rec.stamp + 1);
        }
        for rec in report.records {
            inner
                .map
                .insert((rec.kind, rec.key), (rec.stamp, rec.value));
        }
        Ok(DiskStore {
            path,
            app_version,
            byte_budget: None,
            inner: Mutex::new(inner),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            skipped: AtomicU64::new(report.skipped_corrupt as u64),
            bytes_on_disk: AtomicU64::new(report.bytes_on_disk),
            invalidated: report.invalidated,
        })
    }

    /// Cap the encoded file size; [`flush`](DiskStore::flush) evicts
    /// least-recently-used records down to the budget before writing.
    pub fn with_byte_budget(mut self, byte_budget: u64) -> Self {
        self.byte_budget = Some(byte_budget);
        self
    }

    /// The file this store publishes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The codec version the store was opened under.
    pub fn app_version(&self) -> u64 {
        self.app_version
    }

    /// Look `(kind, key)` up, refreshing its LRU stamp on a hit. Counts a
    /// hit or a miss either way.
    pub fn lookup(&self, kind: u8, key: &[u8]) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().expect("disk store");
        let clock = inner.clock;
        let found = match inner.map.get_mut(&(kind, key.to_vec())) {
            Some((stamp, value)) => {
                *stamp = clock;
                Some(value.clone())
            }
            None => None,
        };
        match found {
            Some(value) => {
                inner.clock += 1;
                inner.dirty = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Bind `(kind, key)` to `value` with a fresh stamp (replacing any
    /// previous binding) and mark the store dirty.
    pub fn insert(&self, kind: u8, key: Vec<u8>, value: Vec<u8>) {
        let mut inner = self.inner.lock().expect("disk store");
        let stamp = inner.clock;
        inner.clock += 1;
        inner.map.insert((kind, key), (stamp, value));
        inner.dirty = true;
    }

    /// Drop a record whose payload failed to decode, counting it as
    /// corrupt: the caller falls back to a cold build and the bad bytes
    /// are not republished at the next flush.
    pub fn discard_corrupt(&self, kind: u8, key: &[u8]) {
        let mut inner = self.inner.lock().expect("disk store");
        if inner.map.remove(&(kind, key.to_vec())).is_some() {
            inner.dirty = true;
        }
        self.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether `(kind, key)` is bound, without touching stamps or
    /// counters — a neutral probe for write-if-absent sync paths.
    pub fn contains(&self, kind: u8, key: &[u8]) -> bool {
        self.inner
            .lock()
            .expect("disk store")
            .map
            .contains_key(&(kind, key.to_vec()))
    }

    /// Every `(key, value)` of `kind`, sorted by key, without touching
    /// stamps or counters — the persistence layer's warm-open enumeration
    /// (loaded records are neither hits nor misses until requested).
    pub fn entries_of_kind(&self, kind: u8) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.lock().expect("disk store");
        let mut out: Vec<_> = inner
            .map
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|((_, key), (_, value))| (key.clone(), value.clone()))
            .collect();
        drop(inner);
        out.sort();
        out
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("disk store").map.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether an in-memory mutation has not been flushed yet.
    pub fn is_dirty(&self) -> bool {
        self.inner.lock().expect("disk store").dirty
    }

    /// Publish the current state atomically: encode every record, apply
    /// the LRU byte budget, write to a sibling temp file and `rename` it
    /// over `path`. A clean store writes nothing. Readers never observe a
    /// partial file — they see the old store or the new one.
    ///
    /// # Errors
    ///
    /// [`io::Error`] from the temp write, sync or rename; the previous
    /// file is untouched on failure.
    pub fn flush(&self) -> io::Result<FlushReport> {
        let mut inner = self.inner.lock().expect("disk store");
        if !inner.dirty {
            return Ok(FlushReport::default());
        }
        let mut records: Vec<RawRecord> = inner
            .map
            .iter()
            .map(|((kind, key), (stamp, value))| RawRecord {
                kind: *kind,
                stamp: *stamp,
                key: key.clone(),
                value: value.clone(),
            })
            .collect();
        // Deterministic record order (by kind, then key) so identical
        // stores produce identical files.
        records.sort_by(|a, b| (a.kind, &a.key).cmp(&(b.kind, &b.key)));
        let evicted = match self.byte_budget {
            Some(budget) => evict_lru(&mut records, budget),
            None => 0,
        };
        if evicted > 0 {
            let keep: std::collections::HashSet<(u8, &[u8])> = records
                .iter()
                .map(|r| (r.kind, r.key.as_slice()))
                .collect();
            inner
                .map
                .retain(|(kind, key), _| keep.contains(&(*kind, key.as_slice())));
            inner.evicted += evicted as u64;
        }
        let bytes = save_bytes(self.app_version, &records);
        let tmp = self.path.with_extension(format!("tmp.{}", std::process::id()));
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&tmp, &bytes)?;
        let result = std::fs::rename(&tmp, &self.path);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result?;
        inner.dirty = false;
        self.bytes_on_disk.store(bytes.len() as u64, Ordering::Relaxed);
        Ok(FlushReport {
            records: records.len(),
            bytes: bytes.len() as u64,
            evicted,
            wrote: true,
        })
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> DiskStats {
        let inner = self.inner.lock().expect("disk store");
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            skipped_corrupt: self.skipped.load(Ordering::Relaxed),
            bytes_on_disk: self.bytes_on_disk.load(Ordering::Relaxed),
            records: inner.map.len() as u64,
            evicted: inner.evicted,
            invalidated: self.invalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: u8, stamp: u64, key: &[u8], value: &[u8]) -> RawRecord {
        RawRecord {
            kind,
            stamp,
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn file_round_trip() {
        let records = vec![
            rec(1, 0, b"alpha", b"payload-a"),
            rec(2, 1, b"beta", &[0u8; 100]),
            rec(1, 2, b"", b""),
        ];
        let bytes = save_bytes(7, &records);
        let report = load_bytes(&bytes, 7);
        assert_eq!(report.records, records);
        assert_eq!(report.skipped_corrupt, 0);
        assert!(!report.invalidated);
        assert_eq!(report.bytes_on_disk, bytes.len() as u64);
    }

    #[test]
    fn version_bump_invalidates_wholesale() {
        let bytes = save_bytes(7, &[rec(1, 0, b"k", b"v")]);
        let report = load_bytes(&bytes, 8);
        assert!(report.invalidated);
        assert!(report.records.is_empty());
        assert_eq!(report.skipped_corrupt, 0);
    }

    #[test]
    fn every_single_byte_flip_is_survivable() {
        let records = vec![
            rec(1, 0, b"alpha", b"payload-a"),
            rec(2, 1, b"beta", b"payload-b"),
            rec(3, 2, b"gamma", b"payload-c"),
        ];
        let clean = save_bytes(3, &records);
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x41;
            let report = load_bytes(&bytes, 3); // must not panic
            if report.invalidated {
                assert!(i < 16, "only a header flip may invalidate (flip at {i})");
                continue;
            }
            // Whatever survives must be one of the original records.
            for r in &report.records {
                assert!(
                    records.contains(r) || report.skipped_corrupt > 0,
                    "flip at {i} fabricated a record"
                );
            }
            assert!(
                report.records.len() + report.skipped_corrupt >= records.len() - 1,
                "flip at {i} lost more than one record silently"
            );
        }
    }

    #[test]
    fn corrupt_middle_record_is_skipped_and_counted() {
        let records = vec![
            rec(1, 0, b"first", b"aaaa"),
            rec(1, 1, b"second", b"bbbb"),
            rec(1, 2, b"third", b"cccc"),
        ];
        let mut bytes = save_bytes(1, &records);
        // Flip one payload byte of the middle record (its checksum breaks).
        let mid = 16 + records[0].disk_size() + RECORD_OVERHEAD + 14;
        bytes[mid] ^= 0xFF;
        let report = load_bytes(&bytes, 1);
        assert_eq!(report.skipped_corrupt, 1);
        assert_eq!(report.records.len(), 2);
        assert!(report.records.contains(&records[0]));
        assert!(report.records.contains(&records[2]));
    }

    #[test]
    fn truncated_file_keeps_prefix() {
        let records = vec![rec(1, 0, b"keep", b"x"), rec(1, 1, b"lost", b"y")];
        let bytes = save_bytes(1, &records);
        let cut = &bytes[..bytes.len() - 5];
        let report = load_bytes(cut, 1);
        assert_eq!(report.records, vec![records[0].clone()]);
        assert_eq!(report.skipped_corrupt, 1);
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let records = vec![rec(1, 0, b"k", b"old"), rec(1, 5, b"k", b"new")];
        let bytes = save_bytes(1, &records);
        let report = load_bytes(&bytes, 1);
        assert_eq!(report.records, vec![rec(1, 5, b"k", b"new")]);
    }

    #[test]
    fn lru_eviction_drops_oldest_stamps_first() {
        let mut records = vec![
            rec(1, 10, b"newest", &[0u8; 64]),
            rec(1, 1, b"oldest", &[0u8; 64]),
            rec(1, 5, b"middle", &[0u8; 64]),
        ];
        let full: u64 = 16 + records.iter().map(|r| r.disk_size() as u64).sum::<u64>();
        let one = records[0].disk_size() as u64;
        let evicted = evict_lru(&mut records, full - one);
        assert_eq!(evicted, 1);
        assert!(records.iter().all(|r| r.key != b"oldest"));
        let evicted = evict_lru(&mut records, 0);
        assert_eq!(evicted, 2);
        assert!(records.is_empty());
    }

    #[test]
    fn disk_store_end_to_end() {
        let dir = std::env::temp_dir().join(format!("isl-persist-test-{}", std::process::id()));
        let path = dir.join("store.islstore");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&path);

        let store = DiskStore::open(&path, 9).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.lookup(1, b"k"), None);
        store.insert(1, b"k".to_vec(), b"v".to_vec());
        let flushed = store.flush().unwrap();
        assert!(flushed.wrote);
        assert_eq!(flushed.records, 1);
        // Clean flush is a no-op.
        assert!(!store.flush().unwrap().wrote);

        let reopened = DiskStore::open(&path, 9).unwrap();
        assert_eq!(reopened.lookup(1, b"k"), Some(b"v".to_vec()));
        let stats = reopened.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert!(stats.bytes_on_disk > 0);

        // Version bump: wholesale invalidation, not an error.
        let bumped = DiskStore::open(&path, 10).unwrap();
        assert!(bumped.is_empty());
        assert!(bumped.stats().invalidated);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discard_corrupt_counts_and_removes() {
        let dir = std::env::temp_dir().join(format!("isl-persist-disc-{}", std::process::id()));
        let path = dir.join("store.islstore");
        std::fs::create_dir_all(&dir).unwrap();
        let _ = std::fs::remove_file(&path);
        let store = DiskStore::open(&path, 1).unwrap();
        store.insert(4, b"bad".to_vec(), b"undecodable".to_vec());
        store.discard_corrupt(4, b"bad");
        assert_eq!(store.lookup(4, b"bad"), None);
        assert_eq!(store.stats().skipped_corrupt, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
