//! Little-endian byte-level encoding primitives shared by every artifact
//! codec layered on this crate.
//!
//! The writer is infallible (it grows a `Vec<u8>`); the reader is total —
//! every accessor returns [`DecodeError`] instead of panicking, which is
//! what lets a corrupted record degrade to a counted skip upstream.

use std::error::Error;
use std::fmt;

/// A decode failure: truncated input, malformed length, invalid UTF-8 or
/// trailing garbage. Carries a human-readable description of what the
/// reader expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl Error for DecodeError {}

fn short(what: &str, need: usize, have: usize) -> DecodeError {
    DecodeError(format!("truncated {what}: need {need} bytes, have {have}"))
}

/// An append-only little-endian encoder. All integers are fixed-width LE;
/// strings and byte blobs are length-prefixed with a `u32`.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` by its IEEE-754 bit pattern — bit-exact round-trip,
    /// NaN payloads included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `usize` as a `u64` (the on-disk format is
    /// pointer-width-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes with a `u32` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Append a string as length-prefixed UTF-8.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Append raw bytes with **no** length prefix (the caller frames them).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// A cursor-style little-endian decoder over a byte slice. The exact
/// inverse of [`ByteWriter`]; every accessor fails soft with
/// [`DecodeError`].
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(short(what, n, self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Read a `bool`; any byte other than 0 or 1 is a decode error (it
    /// means the record bytes are not what the codec wrote).
    pub fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a `usize` written by [`ByteWriter::put_usize`]; fails on values
    /// that do not fit the host's pointer width.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| DecodeError(format!("usize out of range: {v}")))
    }

    /// Read a `u32`-length-prefixed byte blob.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n, "bytes")
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|e| DecodeError(format!("invalid utf-8: {e}")))
    }

    /// Assert the reader consumed everything — trailing bytes mean the
    /// record was written by a different (newer) codec and must not be
    /// silently accepted.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError(format!(
                "{} trailing bytes after record",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_usize(123_456);
        w.put_bytes(b"blob");
        w.put_str("héllo");
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.bytes().unwrap(), b"blob");
        assert_eq!(r.str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_reads_fail_soft() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn bogus_length_prefix_fails_soft() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // length prefix far beyond the buffer
        let bytes = w.into_inner();
        assert!(ByteReader::new(&bytes).bytes().is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_inner();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        r.expect_end().unwrap();
        let r2 = ByteReader::new(&bytes);
        assert!(r2.expect_end().is_err());
    }
}
