//! The two cooperating abstract domains: raw-word **intervals** and
//! **known bits**, plus the per-operation transfer functions that mirror
//! the [`FixedFormat`] datapath.
//!
//! # Soundness contract
//!
//! Every transfer function over-approximates the concrete operation from
//! [`FixedFormat::apply_unary`] / [`FixedFormat::apply_binary`] /
//! [`FixedFormat::quantize`]: if `a ∈ γ(A)` and `b ∈ γ(B)` then
//! `apply(op, a, b) ∈ γ(transfer(op, A, B))`, where `γ` is the set of raw
//! words inside the interval whose bits agree with the known-bits mask.
//! The interval arithmetic is done on `i128` endpoints and funnelled
//! through [`FixedFormat::saturate_wide`] — the *same* widening and the
//! *same* clamp the datapath executes, never a reimplementation — which is
//! what makes endpoint mapping exact for the monotone operations
//! (add/sub/neg, shift-truncation, [`isl_fpga::isqrt_wide`]) and
//! corner-enumeration sound for the bilinear/biconvex ones (mul, and div
//! split per divisor sign region, where truncated division is monotone).
//!
//! Alongside the post-saturation interval every value carries a
//! `may_saturate` flag: *true* iff some point of the abstract
//! pre-saturation `i128` interval falls outside the rails
//! ([`FixedFormat::saturates_wide`]). A program whose every instruction has
//! `may_saturate == false` is **proven saturation-free** for that format —
//! the certificate `search_format` uses to skip doomed probes.

use isl_fpga::{isqrt_wide, FixedFormat};
use isl_ir::{BinaryOp, UnaryOp};

/// A closed interval `[lo, hi]` of raw fixed-point words (post-saturation,
/// so both endpoints are representable `i64` words of the format under
/// analysis). Empty intervals do not exist: construction requires
/// `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordRange {
    /// Smallest word in the interval.
    pub lo: i64,
    /// Largest word in the interval.
    pub hi: i64,
}

impl WordRange {
    /// `[lo, hi]`, panicking on an empty interval — abstract states are
    /// never empty (the analyses have no unreachable-code paths).
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty WordRange [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The singleton interval `[w, w]`.
    pub fn constant(w: i64) -> Self {
        Self { lo: w, hi: w }
    }

    /// The full representable range of `fmt`: `[min_raw, max_raw]`. This is
    /// the sound input assumption for any stimulus produced by
    /// [`FixedFormat::quantize`] or by the datapath itself (golden-vector
    /// replay, frame loads).
    pub fn full(fmt: FixedFormat) -> Self {
        Self {
            lo: fmt.min_raw(),
            hi: fmt.max_raw(),
        }
    }

    /// Does the interval contain the word `w`?
    pub fn contains(&self, w: i64) -> bool {
        self.lo <= w && w <= self.hi
    }

    /// Smallest interval containing both `self` and `other`.
    pub fn join(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection with the rails of `fmt` (used to sanitise caller-given
    /// input boxes; panics if disjoint, which no in-format stimulus is).
    pub fn clamp_to(&self, fmt: FixedFormat) -> Self {
        Self::new(self.lo.max(fmt.min_raw()), self.hi.min(fmt.max_raw()))
    }
}

/// Bit-level knowledge about a raw word, in two's complement: bit `i` is
/// **known** iff `mask` has bit `i` set, and then its value is bit `i` of
/// `value`. Invariant: `value & !mask == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Which bits are known.
    pub mask: u64,
    /// The values of the known bits (zero on unknown positions).
    pub value: u64,
}

impl KnownBits {
    /// Nothing known.
    pub fn unknown() -> Self {
        Self { mask: 0, value: 0 }
    }

    /// Every bit known: the constant `w`.
    pub fn constant(w: i64) -> Self {
        Self {
            mask: !0,
            value: w as u64,
        }
    }

    /// Is `w` consistent with the known bits?
    pub fn admits(&self, w: i64) -> bool {
        (w as u64) & self.mask == self.value
    }

    /// Bits known to agree in *both* (set intersection of the two facts'
    /// concretisations needs bits known on both sides with equal values).
    pub fn join(&self, other: &Self) -> Self {
        let mask = self.mask & other.mask & !(self.value ^ other.value);
        Self {
            mask,
            value: self.value & mask,
        }
    }

    /// The bits every word of `[lo, hi]` shares: the common two's-complement
    /// high-order prefix of the endpoints. (All words in between differ from
    /// the endpoints only below the highest differing bit.)
    pub fn from_range(lo: i64, hi: i64) -> Self {
        let x = (lo ^ hi) as u64;
        if x == 0 {
            return Self::constant(lo);
        }
        let unknown = 64 - x.leading_zeros();
        if unknown >= 64 {
            return Self::unknown();
        }
        let mask = !0u64 << unknown;
        Self {
            mask,
            value: (lo as u64) & mask,
        }
    }

    /// Bit knowledge of a two-valued set `{a, b}`: exactly the bit
    /// positions where the two words agree.
    pub fn from_pair(a: i64, b: i64) -> Self {
        let mask = !((a ^ b) as u64);
        Self {
            mask,
            value: (a as u64) & mask,
        }
    }
}

/// The abstract value attached to one instruction: the reduced product of
/// the interval and known-bits domains, plus the saturation verdict for
/// *this* instruction's own widened intermediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbstractValue {
    /// Post-saturation interval containing every concrete result word.
    pub range: WordRange,
    /// Bits provably identical across every concrete result word.
    pub bits: KnownBits,
    /// `true` iff the *pre-saturation* widened (`i128`) result interval of
    /// this instruction leaves the rails — i.e. the instruction may clamp.
    /// `false` is a proof of saturation-freedom for this instruction.
    pub may_saturate: bool,
}

impl AbstractValue {
    /// The singleton abstraction of a known word (no saturation recorded:
    /// constants are materialised pre-clamped by the compiler).
    pub fn constant(w: i64) -> Self {
        Self {
            range: WordRange::constant(w),
            bits: KnownBits::constant(w),
            may_saturate: false,
        }
    }

    /// Abstraction of a caller-supplied input interval (clamped to the
    /// rails of `fmt`; inputs are in-format by construction).
    pub fn input(fmt: FixedFormat, range: WordRange) -> Self {
        let range = range.clamp_to(fmt);
        Self {
            range,
            bits: KnownBits::from_range(range.lo, range.hi),
            may_saturate: false,
        }
    }

    /// Does the abstraction admit the concrete word `w`? (Membership in
    /// the reduced product: interval *and* bit consistency.)
    pub fn contains(&self, w: i64) -> bool {
        self.range.contains(w) && self.bits.admits(w)
    }

    /// Are all bits selected by `mask` known to be `0`? Then a
    /// `StuckAt0 { mask }` fault on this value is provably **silent**: the
    /// fault cannot change any word this instruction produces.
    pub fn always_zero(&self, mask: i64) -> bool {
        let m = mask as u64;
        self.bits.mask & m == m && self.bits.value & m == 0
    }

    /// Are all bits selected by `mask` known to be `1`? Then a
    /// `StuckAt1 { mask }` fault on this value is provably silent.
    pub fn always_one(&self, mask: i64) -> bool {
        let m = mask as u64;
        self.bits.mask & m == m && self.bits.value & m == m
    }

    /// Join of two abstractions (used for an undecidable `Select`).
    pub fn join(&self, other: &Self) -> Self {
        Self {
            range: self.range.join(&other.range),
            bits: self.bits.join(&other.bits),
            may_saturate: false,
        }
    }

    /// Build a post-saturation abstraction from a widened pre-saturation
    /// endpoint interval `[lo, hi]` (in `i128`), recording whether any
    /// point of it would clamp. This is the single funnel every arithmetic
    /// transfer result passes through — the abstract twin of
    /// [`FixedFormat::saturate_wide`].
    fn saturate_wide(fmt: FixedFormat, lo: i128, hi: i128) -> Self {
        debug_assert!(lo <= hi);
        let may_saturate = fmt.saturates_wide(lo) || fmt.saturates_wide(hi);
        let (lo, hi) = (fmt.saturate_wide(lo), fmt.saturate_wide(hi));
        Self {
            range: WordRange::new(lo, hi),
            bits: KnownBits::from_range(lo, hi),
            may_saturate,
        }
    }
}

/// Transfer function for [`FixedFormat::apply_unary`].
pub(crate) fn transfer_unary(fmt: FixedFormat, op: UnaryOp, a: &AbstractValue) -> AbstractValue {
    let (lo, hi) = (a.range.lo as i128, a.range.hi as i128);
    match op {
        // Negation reverses and negates the endpoints (monotone decreasing).
        UnaryOp::Neg => AbstractValue::saturate_wide(fmt, -hi, -lo),
        UnaryOp::Abs => {
            if lo >= 0 {
                AbstractValue::saturate_wide(fmt, lo, hi)
            } else if hi <= 0 {
                AbstractValue::saturate_wide(fmt, -hi, -lo)
            } else {
                // Mixed sign: |x| spans [0, max(-lo, hi)].
                AbstractValue::saturate_wide(fmt, 0, (-lo).max(hi))
            }
        }
        UnaryOp::Sqrt => {
            // apply_unary: a <= 0 → 0, else isqrt(a << frac), saturated.
            if hi <= 0 {
                return AbstractValue::constant(0);
            }
            let r_hi = isqrt_wide(hi << fmt.frac);
            let r_lo = if lo <= 0 { 0 } else { isqrt_wide(lo << fmt.frac) };
            AbstractValue::saturate_wide(fmt, r_lo, r_hi)
        }
    }
}

/// Transfer function for [`FixedFormat::apply_binary`].
pub(crate) fn transfer_binary(
    fmt: FixedFormat,
    op: BinaryOp,
    a: &AbstractValue,
    b: &AbstractValue,
) -> AbstractValue {
    let (alo, ahi) = (a.range.lo as i128, a.range.hi as i128);
    let (blo, bhi) = (b.range.lo as i128, b.range.hi as i128);
    match op {
        BinaryOp::Add => AbstractValue::saturate_wide(fmt, alo + blo, ahi + bhi),
        BinaryOp::Sub => AbstractValue::saturate_wide(fmt, alo - bhi, ahi - blo),
        BinaryOp::Mul => {
            // (a*b) >> frac: the product is bilinear, so its extrema over a
            // box are at the corners; the arithmetic right shift (floor
            // division by 2^frac) is monotone, so shifting the corner
            // products preserves min/max.
            let corners = [alo * blo, alo * bhi, ahi * blo, ahi * bhi];
            let lo = corners.iter().copied().min().unwrap() >> fmt.frac;
            let hi = corners.iter().copied().max().unwrap() >> fmt.frac;
            AbstractValue::saturate_wide(fmt, lo, hi)
        }
        BinaryOp::Div => {
            // (a << frac) / b, with b == 0 → 0. Truncated division is
            // monotone in each argument on either side of b = 0, so the
            // extrema over the box are at corners of the two sign regions
            // of the divisor; a divisor range touching 0 contributes the
            // exact word 0.
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            let mut cover = |v: i128| {
                lo = lo.min(v);
                hi = hi.max(v);
            };
            let q = |x: i128, y: i128| (x << fmt.frac) / y;
            if blo <= -1 {
                let (ylo, yhi) = (blo, bhi.min(-1));
                for x in [alo, ahi] {
                    for y in [ylo, yhi] {
                        cover(q(x, y));
                    }
                }
            }
            if bhi >= 1 {
                let (ylo, yhi) = (blo.max(1), bhi);
                for x in [alo, ahi] {
                    for y in [ylo, yhi] {
                        cover(q(x, y));
                    }
                }
            }
            if blo <= 0 && bhi >= 0 {
                cover(0);
            }
            AbstractValue::saturate_wide(fmt, lo, hi)
        }
        // Min/Max act on already-saturated words: no widening, no clamp.
        BinaryOp::Min => {
            let (lo, hi) = (a.range.lo.min(b.range.lo), a.range.hi.min(b.range.hi));
            AbstractValue {
                range: WordRange::new(lo, hi),
                bits: KnownBits::from_range(lo, hi),
                may_saturate: false,
            }
        }
        BinaryOp::Max => {
            let (lo, hi) = (a.range.lo.max(b.range.lo), a.range.hi.max(b.range.hi));
            AbstractValue {
                range: WordRange::new(lo, hi),
                bits: KnownBits::from_range(lo, hi),
                may_saturate: false,
            }
        }
        BinaryOp::Lt => comparison(fmt, decide(a, b, |x, y| x < y)),
        BinaryOp::Le => comparison(fmt, decide(a, b, |x, y| x <= y)),
        BinaryOp::Gt => comparison(fmt, decide(a, b, |x, y| x > y)),
        BinaryOp::Ge => comparison(fmt, decide(a, b, |x, y| x >= y)),
    }
}

/// Decide a comparison over two intervals: `Some(v)` when every pair of
/// concrete words agrees on the verdict `v`, `None` otherwise. The
/// predicate is evaluated on the decisive endpoint pairs (all four
/// comparisons are monotone, so "true on the adversarial corner" decides).
fn decide(a: &AbstractValue, b: &AbstractValue, cmp: fn(i64, i64) -> bool) -> Option<bool> {
    // The comparison holds for ALL pairs iff it holds on the corner where
    // it is hardest (max a vs min b for `<`-like, symmetric for `>`-like);
    // it holds for NO pair iff its negation holds for all pairs. Testing
    // all four corners covers every one of the eight cases uniformly.
    let corners = [
        (a.range.lo, b.range.lo),
        (a.range.lo, b.range.hi),
        (a.range.hi, b.range.lo),
        (a.range.hi, b.range.hi),
    ];
    let first = cmp(corners[0].0, corners[0].1);
    corners[1..]
        .iter()
        .all(|&(x, y)| cmp(x, y) == first)
        .then_some(first)
}

/// Abstraction of a comparison result: `one_raw()` or `0`, or the
/// two-valued set when undecided. `one_raw` itself saturates in formats
/// with `frac >= width - 1`, which the flag must report.
fn comparison(fmt: FixedFormat, verdict: Option<bool>) -> AbstractValue {
    let one = fmt.one_raw();
    let one_saturates = fmt.saturates_wide(1i128 << fmt.frac);
    match verdict {
        Some(false) => AbstractValue::constant(0),
        Some(true) => AbstractValue {
            range: WordRange::constant(one),
            bits: KnownBits::constant(one),
            may_saturate: one_saturates,
        },
        None => AbstractValue {
            range: WordRange::new(0.min(one), 0.max(one)),
            bits: KnownBits::from_pair(0, one),
            may_saturate: one_saturates,
        },
    }
}

/// Transfer function for `Select { c, t, e }` (`c != 0 ? t : e`): branch
/// refinement when the condition is decided, join otherwise.
pub(crate) fn transfer_select(
    c: &AbstractValue,
    t: &AbstractValue,
    e: &AbstractValue,
) -> AbstractValue {
    let definitely_nonzero =
        c.range.lo > 0 || c.range.hi < 0 || (c.bits.value & c.bits.mask) != 0;
    let definitely_zero = c.range.lo == 0 && c.range.hi == 0;
    if definitely_nonzero {
        *t
    } else if definitely_zero {
        *e
    } else {
        t.join(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(fmt: FixedFormat, lo: i64, hi: i64) -> AbstractValue {
        AbstractValue::input(fmt, WordRange::new(lo, hi))
    }

    /// Exhaustive soundness of every binary transfer over a small box in a
    /// narrow format: the abstraction of the box contains every concrete
    /// `apply_binary` result, and `may_saturate == false` implies no
    /// concrete evaluation clamps.
    #[test]
    fn binary_transfers_contain_concrete_results_exhaustively() {
        let fmt = FixedFormat::new(8, 3);
        let ops = [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Min,
            BinaryOp::Max,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
        ];
        let boxes = [(-128i64, -3i64), (-5, 7), (0, 0), (1, 19), (120, 127), (-128, 127)];
        for op in ops {
            for (alo, ahi) in boxes {
                for (blo, bhi) in boxes {
                    let av = val(fmt, alo, ahi);
                    let bv = val(fmt, blo, bhi);
                    let r = transfer_binary(fmt, op, &av, &bv);
                    for a in alo..=ahi {
                        for b in blo..=bhi {
                            let c = fmt.apply_binary(op, a, b);
                            assert!(
                                r.contains(c),
                                "{op:?} [{alo},{ahi}]x[{blo},{bhi}]: {c} not in {r:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unary_transfers_contain_concrete_results_exhaustively() {
        let fmt = FixedFormat::new(8, 3);
        for op in [UnaryOp::Neg, UnaryOp::Abs, UnaryOp::Sqrt] {
            for (lo, hi) in [(-128i64, -1i64), (-4, 9), (0, 127), (-128, 127), (55, 55)] {
                let av = val(fmt, lo, hi);
                let r = transfer_unary(fmt, op, &av);
                for a in lo..=hi {
                    let c = fmt.apply_unary(op, a);
                    assert!(r.contains(c), "{op:?} [{lo},{hi}]: {c} not in {r:?}");
                }
            }
        }
    }

    /// `may_saturate == false` is a proof: re-check against the datapath by
    /// spotting that no concrete add in a provably-safe box clamps.
    #[test]
    fn saturation_freedom_is_sound_for_add() {
        let fmt = FixedFormat::new(8, 3);
        let a = val(fmt, -30, 30);
        let r = transfer_binary(fmt, BinaryOp::Add, &a, &a);
        assert!(!r.may_saturate);
        let wide = val(fmt, 100, 127);
        let r2 = transfer_binary(fmt, BinaryOp::Add, &wide, &wide);
        assert!(r2.may_saturate, "100+100 exceeds the 8-bit rail 127");
    }

    #[test]
    fn known_bits_from_range_and_pair() {
        let kb = KnownBits::from_range(0b1010_0000, 0b1010_1111);
        assert!(kb.admits(0b1010_0110));
        assert!(!kb.admits(0b1110_0110));
        let two = KnownBits::from_pair(0, 8);
        assert!(two.admits(0) && two.admits(8) && !two.admits(4));
        // Mixed-sign range: sign bit unknown, nothing known.
        assert_eq!(KnownBits::from_range(-1, 0).mask, 0);
    }

    #[test]
    fn select_refines_on_decided_conditions() {
        let fmt = FixedFormat::new(16, 8);
        let t = AbstractValue::constant(3);
        let e = AbstractValue::constant(9);
        let on = val(fmt, 1, 40);
        let off = AbstractValue::constant(0);
        let dunno = val(fmt, -1, 1);
        assert_eq!(transfer_select(&on, &t, &e), t);
        assert_eq!(transfer_select(&off, &t, &e), e);
        let j = transfer_select(&dunno, &t, &e);
        assert!(j.contains(3) && j.contains(9));
    }

    #[test]
    fn stuck_at_silence_predicates() {
        let v = AbstractValue::constant(0b1100);
        assert!(v.always_zero(0b0011));
        assert!(v.always_one(0b1100));
        assert!(!v.always_zero(0b0100));
        assert!(!v.always_one(0b0010));
        let unknown = AbstractValue::input(FixedFormat::new(18, 10), WordRange::new(-5, 5));
        assert!(!unknown.always_zero(1));
    }
}
