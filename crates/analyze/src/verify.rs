//! The **bytecode verifier**: structural soundness checks over every
//! program form the compiler emits, run as a debug assertion after each
//! compile (via [`crate::install_debug_verifier`]) and as a standing CI
//! gate over the fuzz corpus (`isl-fuzz analyze`).
//!
//! For **SSA programs** ([`Instr`]/[`QInstr`] with instruction-index
//! operands) the verifier checks:
//!
//! * topological order — every operand names an earlier instruction;
//! * root validity — every root indexes into the program;
//! * **CSE congruence** — no two instructions are structurally identical
//!   (constants keyed by bit pattern for `f64`, by raw word for quantised
//!   code: the compiler's value-numbering contract);
//! * **DCE soundness** — every instruction is reachable from some root
//!   (multi-root dead-code elimination left nothing dead, and removed
//!   nothing live, since operands resolve).
//!
//! For **slot programs** (the cone forms, post linear-scan allocation) the
//! verifier first lifts the program back to SSA while checking
//! def-before-use, destination/operand aliasing, interference-freedom of
//! slot reuse, and slot-count tightness (see
//! [`crate::program::reconstruct_ssa`]), then checks the capture/retire
//! plumbing (`outputs[k].reg == dst[capture[k]]`, retire a permutation in
//! non-decreasing capture order) and re-runs the SSA checks on the lifted
//! program with the capture points as roots.

use std::collections::HashSet;
use std::fmt;

use isl_sim::{
    CompiledCone, CompiledKernel, Instr, QInstr, QuantizedCone, QuantizedKernel, QuantizedStep,
    Reg,
};

use crate::program::{decode, decode_q, reconstruct_ssa, Decoded};

/// A verifier finding: which instruction (when attributable) violated
/// which contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending instruction index, when the violation is per-instruction.
    pub instr: Option<usize>,
    /// Human-readable description of the violated contract.
    pub what: String,
}

impl VerifyError {
    pub(crate) fn new(instr: Option<usize>, what: String) -> Self {
        Self { instr, what }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.instr {
            Some(i) => write!(f, "instruction {i}: {}", self.what),
            None => f.write_str(&self.what),
        }
    }
}

impl std::error::Error for VerifyError {}

/// SSA checks shared by every program form (see the module docs).
fn check_ssa(code: &[Decoded], roots: &[usize]) -> Result<(), VerifyError> {
    let n = code.len();
    for (i, d) in code.iter().enumerate() {
        for &a in d.operands() {
            if a as usize >= i {
                return Err(VerifyError::new(
                    Some(i),
                    format!("operand {a} does not precede its use (SSA order violation)"),
                ));
            }
        }
    }
    for &r in roots {
        if r >= n {
            return Err(VerifyError::new(
                None,
                format!("root {r} out of range (program has {n} instructions)"),
            ));
        }
    }
    // CSE congruence: structural value numbering must have interned every
    // (op, operands) pair exactly once.
    let mut seen: HashSet<Decoded> = HashSet::with_capacity(n);
    for (i, d) in code.iter().enumerate() {
        if !seen.insert(*d) {
            return Err(VerifyError::new(
                Some(i),
                format!("structural duplicate of an earlier instruction ({:?}) — CSE missed it", d.op),
            ));
        }
    }
    // DCE soundness: everything reachable from the roots (and nothing
    // else — unreachable instructions are dead code DCE failed to remove).
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = roots.to_vec();
    while let Some(v) = stack.pop() {
        if std::mem::replace(&mut live[v], true) {
            continue;
        }
        stack.extend(code[v].operands().iter().map(|&a| a as usize));
    }
    if let Some(dead) = live.iter().position(|l| !l) {
        return Err(VerifyError::new(
            Some(dead),
            "unreachable from every root (dead code survived multi-root DCE)".into(),
        ));
    }
    Ok(())
}

/// Capture/retire checks for the cone forms, then the SSA checks on the
/// lifted program rooted at the capture points.
fn check_cone(
    code: &[Decoded],
    dst: &[Reg],
    slots: usize,
    output_regs: &[Reg],
    capture: &[Reg],
    retire: &[u32],
) -> Result<(), VerifyError> {
    let ssa = reconstruct_ssa(code, dst, slots)?;
    if output_regs.len() != capture.len() {
        return Err(VerifyError::new(
            None,
            format!("{} outputs but {} capture points", output_regs.len(), capture.len()),
        ));
    }
    for (k, (&reg, &cap)) in output_regs.iter().zip(capture).enumerate() {
        let cap = cap as usize;
        if cap >= code.len() {
            return Err(VerifyError::new(
                None,
                format!("output {k} captured at instruction {cap}, past the end"),
            ));
        }
        if dst[cap] != reg {
            return Err(VerifyError::new(
                Some(cap),
                format!(
                    "output {k} claims slot {reg} but its capture instruction writes slot {}",
                    dst[cap]
                ),
            ));
        }
    }
    // retire must be a permutation of the output indices, ordered by
    // non-decreasing capture point (the evaluator drains it in step).
    if retire.len() != output_regs.len() {
        return Err(VerifyError::new(
            None,
            format!("{} retire entries for {} outputs", retire.len(), output_regs.len()),
        ));
    }
    let mut seen = vec![false; output_regs.len()];
    for &r in retire {
        match seen.get_mut(r as usize) {
            Some(s) if !*s => *s = true,
            Some(_) => {
                return Err(VerifyError::new(
                    None,
                    format!("retire order names output {r} twice"),
                ))
            }
            None => {
                return Err(VerifyError::new(
                    None,
                    format!("retire order names unknown output {r}"),
                ))
            }
        }
    }
    for w in retire.windows(2) {
        if capture[w[0] as usize] > capture[w[1] as usize] {
            return Err(VerifyError::new(
                None,
                format!(
                    "retire order not sorted by capture point ({} before {})",
                    w[0], w[1]
                ),
            ));
        }
    }
    let roots: Vec<usize> = capture.iter().map(|&c| c as usize).collect();
    check_ssa(&ssa, &roots)
}

// -- public slice-level API (used by the negative tests and the fuzz gate) --

/// Verify an SSA program of [`Instr`] with the given roots.
pub fn verify_ssa(code: &[Instr], roots: &[Reg]) -> Result<(), VerifyError> {
    let d: Vec<Decoded> = code.iter().map(decode).collect();
    let roots: Vec<usize> = roots.iter().map(|&r| r as usize).collect();
    check_ssa(&d, &roots)
}

/// Verify an SSA program of [`QInstr`] with the given roots.
pub fn verify_ssa_quantized(code: &[QInstr], roots: &[Reg]) -> Result<(), VerifyError> {
    let d: Vec<Decoded> = code.iter().map(decode_q).collect();
    let roots: Vec<usize> = roots.iter().map(|&r| r as usize).collect();
    check_ssa(&d, &roots)
}

/// Verify a slot program of [`Instr`] (a cone form): `dst[i]` is the slot
/// instruction `i` writes, `output_regs[k]`/`capture[k]`/`retire` the
/// capture plumbing, `slots` the claimed storage bound.
pub fn verify_slot_program(
    code: &[Instr],
    dst: &[Reg],
    slots: usize,
    output_regs: &[Reg],
    capture: &[Reg],
    retire: &[u32],
) -> Result<(), VerifyError> {
    let d: Vec<Decoded> = code.iter().map(decode).collect();
    check_cone(&d, dst, slots, output_regs, capture, retire)
}

/// Verify a slot program of [`QInstr`] (the quantised cone form).
pub fn verify_slot_program_quantized(
    code: &[QInstr],
    dst: &[Reg],
    slots: usize,
    output_regs: &[Reg],
    capture: &[Reg],
    retire: &[u32],
) -> Result<(), VerifyError> {
    let d: Vec<Decoded> = code.iter().map(decode_q).collect();
    check_cone(&d, dst, slots, output_regs, capture, retire)
}

// -- typed wrappers over the compiled program forms ------------------------

/// Verify a [`CompiledKernel`] (SSA, single root).
pub fn verify_kernel(k: &CompiledKernel) -> Result<(), VerifyError> {
    verify_ssa(k.code(), &[k.result()])
}

/// Verify a [`QuantizedKernel`] (SSA, single root).
pub fn verify_quantized_kernel(k: &QuantizedKernel) -> Result<(), VerifyError> {
    verify_ssa_quantized(k.code(), &[k.result()])
}

/// Verify a [`QuantizedStep`] (SSA, one root per dynamic field).
pub fn verify_step(s: &QuantizedStep) -> Result<(), VerifyError> {
    let roots: Vec<Reg> = s.outputs().iter().map(|&(_, r)| r).collect();
    verify_ssa_quantized(s.code(), &roots)
}

/// Verify a [`CompiledCone`] (slot program + capture/retire plumbing).
pub fn verify_cone(c: &CompiledCone) -> Result<(), VerifyError> {
    let output_regs: Vec<Reg> = c.outputs().iter().map(|s| s.reg).collect();
    verify_slot_program(c.code(), c.dst(), c.slots(), &output_regs, c.capture(), c.retire())
}

/// Verify a [`QuantizedCone`] (slot program + capture/retire plumbing).
pub fn verify_quantized_cone(c: &QuantizedCone) -> Result<(), VerifyError> {
    let output_regs: Vec<Reg> = c.outputs().iter().map(|s| s.reg).collect();
    verify_slot_program_quantized(
        c.code(),
        c.dst(),
        c.slots(),
        &output_regs,
        c.capture(),
        c.retire(),
    )
}
