//! # isl-analyze — abstract-interpretation static analyzer for the compiled datapath
//!
//! The flow's fixed-point correctness story is otherwise *dynamic*: format
//! search measures value ranges from sample frames, and fault campaigns
//! discover masked/silent instructions by exhaustive injection. This crate
//! adds the static side — an abstract interpreter over the existing
//! bytecode ([`isl_sim::Instr`]/[`isl_sim::QInstr`], SSA kernels and
//! slot-allocated cones alike) with two cooperating domains:
//!
//! * **intervals in the raw word domain** ([`WordRange`]) — endpoint
//!   arithmetic widened to `i128` and funnelled through
//!   [`isl_fpga::FixedFormat::saturate_wide`], the *same* clamp the
//!   datapath executes, so the abstraction mirrors
//!   `apply_unary`/`apply_binary` exactly rather than approximating them;
//! * **known bits** ([`KnownBits`]) — two's-complement bit facts
//!   (constants, comparison results, common high-prefixes of tight
//!   intervals), the domain that decides fault silence for stuck-at masks.
//!
//! Three analyses ride on the interpreter:
//!
//! 1. **Range & saturation certificates** ([`Analysis`]) — per-instruction
//!    bounds for a given format, either proving saturation-freedom
//!    ([`Analysis::first_overflow`]` == None`) or pinpointing the first
//!    statically-overflowing instruction. `isl_hls::IslSession::search_format`
//!    consults this to route statically-doomed escalation probes through a
//!    cheap error-measurement-only path (bit-identical probe numbers, no
//!    full certification), counting the skips in `StoreStats`.
//! 2. **Bytecode verification** ([`verify_cone`] and friends) — def-before-use
//!    over allocated slots, interference-freedom of the linear-scan slot
//!    reuse, multi-root DCE soundness and CSE congruence, run as a debug
//!    assertion after every compile (see [`install_debug_verifier`]) and as
//!    a CI gate over the fuzz corpus (`isl-fuzz analyze`).
//! 3. **Fault-silence prediction** ([`AbstractValue::always_zero`] /
//!    [`AbstractValue::always_one`]) — a `StuckAt0 { mask }` fault on an
//!    instruction whose mask bits are *known zero* (resp. known one for
//!    `StuckAt1`) provably cannot change any produced word; the campaign
//!    classifies such injections silent without replaying them, and the
//!    property suite cross-validates predicted-silent ⊆ measured
//!    masked-or-silent.
//!
//! ## Soundness contract
//!
//! The concretisation of an [`AbstractValue`] is the set of raw `i64`
//! words inside its interval whose bits agree with its known-bits fact.
//! Every transfer function over-approximates the corresponding concrete
//! operation of [`isl_fpga::FixedFormat`] — see [`domain`](self) for the
//! per-operation argument (monotone endpoint mapping for add/sub/neg/
//! sqrt/shift-truncation, corner enumeration for the bilinear multiply
//! and the sign-split division, branch refinement or join for select).
//! Inputs are assumed in-format (they are produced by `quantize` or by
//! the datapath itself), and `Instr::Const(v)` abstracts to
//! `fmt.quantize(v)` — exactly what the co-simulation VM computes.
//!
//! The verifier and interpreter never execute the program; both are one
//! `O(n)`/`O(n log n)` forward pass, cheap enough to run after every
//! compile in debug builds and over the whole fuzz corpus in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod interp;
mod program;
mod verify;

pub use domain::{AbstractValue, KnownBits, WordRange};
pub use interp::Analysis;
pub use verify::{
    verify_cone, verify_kernel, verify_quantized_cone, verify_quantized_kernel, verify_slot_program,
    verify_slot_program_quantized, verify_ssa, verify_ssa_quantized, verify_step, VerifyError,
};

use isl_sim::compile::ProgramView;

/// The hook handed to [`isl_sim::compile::set_compile_verifier`]: route
/// every freshly compiled program form through the matching verifier.
fn verify_view(view: ProgramView<'_>) -> Result<(), String> {
    let r = match view {
        ProgramView::Kernel(k) => verify_kernel(k),
        ProgramView::QuantizedKernel(k) => verify_quantized_kernel(k),
        ProgramView::Step(s) => verify_step(s),
        ProgramView::Cone(c) => verify_cone(c),
        ProgramView::QuantizedCone(c) => verify_quantized_cone(c),
    };
    r.map_err(|e| e.to_string())
}

/// Install the bytecode verifier as the compiler's debug-assertion hook:
/// in debug builds every subsequent compile (kernels, steps, cones,
/// quantised or not) is verified and panics on a finding. Idempotent and
/// cheap to call from every entry point (`IslSession::from_pattern`,
/// `CoSimulator::new`, the `isl-fuzz` binary); release builds keep the
/// hook installed but never invoke it.
pub fn install_debug_verifier() {
    isl_sim::compile::set_compile_verifier(verify_view);
}
