//! A shared decoded instruction representation, so the verifier and the
//! abstract interpreter are written once over `&[Decoded]` instead of being
//! generic over [`Instr`] (f64 constants) and [`QInstr`] (raw-word
//! constants).
//!
//! Two views exist: **SSA** programs, whose operands are instruction
//! indices (the compiler's pre-allocation form, and the form the cone
//! programs are reconstructed back into), and **slot** programs, whose
//! operands are linear-scan storage slots. [`reconstruct_ssa`] lifts a slot
//! program back to SSA while checking the allocator's contracts
//! (def-before-use, interference-freedom, slot-count tightness) — the
//! core of the bytecode verifier.

use isl_ir::{BinaryOp, UnaryOp};
use isl_sim::{Instr, QInstr};

use crate::verify::VerifyError;

/// The operation of one decoded instruction (operands live in
/// [`Decoded::args`]). Constants keep their origin: `ConstF` carries the
/// f64 **bit pattern** (the CSE key — `0.0`/`-0.0` and NaNs stay distinct)
/// and `ConstRaw` the pre-quantised word of a quantised program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum DecodedOp {
    /// An f64 constant, keyed by `to_bits()`.
    ConstF(u64),
    /// A raw fixed-point word constant.
    ConstRaw(i64),
    /// Read field `.0` at relative offset `(.1, .2)`.
    Input(u16, i32, i32),
    /// Unary operation on `args[0]`.
    Unary(UnaryOp),
    /// Binary operation on `args[0]`, `args[1]`.
    Binary(BinaryOp),
    /// `args[0] != 0 ? args[1] : args[2]`.
    Select,
}

/// One decoded instruction: operation plus up to three operands. Unused
/// operand lanes are zeroed, so `(op, args)` is a structural CSE key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Decoded {
    pub op: DecodedOp,
    pub args: [u32; 3],
    pub n: usize,
}

impl Decoded {
    fn new(op: DecodedOp, args: [u32; 3], n: usize) -> Self {
        Self { op, args, n }
    }

    /// The used operands.
    pub fn operands(&self) -> &[u32] {
        &self.args[..self.n]
    }
}

pub(crate) fn decode(i: &Instr) -> Decoded {
    match *i {
        Instr::Const(v) => Decoded::new(DecodedOp::ConstF(v.to_bits()), [0; 3], 0),
        Instr::Input { field, dx, dy } => {
            Decoded::new(DecodedOp::Input(field, dx, dy), [0; 3], 0)
        }
        Instr::Unary { op, a } => Decoded::new(DecodedOp::Unary(op), [a, 0, 0], 1),
        Instr::Binary { op, a, b } => Decoded::new(DecodedOp::Binary(op), [a, b, 0], 2),
        Instr::Select { c, t, e } => Decoded::new(DecodedOp::Select, [c, t, e], 3),
    }
}

pub(crate) fn decode_q(i: &QInstr) -> Decoded {
    match *i {
        QInstr::Const(w) => Decoded::new(DecodedOp::ConstRaw(w), [0; 3], 0),
        QInstr::Input { field, dx, dy } => {
            Decoded::new(DecodedOp::Input(field, dx, dy), [0; 3], 0)
        }
        QInstr::Unary { op, a } => Decoded::new(DecodedOp::Unary(op), [a, 0, 0], 1),
        QInstr::Binary { op, a, b } => Decoded::new(DecodedOp::Binary(op), [a, b, 0], 2),
        QInstr::Select { c, t, e } => Decoded::new(DecodedOp::Select, [c, t, e], 3),
    }
}

/// Lift a slot program (operands are storage slots, `dst[i]` the slot
/// instruction `i` writes) back into SSA form (operands are instruction
/// indices), verifying the slot allocator's contracts along the way:
///
/// * `code.len() == dst.len()`, every slot index `< slots`;
/// * `dst[i]` never aliases an operand slot of `i` (the allocator's
///   documented read-before-write invariant);
/// * every operand slot was written before it is read (def-before-use);
/// * **interference-freedom**: when instruction `j` overwrites a slot, the
///   value previously held there has no use at or after `j` — reads always
///   observe the value their SSA operand named;
/// * **tightness**: exactly `slots` distinct slots are written (the
///   retiring linear scan never allocates an unused slot).
pub(crate) fn reconstruct_ssa(
    code: &[Decoded],
    dst: &[u32],
    slots: usize,
) -> Result<Vec<Decoded>, VerifyError> {
    if code.len() != dst.len() {
        return Err(VerifyError::new(
            None,
            format!("{} instructions but {} dst slots", code.len(), dst.len()),
        ));
    }
    let n = code.len();
    // owner[s] = SSA value currently stored in slot s.
    let mut owner: Vec<Option<usize>> = vec![None; slots];
    // last_use[v] = index of the last instruction reading SSA value v
    // (its own definition index when never read).
    let mut last_use: Vec<usize> = (0..n).collect();
    // (j, v): instruction j evicted SSA value v from its slot.
    let mut evictions: Vec<(usize, usize)> = Vec::new();
    let mut ssa = Vec::with_capacity(n);
    let mut slots_written = 0usize;

    for (i, d) in code.iter().enumerate() {
        let mut lifted = *d;
        for k in 0..d.n {
            let s = d.args[k] as usize;
            if s >= slots {
                return Err(VerifyError::new(
                    Some(i),
                    format!("operand slot {s} out of range (program claims {slots} slots)"),
                ));
            }
            if s == dst[i] as usize {
                return Err(VerifyError::new(
                    Some(i),
                    format!("destination slot {s} aliases an operand slot"),
                ));
            }
            let Some(v) = owner[s] else {
                return Err(VerifyError::new(
                    Some(i),
                    format!("slot {s} read before any write (def-before-use violation)"),
                ));
            };
            lifted.args[k] = v as u32;
            last_use[v] = i;
        }
        let ds = dst[i] as usize;
        if ds >= slots {
            return Err(VerifyError::new(
                Some(i),
                format!("destination slot {ds} out of range (program claims {slots} slots)"),
            ));
        }
        match owner[ds] {
            Some(prev) => evictions.push((i, prev)),
            None => slots_written += 1,
        }
        owner[ds] = Some(i);
        ssa.push(lifted);
    }

    // Interference check with the *final* liveness: an eviction at j of
    // value v is only legal once v is dead, i.e. last_use[v] < j.
    for (j, v) in evictions {
        if last_use[v] >= j {
            return Err(VerifyError::new(
                Some(j),
                format!(
                    "slot reuse clobbers live value: instruction {j} overwrites the slot \
                     holding value {v}, which is still read at instruction {}",
                    last_use[v]
                ),
            ));
        }
    }

    if slots_written != slots {
        return Err(VerifyError::new(
            None,
            format!("program claims {slots} slots but writes only {slots_written}"),
        ));
    }

    Ok(ssa)
}
