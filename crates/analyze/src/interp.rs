//! The abstract interpreter: one forward pass over a (possibly lifted)
//! SSA program, computing an [`AbstractValue`] per instruction for a given
//! [`FixedFormat`] and input assumption.
//!
//! # Soundness contract
//!
//! For any concrete execution of the analysed program under the same
//! format — via the `isl-cosim` VM (`eval_cone_raw`/`eval_cone_raw_traced`
//! on `Instr` programs) or the quantised engines (`QInstr` programs) —
//! whose every input read falls inside the declared input interval, the
//! word each instruction produces is contained in that instruction's
//! [`AbstractValue`] (interval **and** known bits). The proof obligation
//! per operation is discharged in [`crate::domain`]: each transfer routes
//! its endpoint arithmetic through [`FixedFormat::saturate_wide`], the
//! same clamp the datapath executes.
//!
//! Constants differ by program form and the interpreter honours that
//! difference exactly: an `Instr::Const(v)` is abstracted as
//! `fmt.quantize(v)` (what the VM computes at execution time), while a
//! `QInstr::Const(w)` is the already-quantised word `w` itself.

use isl_fpga::FixedFormat;

use isl_sim::{CompiledCone, CompiledKernel, QuantizedCone, QuantizedKernel, Reg};

use crate::domain::{
    transfer_binary, transfer_select, transfer_unary, AbstractValue, WordRange,
};
use crate::program::{decode, decode_q, reconstruct_ssa, Decoded, DecodedOp};
use crate::verify::VerifyError;

/// The result of abstractly interpreting one program: per-instruction
/// facts (indexed like the instruction stream) plus the saturation
/// verdict.
///
/// For the slot-allocated cone forms the facts are indexed by the
/// *scheduled* instruction order — the same order
/// `eval_cone_raw_traced` records its trace in, so `facts[i]` speaks
/// about `trace[i]`.
#[derive(Debug, Clone)]
pub struct Analysis {
    facts: Vec<AbstractValue>,
    first_overflow: Option<usize>,
}

impl Analysis {
    fn run(ssa: &[Decoded], fmt: FixedFormat, input: WordRange) -> Self {
        let mut facts: Vec<AbstractValue> = Vec::with_capacity(ssa.len());
        let mut first_overflow = None;
        for (i, d) in ssa.iter().enumerate() {
            let v = match d.op {
                DecodedOp::ConstF(bits) => {
                    AbstractValue::constant(fmt.quantize(f64::from_bits(bits)))
                }
                DecodedOp::ConstRaw(w) => AbstractValue::constant(w),
                DecodedOp::Input(..) => AbstractValue::input(fmt, input),
                DecodedOp::Unary(op) => transfer_unary(fmt, op, &facts[d.args[0] as usize]),
                DecodedOp::Binary(op) => transfer_binary(
                    fmt,
                    op,
                    &facts[d.args[0] as usize],
                    &facts[d.args[1] as usize],
                ),
                DecodedOp::Select => transfer_select(
                    &facts[d.args[0] as usize],
                    &facts[d.args[1] as usize],
                    &facts[d.args[2] as usize],
                ),
            };
            if v.may_saturate && first_overflow.is_none() {
                first_overflow = Some(i);
            }
            facts.push(v);
        }
        Self {
            facts,
            first_overflow,
        }
    }

    /// Analyse a [`CompiledKernel`] (SSA `Instr` program) under `fmt`,
    /// every input read assumed inside `input`.
    pub fn of_kernel(k: &CompiledKernel, fmt: FixedFormat, input: WordRange) -> Self {
        let ssa: Vec<Decoded> = k.code().iter().map(decode).collect();
        Self::run(&ssa, fmt, input)
    }

    /// Analyse a [`QuantizedKernel`] compiled for the same format.
    pub fn of_quantized_kernel(k: &QuantizedKernel, input: WordRange) -> Self {
        let ssa: Vec<Decoded> = k.code().iter().map(decode_q).collect();
        Self::run(&ssa, k.format(), input)
    }

    /// Analyse a [`CompiledCone`] (the slot-allocated form the bit-true
    /// engines and the fault campaigns execute) under `fmt`. The slot
    /// program is first lifted back to SSA — which can fail (as
    /// [`VerifyError`]) only on bytecode the verifier would reject.
    pub fn of_cone(
        c: &CompiledCone,
        fmt: FixedFormat,
        input: WordRange,
    ) -> Result<Self, VerifyError> {
        let code: Vec<Decoded> = c.code().iter().map(decode).collect();
        let ssa = reconstruct_ssa(&code, c.dst(), c.slots())?;
        Ok(Self::run(&ssa, fmt, input))
    }

    /// Analyse a [`QuantizedCone`] compiled for its own format.
    pub fn of_quantized_cone(c: &QuantizedCone, input: WordRange) -> Result<Self, VerifyError> {
        let code: Vec<Decoded> = c.code().iter().map(decode_q).collect();
        let ssa = reconstruct_ssa(&code, c.dst(), c.slots())?;
        Ok(Self::run(&ssa, c.format(), input))
    }

    /// The fact proven for instruction `i` (same indexing as the
    /// instruction stream / the fault-campaign trace).
    pub fn value(&self, i: usize) -> &AbstractValue {
        &self.facts[i]
    }

    /// Number of analysed instructions.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the analysis empty (zero-instruction program)?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The first instruction whose widened intermediate may leave the
    /// rails, when any. `None` is a **saturation-freedom certificate**:
    /// no instruction of this program can clamp under the declared input
    /// assumption.
    pub fn first_overflow(&self) -> Option<usize> {
        self.first_overflow
    }

    /// Does any instruction possibly saturate? (See
    /// [`Analysis::first_overflow`].)
    pub fn may_saturate(&self) -> bool {
        self.first_overflow.is_some()
    }

    /// The proven interval of a result register of an SSA program (for
    /// kernels: `k.result()`).
    pub fn range_of(&self, reg: Reg) -> WordRange {
        self.facts[reg as usize].range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Cone, Expr, FieldKind, Offset, StencilPattern, Window};
    use isl_sim::Instr;

    fn blur_pattern() -> StencilPattern {
        let mut p = StencilPattern::new(2);
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))
            .unwrap();
        p
    }

    #[test]
    fn blur_cone_is_saturation_free_on_small_inputs() {
        let p = blur_pattern();
        let cone = Cone::build(&p, Window::square(2), 1).unwrap();
        let cc = CompiledCone::compile_with(&cone, &[], false);
        let fmt = FixedFormat::new(18, 10);
        // Inputs in [-1, 1]: the 4-sum reaches 4.0, well inside Q8.10.
        let one = fmt.quantize(1.0);
        let a = Analysis::of_cone(&cc, fmt, WordRange::new(-one, one)).unwrap();
        assert!(!a.may_saturate(), "blur of |x|<=1 cannot clamp in Q8.10");
        // Full-rails inputs: the 4-sum may clamp somewhere.
        let full = Analysis::of_cone(&cc, fmt, WordRange::full(fmt)).unwrap();
        assert!(full.may_saturate());
        assert!(full.first_overflow().is_some());
    }

    #[test]
    fn kernel_facts_contain_concrete_evaluation() {
        let p = blur_pattern();
        let fmt = FixedFormat::new(16, 8);
        let kernels = isl_sim::CompiledPattern::compile(&p, &[], false);
        let k = kernels.kernel(0).unwrap();
        let a = Analysis::of_kernel(k, fmt, WordRange::new(fmt.quantize(-2.0), fmt.quantize(2.0)));
        // Concretely execute with every input at 1.5 and check containment.
        let w = fmt.quantize(1.5);
        let mut regs: Vec<i64> = Vec::new();
        for instr in k.code() {
            let v = match *instr {
                Instr::Const(c) => fmt.quantize(c),
                Instr::Input { .. } => w,
                Instr::Unary { op, a } => fmt.apply_unary(op, regs[a as usize]),
                Instr::Binary { op, a, b } => {
                    fmt.apply_binary(op, regs[a as usize], regs[b as usize])
                }
                Instr::Select { c, t, e } => {
                    if regs[c as usize] != 0 {
                        regs[t as usize]
                    } else {
                        regs[e as usize]
                    }
                }
            };
            regs.push(v);
        }
        for (i, &v) in regs.iter().enumerate() {
            assert!(a.value(i).contains(v), "instr {i}: {v} not in {:?}", a.value(i));
        }
    }
}
