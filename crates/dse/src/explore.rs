//! Exhaustive enumeration of architecture instances.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::ops::RangeInclusive;
use std::sync::Arc;

use isl_estimate::{
    schedule, AreaEstimator, Architecture, EstimateError, ScheduleModel, Workload,
};
use isl_fpga::{techmap, Device, SynthCache, SynthOptions, Synthesizer};
use isl_ir::{Cone, ConeCache, StencilPattern, Window};
use isl_sim::parallel::par_map;


/// The grid of architecture instances to enumerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Square output-window sides to consider (the paper sweeps 1..=9,
    /// i.e. window areas 1..=81).
    pub window_sides: Vec<u32>,
    /// Cone depths to consider.
    pub depths: Vec<u32>,
    /// Maximum parallel cores per instance.
    pub max_cores: u32,
}

impl DesignSpace {
    /// Space over side and depth ranges with up to `max_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or `max_cores` is zero.
    pub fn new(sides: RangeInclusive<u32>, depths: RangeInclusive<u32>, max_cores: u32) -> Self {
        let space = DesignSpace {
            window_sides: sides.collect(),
            depths: depths.collect(),
            max_cores,
        };
        assert!(
            !space.window_sides.is_empty() && !space.depths.is_empty() && max_cores > 0,
            "design space must be non-empty"
        );
        space
    }

    /// The space the paper explores for its case studies: windows 1x1..9x9,
    /// depths 1..5, up to 16 cores.
    pub fn paper() -> Self {
        Self::new(1..=9, 1..=5, 16)
    }

    /// Number of raw grid points (before feasibility filtering).
    pub fn len(&self) -> usize {
        self.window_sides.len() * self.depths.len() * self.max_cores as usize
    }

    /// Whether the space is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated architecture instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The architecture.
    pub arch: Architecture,
    /// Estimated LUTs (Eq. 1) of all cores incl. the remainder core.
    pub estimated_luts: f64,
    /// Time per frame, seconds (analytic schedule).
    pub time_per_frame_s: f64,
    /// Frames per second.
    pub fps: f64,
    /// Whether the off-chip interface limits this instance.
    pub transfer_bound: bool,
    /// Registers of the single main cone (`Reg_i`).
    pub registers: u64,
}

/// Result of exploring a design space.
#[derive(Debug, Clone)]
pub struct Exploration {
    points: Vec<DesignPoint>,
    pareto: Vec<usize>,
    calibration_syntheses: usize,
    skipped_infeasible: usize,
}

impl Exploration {
    /// Every feasible evaluated point.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// The Pareto-optimal points (minimal area, minimal time), ascending by
    /// area.
    pub fn pareto(&self) -> Vec<&DesignPoint> {
        self.pareto.iter().map(|&i| &self.points[i]).collect()
    }

    /// Indices of the Pareto points into [`Exploration::points`].
    pub fn pareto_indices(&self) -> &[usize] {
        &self.pareto
    }

    /// Synthesis runs consumed by α calibration (two per distinct depth —
    /// the paper's "as low as two" per estimation curve).
    pub fn calibration_syntheses(&self) -> usize {
        self.calibration_syntheses
    }

    /// Instances rejected by the feasibility rule (not even one cone of each
    /// required depth fits).
    pub fn skipped_infeasible(&self) -> usize {
        self.skipped_infeasible
    }

    /// The point with the highest frames-per-second.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.points
            .iter()
            .max_by(|a, b| a.fps.partial_cmp(&b.fps).expect("fps is finite"))
    }

    /// The feasible point with the smallest estimated area.
    pub fn smallest(&self) -> Option<&DesignPoint> {
        self.points.iter().min_by(|a, b| {
            a.estimated_luts
                .partial_cmp(&b.estimated_luts)
                .expect("area is finite")
        })
    }
}

/// Errors from exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// Nothing in the space is feasible on the device.
    NothingFeasible,
    /// An estimation step failed.
    Estimate(String),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::NothingFeasible => {
                write!(f, "no architecture in the design space fits the device")
            }
            DseError::Estimate(m) => write!(f, "estimation failed: {m}"),
        }
    }
}

impl Error for DseError {}

impl From<EstimateError> for DseError {
    fn from(e: EstimateError) -> Self {
        DseError::Estimate(e.to_string())
    }
}

/// Everything the enumeration needs to know about one cone shape
/// `(window side, depth)`: computed once by [`Explorer::calibrate`], read
/// by every [`Explorer::enumerate`] over the same calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConeFacts {
    /// Operation registers of the cone (the paper's `Reg_i`).
    pub registers: u64,
    /// Pipeline latency of one cone pass, cycles.
    pub latency: u32,
    /// Estimated LUTs of one instance (Eq. 1).
    pub est_luts: f64,
}

/// The pre-computed estimation stage of a design-space sweep: per-depth
/// α-calibrated area estimators plus the [`ConeFacts`] of every shape the
/// enumeration will touch.
///
/// Produced by [`Explorer::calibrate`]; consumed (possibly many times, for
/// different workloads of the same iteration count, or shared `Arc`-style
/// across threads) by [`Explorer::enumerate`]. Splitting the stages makes
/// the expensive half — cone construction and calibration syntheses —
/// explicitly reusable, which is what the flow-level artifact store keys on.
#[derive(Debug, Clone)]
pub struct Calibration {
    iterations: u32,
    estimators: HashMap<u32, AreaEstimator>,
    facts: HashMap<(u32, u32), ConeFacts>,
    syntheses: usize,
}

impl Calibration {
    /// The iteration count this calibration was derived for (its remainder
    /// depths depend on it; [`Explorer::enumerate`] enforces the match).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Synthesis runs the calibration consumed.
    pub fn syntheses(&self) -> usize {
        self.syntheses
    }

    /// The calibrated estimator of one depth, when that depth occurs.
    pub fn estimator(&self, depth: u32) -> Option<&AreaEstimator> {
        self.estimators.get(&depth)
    }

    /// The facts of one `(window side, depth)` shape, when covered.
    pub fn facts(&self, side: u32, depth: u32) -> Option<&ConeFacts> {
        self.facts.get(&(side, depth))
    }

    /// Every calibrated `(depth, estimator)` pair, sorted by depth — a
    /// deterministic enumeration for the persistence codec.
    pub fn estimators(&self) -> Vec<(u32, &AreaEstimator)> {
        let mut out: Vec<_> = self.estimators.iter().map(|(d, e)| (*d, e)).collect();
        out.sort_by_key(|(d, _)| *d);
        out
    }

    /// Every covered `((side, depth), facts)` entry, sorted by shape — the
    /// deterministic counterpart of [`Calibration::estimators`].
    pub fn all_facts(&self) -> Vec<((u32, u32), ConeFacts)> {
        let mut out: Vec<_> = self.facts.iter().map(|(k, f)| (*k, *f)).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Reassemble a calibration from its exact parts — the inverse of
    /// [`Calibration::estimators`] + [`Calibration::all_facts`], used by
    /// the persistence codec to round-trip stored calibrations
    /// bit-identically. Not a calibration entry point: nothing is
    /// synthesised here.
    pub fn from_parts(
        iterations: u32,
        syntheses: usize,
        estimators: Vec<(u32, AreaEstimator)>,
        facts: Vec<((u32, u32), ConeFacts)>,
    ) -> Self {
        Calibration {
            iterations,
            estimators: estimators.into_iter().collect(),
            facts: facts.into_iter().collect(),
            syntheses,
        }
    }
}

/// The design-space explorer for one target device.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Explorer<'d> {
    device: &'d Device,
    synth_options: SynthOptions,
    schedule_model: ScheduleModel,
    threads: usize,
    caches: Option<(ConeCache, SynthCache)>,
}

impl<'d> Explorer<'d> {
    /// Explorer with default synthesis options and schedule model.
    pub fn new(device: &'d Device) -> Self {
        Explorer {
            device,
            synth_options: SynthOptions::default(),
            schedule_model: ScheduleModel::default(),
            threads: 0,
            caches: None,
        }
    }

    /// Attach shared artifact caches: built cones and calibration synthesis
    /// reports are then served from (and stored into) the caches, so
    /// repeated explorations — across workloads, core counts or whole
    /// sessions — stop rebuilding the shapes they share. Results are
    /// byte-identical with and without caches.
    pub fn with_caches(mut self, cones: ConeCache, synths: SynthCache) -> Self {
        self.caches = Some((cones, synths));
        self
    }

    /// The synthesiser this explorer calibrates with (caches attached).
    fn synthesizer(&self) -> Synthesizer<'d> {
        let synth = Synthesizer::with_options(self.device, self.synth_options);
        match &self.caches {
            Some((cones, synths)) => synth.with_caches(cones.clone(), synths.clone()),
            None => synth,
        }
    }

    /// Build one simplified cone, through the shared cone cache when
    /// attached.
    fn cone(&self, pattern: &StencilPattern, w: Window, d: u32) -> Result<Arc<Cone>, DseError> {
        match &self.caches {
            Some((cones, _)) => cones
                .get_or_build(pattern, w, d, true)
                .map_err(|e| DseError::Estimate(e.to_string())),
            None => Cone::build(pattern, w, d)
                .map(Arc::new)
                .map_err(|e| DseError::Estimate(e.to_string())),
        }
    }

    /// Cap the worker threads used to enumerate instances (0 = one per
    /// available core, 1 = fully serial). The exploration result — point
    /// order included — is identical for every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override synthesis options (format, sharing, jitter).
    pub fn with_synth_options(mut self, options: SynthOptions) -> Self {
        self.synth_options = options;
        self
    }

    /// Override the schedule model.
    pub fn with_schedule(mut self, model: ScheduleModel) -> Self {
        self.schedule_model = model;
        self
    }

    /// Enumerate and cost every instance of `space` for `pattern` on
    /// `workload`; extract the Pareto set.
    ///
    /// Costing uses the paper's estimation machinery only: Eq. 1 areas
    /// (α calibrated with two syntheses per distinct depth) and the analytic
    /// schedule; no per-point synthesis happens.
    ///
    /// This is [`Explorer::calibrate`] followed by [`Explorer::enumerate`];
    /// callers that sweep several workloads of one iteration count (or that
    /// keep an artifact store across calls) run the stages explicitly and
    /// reuse the [`Calibration`].
    ///
    /// # Errors
    ///
    /// [`DseError::NothingFeasible`] when the whole space is infeasible;
    /// [`DseError::Estimate`] on calibration failures.
    pub fn explore(
        &self,
        pattern: &StencilPattern,
        workload: Workload,
        space: &DesignSpace,
    ) -> Result<Exploration, DseError> {
        let calibration = self.calibrate(pattern, workload.iterations, space)?;
        self.enumerate(pattern, workload, space, &calibration)
    }

    /// The estimation stage of a sweep: build (or fetch) the cones of every
    /// shape the space can touch for `iterations`-deep runs, run the α
    /// calibration syntheses (two per distinct depth), and derive the
    /// [`ConeFacts`] every enumeration reads. All the expensive work of an
    /// exploration happens here.
    ///
    /// # Errors
    ///
    /// [`DseError::Estimate`] on cone-construction or calibration failures.
    pub fn calibrate(
        &self,
        pattern: &StencilPattern,
        iterations: u32,
        space: &DesignSpace,
    ) -> Result<Calibration, DseError> {
        let _span = isl_telemetry::span("dse", "calibrate");
        let synth = self.synthesizer();
        let fmt = self.synth_options.format;

        // Every depth that can appear: requested depths plus remainder
        // depths they induce.
        let mut all_depths: Vec<u32> = space
            .depths
            .iter()
            .copied()
            .chain(
                space
                    .depths
                    .iter()
                    .map(|&d| iterations % d)
                    .filter(|&r| r > 0),
            )
            .filter(|&d| d >= 1 && d <= iterations)
            .collect();
        all_depths.sort_unstable();
        all_depths.dedup();

        // Calibration windows: the smallest and largest side of the space
        // (or two adjacent sides when the space has only one).
        let calib_sides = [space.window_sides[0], *space.window_sides.last().expect("non-empty")];
        let calib_windows: Vec<Window> = if calib_sides[0] == calib_sides[1] {
            vec![Window::square(calib_sides[0]), Window::square(calib_sides[0] + 1)]
        } else {
            calib_sides.iter().map(|&s| Window::square(s)).collect()
        };

        // Build each *calibration* cone exactly once and reuse it for both
        // the calibration syntheses and the facts pass below — those were
        // the shapes previously constructed twice, and calibration
        // dominates big sweeps. Only these few cones (2 windows × depths)
        // are kept resident; the rest of the facts cones stay transient so
        // peak memory matches a plain sweep.
        let calib_shapes: Vec<(Window, u32)> = calib_windows
            .iter()
            .flat_map(|&w| all_depths.iter().map(move |&d| (w, d)))
            .collect();
        let calib_cones: HashMap<(Window, u32), Arc<Cone>> =
            par_map(calib_shapes.clone(), self.threads, |(w, d)| {
                self.cone(pattern, w, d).map(|c| ((w, d), c))
            })
            .into_iter()
            .collect::<Result<_, DseError>>()?;

        // Calibrate one area estimator per depth (2 syntheses each). The
        // shared cones are built with simplification on (the flow default);
        // under the ablation options the synthesiser needs raw cones, so
        // calibration falls back to building its own.
        //
        // The calibration syntheses are run here (not inside the estimator)
        // so each report's techmap result is consumed **twice**: its
        // `(registers, luts)` point feeds the α fit, and its mapped pipeline
        // latency is kept for the facts pass below — those shapes previously
        // re-walked the full cone graph a second time per sweep.
        let share_cones = self.synth_options.simplify;
        let mut calib_latency: HashMap<(Window, u32), u32> = HashMap::new();
        let estimators: HashMap<u32, AreaEstimator> = if share_cones {
            let reports = par_map(calib_shapes, self.threads, |(w, d)| {
                synth
                    .synthesize_cone(pattern, &calib_cones[&(w, d)], 1)
                    .map(|r| ((w, d), r))
                    .map_err(EstimateError::from)
            })
            .into_iter()
            .collect::<Result<Vec<_>, EstimateError>>()?;
            let size_reg = self.synth_options.format.width as f64;
            let mut by_depth: HashMap<u32, Vec<(u64, f64)>> = HashMap::new();
            for ((w, d), report) in reports {
                calib_latency.insert((w, d), report.latency_cycles);
                by_depth
                    .entry(d)
                    .or_default()
                    .push((report.registers, report.luts as f64));
            }
            by_depth
                .into_iter()
                .map(|(d, points)| {
                    AreaEstimator::from_synthesis_points(size_reg, points).map(|e| (d, e))
                })
                .collect::<Result<_, EstimateError>>()?
        } else {
            par_map(all_depths.clone(), self.threads, |d| {
                AreaEstimator::calibrate(&synth, pattern, d, &calib_windows).map(|e| (d, e))
            })
            .into_iter()
            .collect::<Result<_, EstimateError>>()?
        };
        let calibration_syntheses = estimators.len() * calib_windows.len();

        // Facts per (side, depth): reuse a calibration cone when the shape
        // matches, build transiently otherwise (through the shared cone
        // cache when one is attached — then the session keeps the shape for
        // later stages). Latencies of calibration shapes come from the
        // synthesis reports above (the techmap already walked those
        // graphs); only non-calibration shapes pay a walk.
        let shapes: Vec<(u32, u32)> = space
            .window_sides
            .iter()
            .flat_map(|&side| all_depths.iter().map(move |&d| (side, d)))
            .collect();
        let facts: HashMap<(u32, u32), ConeFacts> = par_map(shapes, self.threads, |(side, d)| {
            let w = Window::square(side);
            let cone = match calib_cones.get(&(w, d)) {
                Some(c) => Arc::clone(c),
                None => self.cone(pattern, w, d)?,
            };
            let est = &estimators[&d];
            let latency = calib_latency
                .get(&(w, d))
                .copied()
                .unwrap_or_else(|| techmap::pipeline_latency(cone.graph(), fmt));
            let est_luts = est.estimate(cone.registers() as u64);
            // NaN stops here, at the estimation boundary, with the shape
            // that produced it — not as a panic inside the Pareto sort.
            if est_luts.is_nan() {
                return Err(DseError::Estimate(format!(
                    "estimated area of window {side}x{side}, depth {d} is NaN \
                     (degenerate calibration)"
                )));
            }
            Ok((
                (side, d),
                ConeFacts {
                    registers: cone.registers() as u64,
                    latency,
                    est_luts,
                },
            ))
        })
        .into_iter()
        .collect::<Result<_, DseError>>()?;
        drop(calib_cones);

        Ok(Calibration {
            iterations,
            estimators,
            facts,
            syntheses: calibration_syntheses,
        })
    }

    /// The enumeration stage: cost every `(window, depth, cores)` instance
    /// of `space` against a prepared [`Calibration`] and extract the Pareto
    /// set. Pure arithmetic over the calibration's facts — no cone is built
    /// and no synthesis runs, which is why a stored calibration makes warm
    /// sweeps cheap.
    ///
    /// # Errors
    ///
    /// [`DseError::Estimate`] when `calibration` does not cover `workload`'s
    /// iteration count or a shape of `space`;
    /// [`DseError::NothingFeasible`] when nothing fits the device.
    pub fn enumerate(
        &self,
        pattern: &StencilPattern,
        workload: Workload,
        space: &DesignSpace,
        calibration: &Calibration,
    ) -> Result<Exploration, DseError> {
        let _span = isl_telemetry::span("dse", "enumerate");
        if workload.iterations != calibration.iterations {
            return Err(DseError::Estimate(format!(
                "calibration was derived for {} iterations, workload runs {}",
                calibration.iterations, workload.iterations
            )));
        }
        let facts = |side: u32, depth: u32| -> Result<&ConeFacts, DseError> {
            calibration.facts(side, depth).ok_or_else(|| {
                DseError::Estimate(format!(
                    "calibration does not cover window side {side}, depth {depth}"
                ))
            })
        };

        // Enumerate instances in parallel, one task per (side, depth) pair.
        // Pairs are mapped in input order and concatenated in that order, so
        // the point list — and therefore the Pareto front — is byte-identical
        // to a serial sweep.
        let pairs: Vec<(u32, u32)> = space
            .window_sides
            .iter()
            .flat_map(|&side| space.depths.iter().map(move |&depth| (side, depth)))
            .collect();
        let evaluated: Vec<Result<(Vec<DesignPoint>, usize), DseError>> =
            par_map(pairs, self.threads, |(side, depth)| {
                let mut points = Vec::new();
                let mut skipped = 0usize;
                if depth > workload.iterations {
                    return Ok((points, 1));
                }
                let rem = workload.iterations % depth;
                let main = facts(side, depth)?;
                let (rem_luts, rem_latency) = if rem > 0 {
                    let rf = facts(side, rem)?;
                    (rf.est_luts, Some(rf.latency))
                } else {
                    (0.0, None)
                };
                // Feasibility: one cone of each required depth must fit.
                if main.est_luts + rem_luts > self.device.luts as f64 {
                    return Ok((points, space.max_cores as usize));
                }
                let core_cap = space.max_cores.min(self.device.max_parallel_cones);
                for cores in 1..=core_cap {
                    let est_total = main.est_luts * cores as f64 + rem_luts;
                    if est_total > self.device.luts as f64 {
                        skipped += 1;
                        continue;
                    }
                    let arch = Architecture::new(Window::square(side), depth, cores);
                    let outcome = schedule(
                        pattern,
                        arch,
                        workload,
                        main.latency,
                        rem_latency,
                        self.device.fmax_cap_mhz,
                        self.schedule_model,
                        self.device,
                    )?;
                    if outcome.time_per_frame_s.is_nan() || outcome.fps.is_nan() {
                        return Err(DseError::Estimate(format!(
                            "schedule of window {side}x{side}, depth {depth}, \
                             {cores} cores produced a NaN time"
                        )));
                    }
                    points.push(DesignPoint {
                        arch,
                        estimated_luts: est_total,
                        time_per_frame_s: outcome.time_per_frame_s,
                        fps: outcome.fps,
                        transfer_bound: outcome.transfer_bound,
                        registers: main.registers,
                    });
                }
                Ok((points, skipped))
            });
        let mut points = Vec::new();
        let mut skipped = 0usize;
        for r in evaluated {
            let (p, s) = r?;
            points.extend(p);
            skipped += s;
        }
        if points.is_empty() {
            return Err(DseError::NothingFeasible);
        }
        let coords: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.estimated_luts, p.time_per_frame_s))
            .collect();
        // Belt and braces: the guards above reject NaN as it is produced;
        // should a cost slip through regardless, report the offending point
        // instead of panicking in the sweep's final sort.
        let pareto = crate::pareto::pareto_front_checked(&coords).map_err(|i| {
            DseError::Estimate(format!(
                "non-numeric cost for window {}, depth {}, {} cores: area {}, time {} s",
                points[i].arch.window, points[i].arch.depth, points[i].arch.cores,
                coords[i].0, coords[i].1
            ))
        })?;
        Ok(Exploration {
            points,
            pareto,
            calibration_syntheses: calibration.syntheses,
            skipped_infeasible: skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::dominates;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn jacobi() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("jacobi");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))
            .unwrap();
        p
    }

    fn explore_default() -> Exploration {
        let device = Device::virtex6_xc6vlx760();
        let explorer = Explorer::new(&device);
        let space = DesignSpace::new(1..=6, 1..=4, 6);
        explorer
            .explore(&jacobi(), Workload::image(256, 192, 8), &space)
            .unwrap()
    }

    #[test]
    fn explores_hundreds_of_solutions() {
        let e = explore_default();
        // 6 sides x 4 depths x 6 cores = 144 grid points; most feasible.
        assert!(e.points().len() > 100, "{} points", e.points().len());
        assert!(!e.pareto().is_empty());
    }

    #[test]
    fn pareto_soundness_over_real_points() {
        let e = explore_default();
        let coords: Vec<(f64, f64)> = e
            .points()
            .iter()
            .map(|p| (p.estimated_luts, p.time_per_frame_s))
            .collect();
        for &i in e.pareto_indices() {
            for (j, &c) in coords.iter().enumerate() {
                if i != j {
                    assert!(!dominates(c, coords[i]));
                }
            }
        }
        for (j, &c) in coords.iter().enumerate() {
            if !e.pareto_indices().contains(&j) {
                assert!(e.pareto_indices().iter().any(|&i| dominates(coords[i], c)));
            }
        }
    }

    #[test]
    fn calibration_uses_two_syntheses_per_depth() {
        let e = explore_default();
        // Depths 1..4 on N=8 induce remainder depths {1, 2, 3} (8%3=2; 8%... )
        // all within 1..=4, so 4 estimators x 2 syntheses.
        assert_eq!(e.calibration_syntheses(), 8);
    }

    #[test]
    fn more_cores_never_slower_same_shape() {
        let e = explore_default();
        let mut by_shape: HashMap<(u32, u32), Vec<&DesignPoint>> = HashMap::new();
        for p in e.points() {
            by_shape
                .entry((p.arch.window.w, p.arch.depth))
                .or_default()
                .push(p);
        }
        for (_, mut pts) in by_shape {
            pts.sort_by_key(|p| p.arch.cores);
            for w in pts.windows(2) {
                assert!(w[1].fps >= w[0].fps - 1e-9);
                assert!(w[1].estimated_luts >= w[0].estimated_luts);
            }
        }
    }

    #[test]
    fn fastest_and_smallest_are_consistent() {
        let e = explore_default();
        let fastest = e.fastest().unwrap();
        let smallest = e.smallest().unwrap();
        for p in e.points() {
            assert!(p.fps <= fastest.fps + 1e-9);
            assert!(p.estimated_luts >= smallest.estimated_luts - 1e-9);
        }
        // Both extremes must sit on the Pareto front.
        let front = e.pareto();
        assert!(front
            .iter()
            .any(|p| (p.fps - fastest.fps).abs() < 1e-9));
        assert!(front
            .iter()
            .any(|p| (p.estimated_luts - smallest.estimated_luts).abs() < 1e-9));
    }

    #[test]
    fn nothing_feasible_reported() {
        // A heavy pattern on a tiny device with only huge windows.
        let mut p = StencilPattern::new(2).with_name("heavy");
        let f = p.add_field("f", FieldKind::Dynamic);
        let gx = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 0)),
        );
        let den = Expr::binary(
            BinaryOp::Add,
            Expr::constant(1.0),
            Expr::unary(
                isl_ir::UnaryOp::Sqrt,
                Expr::binary(BinaryOp::Mul, gx.clone(), gx),
            ),
        );
        p.set_update(
            f,
            Expr::binary(BinaryOp::Div, Expr::input(f, Offset::ZERO), den),
        )
        .unwrap();
        let device = Device::small_multimedia();
        let explorer = Explorer::new(&device);
        let space = DesignSpace::new(9..=9, 5..=5, 2);
        let err = explorer
            .explore(&p, Workload::image(256, 192, 10), &space)
            .unwrap_err();
        assert_eq!(err, DseError::NothingFeasible);
    }

    #[test]
    fn estimated_areas_track_actual_synthesis() {
        // The flow's promise: the Pareto set picked on estimates is real.
        let device = Device::virtex6_xc6vlx760();
        let explorer = Explorer::new(&device);
        let space = DesignSpace::new(1..=5, 2..=2, 1);
        let p = jacobi();
        let e = explorer
            .explore(&p, Workload::image(128, 128, 8), &space)
            .unwrap();
        let synth = Synthesizer::new(&device);
        for pt in e.points() {
            let actual = synth
                .synthesize(&p, pt.arch.window, pt.arch.depth, pt.arch.cores)
                .unwrap();
            let err =
                (pt.estimated_luts - actual.luts as f64).abs() / actual.luts as f64;
            assert!(
                err < 0.15,
                "window {} est {:.0} vs actual {} ({:.1}%)",
                pt.arch.window,
                pt.estimated_luts,
                actual.luts,
                err * 100.0
            );
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let device = Device::virtex6_xc6vlx760();
        let p = jacobi();
        let space = DesignSpace::new(1..=6, 1..=4, 6);
        let workload = Workload::image(256, 192, 8);
        let serial = Explorer::new(&device)
            .with_threads(1)
            .explore(&p, workload, &space)
            .unwrap();
        for threads in [2, 3, 8, 0] {
            let par = Explorer::new(&device)
                .with_threads(threads)
                .explore(&p, workload, &space)
                .unwrap();
            assert_eq!(serial.points(), par.points(), "{threads} threads");
            assert_eq!(serial.pareto_indices(), par.pareto_indices());
            assert_eq!(serial.skipped_infeasible(), par.skipped_infeasible());
        }
    }

    #[test]
    fn staged_and_cached_sweeps_are_byte_identical() {
        let device = Device::virtex6_xc6vlx760();
        let p = jacobi();
        let space = DesignSpace::new(1..=5, 1..=3, 4);
        let workload = Workload::image(128, 96, 7);
        let plain = Explorer::new(&device).explore(&p, workload, &space).unwrap();

        // Explicit stages: one calibration, reused for two enumerations.
        let staged = Explorer::new(&device);
        let calibration = staged.calibrate(&p, workload.iterations, &space).unwrap();
        let a = staged.enumerate(&p, workload, &space, &calibration).unwrap();
        let b = staged.enumerate(&p, workload, &space, &calibration).unwrap();
        assert_eq!(plain.points(), a.points());
        assert_eq!(a.points(), b.points());
        assert_eq!(plain.pareto_indices(), a.pareto_indices());

        // Shared caches change the work done, never the result.
        let cones = ConeCache::new();
        let synths = SynthCache::new();
        let cached = Explorer::new(&device).with_caches(cones.clone(), synths.clone());
        let c1 = cached.explore(&p, workload, &space).unwrap();
        let warm_cone_misses = cones.stats().misses;
        let warm_synth_misses = synths.stats().misses;
        let c2 = cached.explore(&p, workload, &space).unwrap();
        assert_eq!(plain.points(), c1.points());
        assert_eq!(c1.points(), c2.points());
        // Second sweep: zero new cone builds, zero new syntheses.
        assert_eq!(cones.stats().misses, warm_cone_misses);
        assert_eq!(synths.stats().misses, warm_synth_misses);
        assert!(cones.stats().hits > 0);
        assert!(synths.stats().hits > 0);
    }

    #[test]
    fn nan_cost_is_an_error_not_a_panic() {
        // A calibration whose facts carry a NaN area (what a degenerate
        // α fit produces) must surface as DseError::Estimate from the
        // enumeration — never as the old `expect("area/time must not be
        // NaN")` panic inside the Pareto sort.
        let device = Device::virtex6_xc6vlx760();
        let p = jacobi();
        let space = DesignSpace::new(2..=2, 1..=1, 1);
        let e = Explorer::new(&device);
        let good = e.calibrate(&p, 4, &space).unwrap();
        let mut facts = good.facts.clone();
        for f in facts.values_mut() {
            f.est_luts = f64::NAN;
        }
        let poisoned = Calibration {
            iterations: good.iterations,
            estimators: good.estimators.clone(),
            facts,
            syntheses: good.syntheses,
        };
        let err = e
            .enumerate(&p, Workload::image(64, 64, 4), &space, &poisoned)
            .unwrap_err();
        assert!(matches!(err, DseError::Estimate(_)), "{err}");
        assert!(err.to_string().contains("NaN") || err.to_string().contains("non-numeric"));
    }

    #[test]
    fn enumerate_rejects_mismatched_calibration() {
        let device = Device::virtex6_xc6vlx760();
        let p = jacobi();
        let space = DesignSpace::new(1..=3, 1..=2, 2);
        let e = Explorer::new(&device);
        let calibration = e.calibrate(&p, 8, &space).unwrap();
        let err = e
            .enumerate(&p, Workload::image(64, 64, 9), &space, &calibration)
            .unwrap_err();
        assert!(matches!(err, DseError::Estimate(_)));
    }

    #[test]
    fn paper_space_shape() {
        let s = DesignSpace::paper();
        assert_eq!(s.window_sides, (1..=9).collect::<Vec<_>>());
        assert_eq!(s.depths, (1..=5).collect::<Vec<_>>());
        assert_eq!(s.len(), 9 * 5 * 16);
    }
}
