//! Pareto-front extraction for (area, time) minimisation.

/// Whether point `a = (area, time)` dominates `b`: no worse on both axes and
/// strictly better on at least one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the Pareto-optimal points of `points = (area, time)` pairs,
/// minimising both coordinates. Duplicate coordinates keep their first
/// occurrence. The result is sorted by ascending area.
///
/// ```
/// use isl_dse::pareto_front;
/// let pts = [(1.0, 9.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0)];
/// assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
/// ```
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Sort by area, then time; sweep keeping strictly improving time.
    idx.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .expect("area/time must not be NaN")
    });
    let mut front = Vec::new();
    let mut best_time = f64::INFINITY;
    let mut last_area = f64::NEG_INFINITY;
    for &i in &idx {
        let (area, time) = points[i];
        if time < best_time {
            // A point with the same area as the previous front member but a
            // worse time was already filtered by `time < best_time`; a point
            // with the same area and the same time is a duplicate — skip it.
            if area == last_area {
                // Same area, strictly better time cannot happen after the
                // sort (time ascending within equal area), so skip.
                continue;
            }
            front.push(i);
            best_time = time;
            last_area = area;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (1.0, 3.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0))); // equal: no strict edge
        assert!(!dominates((1.0, 3.0), (2.0, 2.0))); // trade-off
    }

    #[test]
    fn front_is_sound_and_complete() {
        let pts = [
            (5.0, 1.0),
            (1.0, 5.0),
            (3.0, 3.0),
            (2.0, 4.0),
            (4.0, 4.0), // dominated by (3,3)
            (3.0, 5.0), // dominated by (3,3) and (1,5)... by (1,5)? no: 1<=3,5<=5 strict on area -> yes
        ];
        let front = pareto_front(&pts);
        // Soundness: no front point dominated by any point.
        for &i in &front {
            for (j, &p) in pts.iter().enumerate() {
                if i != j {
                    assert!(!dominates(p, pts[i]), "{j} dominates front member {i}");
                }
            }
        }
        // Completeness: every non-front point is dominated by a front point.
        for (j, &p) in pts.iter().enumerate() {
            if !front.contains(&j) {
                assert!(
                    front.iter().any(|&i| dominates(pts[i], p)),
                    "non-front point {j} is not dominated"
                );
            }
        }
        assert_eq!(front, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicates_collapse() {
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_front(&[(3.0, 3.0)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_sorted_by_area_with_decreasing_time() {
        let pts = [(4.0, 1.0), (1.0, 4.0), (2.0, 3.0), (3.0, 2.0)];
        let front = pareto_front(&pts);
        let coords: Vec<(f64, f64)> = front.iter().map(|&i| pts[i]).collect();
        for w in coords.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }
}
