//! Pareto-front extraction for (area, time) minimisation.

/// Whether point `a = (area, time)` dominates `b`: no worse on both axes and
/// strictly better on at least one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the Pareto-optimal points of `points = (area, time)` pairs,
/// minimising both coordinates. Duplicate coordinates keep their first
/// occurrence. The result is sorted by ascending area.
///
/// # Panics
///
/// Panics when any coordinate is NaN. Callers whose costs come from
/// estimation (which can produce NaN on degenerate calibrations) should use
/// [`pareto_front_checked`] and surface the error at the estimation
/// boundary instead.
///
/// ```
/// use isl_dse::pareto_front;
/// let pts = [(1.0, 9.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0)];
/// assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
/// ```
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Sort by area, then time; sweep keeping strictly improving time.
    idx.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .expect("area/time must not be NaN")
    });
    let mut front = Vec::new();
    let mut best_time = f64::INFINITY;
    for &i in &idx {
        let (_, time) = points[i];
        // After the (area, time) sort, the first point of an equal-area run
        // has that run's best time; every later member fails `time <
        // best_time`, so equal-area duplicates collapse to their first
        // occurrence with no further check.
        if time < best_time {
            front.push(i);
            best_time = time;
        }
    }
    front
}

/// [`pareto_front`] with NaN coordinates reported instead of panicking:
/// returns the index of the first point with a NaN area or time as the
/// error. This is the entry point for costs that come out of estimation —
/// a sweep over thousands of points must fail with *which* point was
/// non-numeric, not die in a sort comparator.
///
/// # Errors
///
/// `Err(i)` when `points[i]` has a NaN coordinate.
pub fn pareto_front_checked(points: &[(f64, f64)]) -> Result<Vec<usize>, usize> {
    if let Some(i) = points.iter().position(|p| p.0.is_nan() || p.1.is_nan()) {
        return Err(i);
    }
    Ok(pareto_front(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (1.0, 3.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0))); // equal: no strict edge
        assert!(!dominates((1.0, 3.0), (2.0, 2.0))); // trade-off
    }

    #[test]
    fn front_is_sound_and_complete() {
        let pts = [
            (5.0, 1.0),
            (1.0, 5.0),
            (3.0, 3.0),
            (2.0, 4.0),
            (4.0, 4.0), // dominated by (3,3)
            (3.0, 5.0), // dominated by (3,3) and (1,5)... by (1,5)? no: 1<=3,5<=5 strict on area -> yes
        ];
        let front = pareto_front(&pts);
        // Soundness: no front point dominated by any point.
        for &i in &front {
            for (j, &p) in pts.iter().enumerate() {
                if i != j {
                    assert!(!dominates(p, pts[i]), "{j} dominates front member {i}");
                }
            }
        }
        // Completeness: every non-front point is dominated by a front point.
        for (j, &p) in pts.iter().enumerate() {
            if !front.contains(&j) {
                assert!(
                    front.iter().any(|&i| dominates(pts[i], p)),
                    "non-front point {j} is not dominated"
                );
            }
        }
        assert_eq!(front, vec![1, 3, 2, 0]);
    }

    #[test]
    fn duplicates_collapse() {
        let pts = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![0, 2]);
    }

    #[test]
    fn single_point() {
        assert_eq!(pareto_front(&[(3.0, 3.0)]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn checked_front_reports_nan_index() {
        let pts = [(1.0, 2.0), (f64::NAN, 1.0), (3.0, 0.5)];
        assert_eq!(pareto_front_checked(&pts), Err(1));
        let pts = [(1.0, 2.0), (2.0, f64::NAN)];
        assert_eq!(pareto_front_checked(&pts), Err(1));
        let pts = [(1.0, 9.0), (2.0, 5.0), (3.0, 6.0), (4.0, 1.0)];
        assert_eq!(pareto_front_checked(&pts), Ok(vec![0, 1, 3]));
    }

    #[test]
    fn front_sorted_by_area_with_decreasing_time() {
        let pts = [(4.0, 1.0), (1.0, 4.0), (2.0, 3.0), (3.0, 2.0)];
        let front = pareto_front(&pts);
        let coords: Vec<(f64, f64)> = front.iter().map(|&i| pts[i]).collect();
        for w in coords.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
    }
}
