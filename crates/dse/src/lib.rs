//! # isl-dse — design-space exploration and Pareto extraction
//!
//! The last stage of the DAC 2013 flow (Figure 2): enumerate every
//! architecture-template instance — output window × cone depth × number of
//! parallel cores — cost each one with the *estimated* area (Eq. 1,
//! calibrated from two syntheses per depth) and the analytic throughput
//! model, and extract the Pareto set w.r.t. (area, time-per-frame) by
//! exhaustive search. The paper notes the space "typically requires the
//! evaluation of a few hundreds of solutions"; [`Exploration::points`]
//! carries them all so the Figures 6/9 curves can be re-plotted.
//!
//! ```
//! use isl_dse::{DesignSpace, Explorer};
//! use isl_estimate::Workload;
//! use isl_fpga::Device;
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2).with_name("jacobi");
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::sum([
//!     Expr::input(f, Offset::d2(0, -1)),
//!     Expr::input(f, Offset::d2(-1, 0)),
//!     Expr::input(f, Offset::d2(1, 0)),
//!     Expr::input(f, Offset::d2(0, 1)),
//! ]);
//! p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))?;
//!
//! let device = Device::virtex6_xc6vlx760();
//! let explorer = Explorer::new(&device);
//! let space = DesignSpace::new(1..=4, 1..=3, 4);
//! let result = explorer.explore(&p, Workload::image(256, 192, 6), &space)?;
//! assert!(!result.pareto().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod pareto;

pub use explore::{
    Calibration, ConeFacts, DesignPoint, DesignSpace, DseError, Exploration, Explorer,
};
pub use pareto::{dominates, pareto_front, pareto_front_checked};
