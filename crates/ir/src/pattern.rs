//! Stencil dependency patterns: the output of dependency analysis.
//!
//! A [`StencilPattern`] captures *one iteration* of an ISL: for every dynamic
//! field, an update [`Expr`] over relative offsets. Because ISLs are
//! translation-invariant, this single per-element description determines the
//! whole computation (paper, Section 2, property 2) and — because
//! dependencies between consecutive iterations are identical for every
//! iteration — it also suffices to build cones of *any* depth (Section 3.2).

use std::error::Error;
use std::fmt;

use crate::expr::Expr;
use crate::geometry::Offset;

/// Identifier of a field (grid) inside a pattern.
///
/// Fields are dense and ordered: the first `add_field` call returns id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(u16);

impl FieldId {
    /// Construct from a raw index.
    pub const fn new(raw: u16) -> Self {
        FieldId(raw)
    }

    /// Raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Identifier of a scalar runtime parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(u16);

impl ParamId {
    /// Construct from a raw index.
    pub const fn new(raw: u16) -> Self {
        ParamId(raw)
    }

    /// Raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Whether a field is rewritten every iteration or constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Updated every iteration (`f_{i+1} = t(f_i)`).
    Dynamic,
    /// Read-only for the whole run, e.g. the observed image `g` in the
    /// Chambolle algorithm: every iteration reads it at iteration-0 values.
    Static,
}

/// Declaration of one field.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Human-readable name (from the source kernel).
    pub name: String,
    /// Dynamic or static.
    pub kind: FieldKind,
}

/// Declaration of one scalar parameter with its default value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Human-readable name (from the source kernel).
    pub name: String,
    /// Value used when the caller does not override it.
    pub default: f64,
}

/// Errors produced while assembling or validating a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A field id does not exist in this pattern.
    UnknownField(String),
    /// `set_update` was called on a static field.
    UpdateOnStaticField(String),
    /// A dynamic field has no update expression.
    MissingUpdate(String),
    /// An offset uses an axis beyond the pattern's rank.
    OffsetRankMismatch {
        /// Field whose update is faulty.
        field: String,
        /// The offending offset, rendered.
        offset: String,
        /// Declared pattern rank.
        rank: usize,
    },
    /// The pattern has no dynamic field at all.
    NoDynamicField,
    /// Domain narrowness violated: an offset exceeds the configured bound.
    RadiusTooLarge {
        /// Observed radius.
        radius: u32,
        /// Allowed maximum.
        max: u32,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::UnknownField(n) => write!(f, "unknown field `{n}`"),
            PatternError::UpdateOnStaticField(n) => {
                write!(f, "cannot set an update on static field `{n}`")
            }
            PatternError::MissingUpdate(n) => {
                write!(f, "dynamic field `{n}` has no update expression")
            }
            PatternError::OffsetRankMismatch { field, offset, rank } => write!(
                f,
                "update of `{field}` reads offset {offset} outside pattern rank {rank}"
            ),
            PatternError::NoDynamicField => write!(f, "pattern declares no dynamic field"),
            PatternError::RadiusTooLarge { radius, max } => write!(
                f,
                "stencil radius {radius} exceeds the domain-narrowness bound {max}"
            ),
        }
    }
}

impl Error for PatternError {}

/// The single-iteration dependency pattern of an iterative stencil loop.
///
/// ```
/// use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = StencilPattern::new(2);
/// let f = p.add_field("f", FieldKind::Dynamic);
/// let avg = Expr::binary(
///     BinaryOp::Mul,
///     Expr::sum([
///         Expr::input(f, Offset::d2(0, -1)),
///         Expr::input(f, Offset::d2(-1, 0)),
///         Expr::input(f, Offset::d2(1, 0)),
///         Expr::input(f, Offset::d2(0, 1)),
///     ]),
///     Expr::constant(0.25),
/// );
/// p.set_update(f, avg)?;
/// assert_eq!(p.radius(), 1);
/// p.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StencilPattern {
    rank: usize,
    fields: Vec<FieldDecl>,
    updates: Vec<Option<Expr>>,
    params: Vec<ParamDecl>,
    name: String,
}

impl StencilPattern {
    /// Create an empty pattern of the given rank (1, 2 or 3).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is 0 or greater than 3.
    pub fn new(rank: usize) -> Self {
        assert!((1..=3).contains(&rank), "rank must be 1, 2 or 3");
        StencilPattern {
            rank,
            fields: Vec::new(),
            updates: Vec::new(),
            params: Vec::new(),
            name: String::from("anonymous"),
        }
    }

    /// Set a human-readable algorithm name (used in reports and VHDL entity
    /// names).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Algorithm name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Spatial rank (1, 2 or 3).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Declare a new field and return its id.
    pub fn add_field(&mut self, name: impl Into<String>, kind: FieldKind) -> FieldId {
        let id = FieldId(self.fields.len() as u16);
        self.fields.push(FieldDecl { name: name.into(), kind });
        self.updates.push(None);
        id
    }

    /// Declare a new scalar parameter and return its id.
    pub fn add_param(&mut self, name: impl Into<String>, default: f64) -> ParamId {
        let id = ParamId(self.params.len() as u16);
        self.params.push(ParamDecl { name: name.into(), default });
        id
    }

    /// Set the per-iteration update expression of a dynamic field.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::UnknownField`] if `field` is not declared and
    /// [`PatternError::UpdateOnStaticField`] if it is static.
    pub fn set_update(&mut self, field: FieldId, expr: Expr) -> Result<(), PatternError> {
        let decl = self
            .fields
            .get(field.index())
            .ok_or_else(|| PatternError::UnknownField(format!("{field}")))?;
        if decl.kind == FieldKind::Static {
            return Err(PatternError::UpdateOnStaticField(decl.name.clone()));
        }
        self.updates[field.index()] = Some(expr);
        Ok(())
    }

    /// All declared fields, in id order.
    pub fn fields(&self) -> &[FieldDecl] {
        &self.fields
    }

    /// Declaration of one field.
    pub fn field(&self, id: FieldId) -> &FieldDecl {
        &self.fields[id.index()]
    }

    /// All declared parameters, in id order.
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// Ids of all dynamic fields, in id order.
    pub fn dynamic_fields(&self) -> Vec<FieldId> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == FieldKind::Dynamic)
            .map(|(i, _)| FieldId(i as u16))
            .collect()
    }

    /// Ids of all static fields, in id order.
    pub fn static_fields(&self) -> Vec<FieldId> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == FieldKind::Static)
            .map(|(i, _)| FieldId(i as u16))
            .collect()
    }

    /// The update expression of a dynamic field, if set.
    pub fn update(&self, field: FieldId) -> Option<&Expr> {
        self.updates.get(field.index()).and_then(|u| u.as_ref())
    }

    /// Stencil radius: maximum Chebyshev offset over every update expression
    /// (the bound that "domain narrowness" promises is small).
    pub fn radius(&self) -> u32 {
        self.updates
            .iter()
            .flatten()
            .map(|e| e.radius())
            .max()
            .unwrap_or(0)
    }

    /// Total operation count of one iteration of one element, summed over all
    /// dynamic fields (tree ops, before any reuse).
    pub fn ops_per_element(&self) -> usize {
        self.updates.iter().flatten().map(|e| e.op_count()).sum()
    }

    /// Check structural well-formedness:
    ///
    /// * at least one dynamic field exists;
    /// * every dynamic field has an update;
    /// * no update reads an offset outside the pattern rank;
    /// * the stencil radius respects `max_radius` (domain narrowness),
    ///   checked by [`StencilPattern::validate_with_radius`]; `validate` uses
    ///   a liberal default of 8.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`PatternError`].
    pub fn validate(&self) -> Result<(), PatternError> {
        self.validate_with_radius(8)
    }

    /// [`StencilPattern::validate`] with an explicit domain-narrowness bound.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`PatternError`].
    pub fn validate_with_radius(&self, max_radius: u32) -> Result<(), PatternError> {
        if self.dynamic_fields().is_empty() {
            return Err(PatternError::NoDynamicField);
        }
        for (i, decl) in self.fields.iter().enumerate() {
            let id = FieldId(i as u16);
            if decl.kind == FieldKind::Dynamic {
                let expr = self
                    .update(id)
                    .ok_or_else(|| PatternError::MissingUpdate(decl.name.clone()))?;
                for (_, off) in expr.reads() {
                    if !self.offset_in_rank(off) {
                        return Err(PatternError::OffsetRankMismatch {
                            field: decl.name.clone(),
                            offset: off.to_string(),
                            rank: self.rank,
                        });
                    }
                }
            }
        }
        let radius = self.radius();
        if radius > max_radius {
            return Err(PatternError::RadiusTooLarge { radius, max: max_radius });
        }
        Ok(())
    }

    fn offset_in_rank(&self, o: Offset) -> bool {
        match self.rank {
            1 => o.dy == 0 && o.dz == 0,
            2 => o.dz == 0,
            _ => true,
        }
    }

    /// A stable structural content hash of the pattern: rank, name, field
    /// and parameter declarations, and every update expression (constants
    /// hashed by bit pattern). Two patterns with equal fingerprints describe
    /// the same computation for every downstream artifact — cones, compiled
    /// programs, synthesis reports — which is what makes the fingerprint a
    /// sound cache key for the content-addressed artifact stores
    /// ([`crate::cache::ConeCache`] and the caches layered above it).
    ///
    /// The hash is FNV-1a over an explicit, tagged traversal — independent
    /// of `std`'s unstable `Hasher` randomisation, so fingerprints are
    /// reproducible across processes and builds.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.eat(self.rank as u64);
        h.eat_str(&self.name);
        for decl in &self.fields {
            h.eat_str(&decl.name);
            h.eat(match decl.kind {
                FieldKind::Dynamic => 1,
                FieldKind::Static => 2,
            });
        }
        for p in &self.params {
            h.eat_str(&p.name);
            h.eat(p.default.to_bits());
        }
        for update in &self.updates {
            match update {
                None => h.eat(0),
                Some(expr) => {
                    h.eat(1);
                    hash_expr(expr, &mut h);
                }
            }
        }
        h.finish()
    }
}

/// FNV-1a, kept explicit so fingerprints are stable across Rust releases.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn eat_str(&mut self, s: &str) {
        self.eat(s.len() as u64);
        for byte in s.bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Tagged structural fold of an expression into the fingerprint hasher.
fn hash_expr(expr: &Expr, h: &mut Fnv) {
    match expr {
        Expr::Input { field, offset } => {
            h.eat(2);
            h.eat(field.index() as u64);
            h.eat(offset.dx as u64);
            h.eat(offset.dy as u64);
            h.eat(offset.dz as u64);
        }
        Expr::Const(v) => {
            h.eat(3);
            h.eat(v.to_bits());
        }
        Expr::Param(p) => {
            h.eat(4);
            h.eat(p.index() as u64);
        }
        Expr::Unary { op, arg } => {
            h.eat(5);
            h.eat(*op as u64);
            hash_expr(arg, h);
        }
        Expr::Binary { op, lhs, rhs } => {
            h.eat(6);
            h.eat(*op as u64);
            hash_expr(lhs, h);
            hash_expr(rhs, h);
        }
        Expr::Select { cond, then_, else_ } => {
            h.eat(7);
            hash_expr(cond, h);
            hash_expr(then_, h);
            hash_expr(else_, h);
        }
    }
}

impl fmt::Display for StencilPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stencil `{}` rank={} radius={}", self.name, self.rank, self.radius())?;
        for (i, decl) in self.fields.iter().enumerate() {
            let id = FieldId(i as u16);
            match decl.kind {
                FieldKind::Dynamic => {
                    if let Some(u) = self.update(id) {
                        writeln!(f, "  {}' = {u}", decl.name)?;
                    } else {
                        writeln!(f, "  {}' = <unset>", decl.name)?;
                    }
                }
                FieldKind::Static => writeln!(f, "  {} (static)", decl.name)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinaryOp;

    fn diffusion_2d() -> (StencilPattern, FieldId) {
        let mut p = StencilPattern::new(2).with_name("diffusion");
        let f = p.add_field("f", FieldKind::Dynamic);
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::sum([
                Expr::input(f, Offset::d2(0, -1)),
                Expr::input(f, Offset::d2(-1, 0)),
                Expr::input(f, Offset::d2(1, 0)),
                Expr::input(f, Offset::d2(0, 1)),
            ]),
            Expr::constant(0.25),
        );
        p.set_update(f, e).unwrap();
        (p, f)
    }

    #[test]
    fn build_and_validate() {
        let (p, f) = diffusion_2d();
        assert_eq!(p.rank(), 2);
        assert_eq!(p.radius(), 1);
        assert_eq!(p.dynamic_fields(), vec![f]);
        assert!(p.static_fields().is_empty());
        p.validate().unwrap();
    }

    #[test]
    fn missing_update_is_reported() {
        let mut p = StencilPattern::new(2);
        let _f = p.add_field("f", FieldKind::Dynamic);
        assert_eq!(
            p.validate(),
            Err(PatternError::MissingUpdate("f".to_string()))
        );
    }

    #[test]
    fn static_field_cannot_be_updated() {
        let mut p = StencilPattern::new(2);
        let g = p.add_field("g", FieldKind::Static);
        let err = p.set_update(g, Expr::constant(0.0)).unwrap_err();
        assert_eq!(err, PatternError::UpdateOnStaticField("g".to_string()));
    }

    #[test]
    fn rank_violation_is_reported() {
        let mut p = StencilPattern::new(1);
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(f, Expr::input(f, Offset::d2(0, 1))).unwrap();
        assert!(matches!(
            p.validate(),
            Err(PatternError::OffsetRankMismatch { .. })
        ));
    }

    #[test]
    fn no_dynamic_field_is_reported() {
        let mut p = StencilPattern::new(2);
        p.add_field("g", FieldKind::Static);
        assert_eq!(p.validate(), Err(PatternError::NoDynamicField));
    }

    #[test]
    fn radius_bound_is_enforced() {
        let mut p = StencilPattern::new(1);
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(f, Expr::input(f, Offset::d1(9))).unwrap();
        assert_eq!(
            p.validate(),
            Err(PatternError::RadiusTooLarge { radius: 9, max: 8 })
        );
        p.validate_with_radius(9).unwrap();
    }

    #[test]
    fn params_have_defaults() {
        let mut p = StencilPattern::new(2);
        let tau = p.add_param("tau", 0.25);
        assert_eq!(p.params()[tau.index()].name, "tau");
        assert_eq!(p.params()[tau.index()].default, 0.25);
    }

    #[test]
    fn display_contains_update() {
        let (p, _) = diffusion_2d();
        let s = p.to_string();
        assert!(s.contains("diffusion"));
        assert!(s.contains("f' ="));
    }
}
