//! Cone construction: unrolling a stencil pattern through `m` iterations.
//!
//! A *cone* (paper, Sections 1 and 3.1) is the hardware module that computes
//! an output window of iteration `i + m` directly from elements of iteration
//! `i`. Construction expands the per-iteration update expressions level by
//! level, memoising every `(field, point, level)` element and interning every
//! operation into one shared [`Graph`] — so the "large number of operations
//! on the same elements repeated multiple times" (Figure 4) is computed, and
//! registered, exactly once.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::Expr;
use crate::geometry::{Extent, Point, Window};
use crate::graph::{Graph, Leaf, NodeId, OpStats};
use crate::pattern::{FieldId, FieldKind, PatternError, StencilPattern};

/// One produced element: `field` at `point` of iteration `i + depth`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConeOutput {
    /// Field produced.
    pub field: FieldId,
    /// Window-local coordinate (inside `0..w × 0..h`).
    pub point: Point,
    /// Graph node holding the value.
    pub node: NodeId,
}

/// One consumed element of the base iteration `i` (or of a static field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConeInput {
    /// Field read.
    pub field: FieldId,
    /// Cone-local coordinate; may be negative (halo).
    pub point: Point,
}

/// A compact identity for a cone shape, independent of the graph contents.
/// Used to name VHDL entities and to seed the deterministic synthesis jitter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConeSignature {
    /// Algorithm name (from the pattern).
    pub algorithm: String,
    /// Output window.
    pub window: Window,
    /// Cone depth (iterations fused).
    pub depth: u32,
}

impl fmt::Display for ConeSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_w{}_d{}", self.algorithm, self.window, self.depth)
    }
}

/// Errors from cone construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ConeError {
    /// Depth must be at least 1.
    ZeroDepth,
    /// The underlying pattern is not well-formed.
    Pattern(PatternError),
}

impl fmt::Display for ConeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConeError::ZeroDepth => write!(f, "cone depth must be at least 1"),
            ConeError::Pattern(e) => write!(f, "invalid pattern: {e}"),
        }
    }
}

impl Error for ConeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConeError::Pattern(e) => Some(e),
            ConeError::ZeroDepth => None,
        }
    }
}

impl From<PatternError> for ConeError {
    fn from(e: PatternError) -> Self {
        ConeError::Pattern(e)
    }
}

/// A multi-iteration stencil compute module with register reuse.
///
/// See the [crate-level documentation](crate) for a construction example.
#[derive(Debug, Clone)]
pub struct Cone {
    signature: ConeSignature,
    simplified: bool,
    rank: usize,
    radius: u32,
    graph: Graph,
    outputs: Vec<ConeOutput>,
    inputs: Vec<ConeInput>,
    static_inputs: Vec<ConeInput>,
    registers: usize,
    op_stats: OpStats,
    tree_ops: f64,
}

impl Cone {
    /// Build a cone of the given output window and depth, with algebraic
    /// simplification enabled (the flow default).
    ///
    /// # Errors
    ///
    /// Returns [`ConeError::ZeroDepth`] for `depth == 0` and
    /// [`ConeError::Pattern`] if the pattern fails validation.
    pub fn build(pattern: &StencilPattern, window: Window, depth: u32) -> Result<Cone, ConeError> {
        Self::build_with(pattern, window, depth, true)
    }

    /// [`Cone::build`] with explicit control over algebraic simplification
    /// (disable it for ablation studies).
    ///
    /// # Errors
    ///
    /// Same as [`Cone::build`].
    pub fn build_with(
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        simplify: bool,
    ) -> Result<Cone, ConeError> {
        if depth == 0 {
            return Err(ConeError::ZeroDepth);
        }
        pattern.validate()?;

        let mut builder = ConeBuilder {
            pattern,
            graph: if simplify {
                Graph::new()
            } else {
                Graph::without_simplification()
            },
            memo: HashMap::new(),
        };

        let mut outputs = Vec::new();
        for field in pattern.dynamic_fields() {
            for point in window.points() {
                let node = builder.element(field, point, depth);
                outputs.push(ConeOutput { field, point, node });
            }
        }

        let graph = builder.graph;
        let roots: Vec<NodeId> = outputs.iter().map(|o| o.node).collect();
        let mask = graph.reachable(&roots);

        let mut inputs = Vec::new();
        let mut static_inputs = Vec::new();
        let mut registers = 0usize;
        for (id, node) in graph.nodes() {
            if !mask[id.index()] {
                continue;
            }
            match node {
                crate::graph::Node::Leaf(Leaf::Input { field, point }) => {
                    inputs.push(ConeInput { field: *field, point: *point });
                }
                crate::graph::Node::Leaf(Leaf::Static { field, point }) => {
                    static_inputs.push(ConeInput { field: *field, point: *point });
                }
                crate::graph::Node::Leaf(_) => {}
                _ => registers += 1,
            }
        }
        inputs.sort_unstable();
        static_inputs.sort_unstable();
        let op_stats = graph.op_stats(Some(&mask));
        let tree_ops = tree_op_count(pattern, window, depth);

        Ok(Cone {
            signature: ConeSignature {
                algorithm: pattern.name().to_string(),
                window,
                depth,
            },
            simplified: simplify,
            rank: pattern.rank(),
            radius: pattern.radius(),
            graph,
            outputs,
            inputs,
            static_inputs,
            registers,
            op_stats,
            tree_ops,
        })
    }

    /// Shape identity (algorithm, window, depth).
    pub fn signature(&self) -> &ConeSignature {
        &self.signature
    }

    /// Whether algebraic simplification was enabled during construction.
    /// Part of the cone's cache identity: the same shape built with and
    /// without simplification yields different graphs.
    pub fn simplified(&self) -> bool {
        self.simplified
    }

    /// Output window.
    pub fn window(&self) -> Window {
        self.signature.window
    }

    /// Number of iterations fused by this cone.
    pub fn depth(&self) -> u32 {
        self.signature.depth
    }

    /// Stencil radius of the underlying pattern.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Spatial rank of the underlying pattern.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The shared dataflow graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Produced elements, one per `(dynamic field, window point)`.
    pub fn outputs(&self) -> &[ConeOutput] {
        &self.outputs
    }

    /// Consumed dynamic-field elements of the base iteration, sorted.
    pub fn inputs(&self) -> &[ConeInput] {
        &self.inputs
    }

    /// Consumed static-field elements, sorted.
    pub fn static_inputs(&self) -> &[ConeInput] {
        &self.static_inputs
    }

    /// Number of operation registers after reuse — the paper's `Reg`
    /// quantity feeding the area model (Eq. 1).
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Operation statistics (reachable operations only).
    pub fn op_stats(&self) -> &OpStats {
        &self.op_stats
    }

    /// Number of operations a naive per-output expression *tree* would
    /// instantiate (no reuse at all). The ratio `tree_op_count / registers`
    /// measures what the data-reuse technique of Section 3.2 saves.
    pub fn tree_op_count(&self) -> f64 {
        self.tree_ops
    }

    /// The theoretical input extent: the output window grown by
    /// `radius × depth` on every used axis. Every actual input lies inside.
    pub fn input_extent(&self) -> Extent {
        self.signature.window.grown(self.radius * self.signature.depth)
    }

    /// Evaluate the cone on concrete inputs with `f64` semantics.
    ///
    /// * `read(field, point)` supplies dynamic-field base values and
    ///   static-field values (the field id tells which is which);
    /// * `params` supplies parameter values by [`crate::ParamId`] index.
    ///
    /// Returns `(field, point, value)` for every output element.
    pub fn eval<R>(&self, read: R, params: &[f64]) -> Vec<(FieldId, Point, f64)>
    where
        R: Fn(FieldId, Point) -> f64,
    {
        let vals = self.graph.eval(|leaf| match leaf {
            Leaf::Input { field, point } | Leaf::Static { field, point } => read(*field, *point),
            Leaf::Const(c) => c.value(),
            Leaf::Param(p) => params.get(p.index()).copied().unwrap_or(f64::NAN),
        });
        self.outputs
            .iter()
            .map(|o| (o.field, o.point, vals[o.node.index()]))
            .collect()
    }
}

impl fmt::Display for Cone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cone {} (regs={}, inputs={}, outputs={})",
            self.signature,
            self.registers,
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

struct ConeBuilder<'p> {
    pattern: &'p StencilPattern,
    graph: Graph,
    memo: HashMap<(FieldId, Point, u32), NodeId>,
}

impl ConeBuilder<'_> {
    /// The graph node computing `field` at `point` of relative level `level`
    /// (level 0 = cone base input).
    fn element(&mut self, field: FieldId, point: Point, level: u32) -> NodeId {
        if let Some(&id) = self.memo.get(&(field, point, level)) {
            return id;
        }
        let id = if level == 0 {
            self.graph.input(field, point)
        } else {
            let expr = self
                .pattern
                .update(field)
                .expect("validated pattern has updates for all dynamic fields")
                .clone();
            self.instantiate(&expr, point, level)
        };
        self.memo.insert((field, point, level), id);
        id
    }

    /// Instantiate an update expression at an absolute point, with reads
    /// resolving one level down.
    fn instantiate(&mut self, expr: &Expr, point: Point, level: u32) -> NodeId {
        match expr {
            Expr::Input { field, offset } => {
                let target = point.offset(*offset);
                if self.pattern.field(*field).kind == FieldKind::Static {
                    self.graph.static_input(*field, target)
                } else {
                    self.element(*field, target, level - 1)
                }
            }
            Expr::Const(v) => self.graph.constant(*v),
            Expr::Param(p) => self.graph.param(*p),
            Expr::Unary { op, arg } => {
                let a = self.instantiate(arg, point, level);
                self.graph.unary(*op, a)
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.instantiate(lhs, point, level);
                let r = self.instantiate(rhs, point, level);
                self.graph.binary(*op, l, r)
            }
            Expr::Select { cond, then_, else_ } => {
                let c = self.instantiate(cond, point, level);
                let t = self.instantiate(then_, point, level);
                let e = self.instantiate(else_, point, level);
                self.graph.select(c, t, e)
            }
        }
    }
}

/// Closed-form count of the operations a reuse-free expression *tree* for
/// this cone would contain. Computed by the vector recurrence
/// `T_f(l) = ops(update_f) + Σ_{f'} mult(f, f') · T_{f'}(l − 1)`, `T_f(0)=0`,
/// where `mult(f, f')` counts (with multiplicity) the dynamic reads of `f'`
/// in the update of `f`. The result grows exponentially in depth, hence the
/// `f64` return type.
fn tree_op_count(pattern: &StencilPattern, window: Window, depth: u32) -> f64 {
    let dyn_fields = pattern.dynamic_fields();
    let n = dyn_fields.len();
    let index_of: HashMap<FieldId, usize> =
        dyn_fields.iter().enumerate().map(|(i, f)| (*f, i)).collect();

    // ops[i] and mult[i][j]: tree ops of one element of field i, and dynamic
    // read multiplicities of field j inside update of field i.
    let mut ops = vec![0.0f64; n];
    let mut mult = vec![vec![0.0f64; n]; n];
    for (i, f) in dyn_fields.iter().enumerate() {
        let update = pattern.update(*f).expect("validated");
        ops[i] = update.op_count() as f64;
        update.visit(&mut |e| {
            if let Expr::Input { field, .. } = e {
                if pattern.field(*field).kind == FieldKind::Dynamic {
                    mult[i][index_of[field]] += 1.0;
                }
            }
        });
    }

    let mut t = vec![0.0f64; n];
    for _ in 0..depth {
        let mut next = vec![0.0f64; n];
        for i in 0..n {
            next[i] = ops[i];
            for j in 0..n {
                next[i] += mult[i][j] * t[j];
            }
        }
        t = next;
    }
    t.iter().sum::<f64>() * window.area() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::BinaryOp;

    /// f'(x) = (f(x-1) + f(x) + f(x+1)) / 3
    fn avg_1d() -> StencilPattern {
        let mut p = StencilPattern::new(1).with_name("avg1d");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, crate::Offset::d1(-1)),
            Expr::input(f, crate::Offset::d1(0)),
            Expr::input(f, crate::Offset::d1(1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(3.0)))
            .unwrap();
        p
    }

    /// 2D 4-neighbour Jacobi.
    fn jacobi_2d() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("jacobi");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, crate::Offset::d2(0, -1)),
            Expr::input(f, crate::Offset::d2(-1, 0)),
            Expr::input(f, crate::Offset::d2(1, 0)),
            Expr::input(f, crate::Offset::d2(0, 1)),
        ]);
        p.set_update(
            f,
            Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)),
        )
        .unwrap();
        p
    }

    #[test]
    fn zero_depth_is_rejected() {
        let p = avg_1d();
        assert_eq!(
            Cone::build(&p, Window::line(1), 0).unwrap_err(),
            ConeError::ZeroDepth
        );
    }

    #[test]
    fn single_element_single_depth() {
        let p = avg_1d();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        assert_eq!(cone.inputs().len(), 3);
        assert_eq!(cone.outputs().len(), 1);
        // 2 adds + 1 div
        assert_eq!(cone.registers(), 3);
        assert_eq!(cone.tree_op_count(), 3.0);
    }

    #[test]
    fn input_window_grows_with_depth() {
        let p = avg_1d();
        for depth in 1..=4u32 {
            let cone = Cone::build(&p, Window::line(4), depth).unwrap();
            assert_eq!(cone.inputs().len() as u32, 4 + 2 * depth);
            let ext = cone.input_extent();
            assert_eq!(ext.count() as u32, 4 + 2 * depth);
        }
    }

    #[test]
    fn reuse_beats_tree_expansion() {
        let p = avg_1d();
        let cone = Cone::build(&p, Window::line(4), 3).unwrap();
        // The tree recurrence: T(1)=3, T(2)=3+3*3=12, T(3)=3+3*12=39; x4 outputs.
        assert_eq!(cone.tree_op_count(), 156.0);
        assert!(
            (cone.registers() as f64) < cone.tree_op_count(),
            "reuse must shrink the implementation: {} vs {}",
            cone.registers(),
            cone.tree_op_count()
        );
    }

    #[test]
    fn deeper_cones_share_intermediate_elements() {
        let p = jacobi_2d();
        let c1 = Cone::build(&p, Window::square(4), 1).unwrap();
        let c2 = Cone::build(&p, Window::square(4), 2).unwrap();
        // Depth-2 cone includes depth-1 work plus the next level, but reuse
        // keeps the growth far below doubling the tree.
        assert!(c2.registers() > c1.registers());
        assert!((c2.registers() as f64) < c2.tree_op_count());
    }

    #[test]
    fn jacobi_geometry_2d() {
        let p = jacobi_2d();
        let cone = Cone::build(&p, Window::square(2), 2).unwrap();
        let ext = cone.input_extent();
        assert_eq!(ext.lo, Point::d2(-2, -2));
        assert_eq!(ext.hi, Point::d2(3, 3));
        // Von-Neumann stencil does not read the corners, so actual inputs
        // are fewer than the bounding extent.
        assert!(cone.inputs().len() as u64 <= ext.count());
        assert!(!cone.inputs().is_empty());
        for inp in cone.inputs() {
            assert!(ext.contains(inp.point));
        }
    }

    #[test]
    fn eval_depth_two_matches_manual_iteration() {
        let p = avg_1d();
        let cone = Cone::build(&p, Window::line(1), 2).unwrap();
        // Base: f(x) = x for x in -2..=2.
        let read = |_f: FieldId, pt: Point| pt.x as f64;
        let out = cone.eval(read, &[]);
        assert_eq!(out.len(), 1);
        // One iteration of avg keeps f(x) = x (linear fixed point), so two
        // iterations at x=0 give 0.
        assert!((out[0].2 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn eval_quadratic_input() {
        let p = avg_1d();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        // f(x) = x^2 over {-1,0,1} -> avg = 2/3.
        let out = cone.eval(|_, pt| (pt.x * pt.x) as f64, &[]);
        assert!((out[0].2 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn static_fields_stay_at_level_zero() {
        let mut p = StencilPattern::new(1).with_name("relax");
        let f = p.add_field("f", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        // f' = (f(-1) + f(1)) * 0.5 + g(0)
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::binary(
                BinaryOp::Mul,
                Expr::binary(
                    BinaryOp::Add,
                    Expr::input(f, crate::Offset::d1(-1)),
                    Expr::input(f, crate::Offset::d1(1)),
                ),
                Expr::constant(0.5),
            ),
            Expr::input(g, crate::Offset::d1(0)),
        );
        p.set_update(f, e).unwrap();
        let cone = Cone::build(&p, Window::line(2), 3).unwrap();
        // Static inputs appear at every level's absolute points but always
        // read iteration-0 (frame) data; they never become dynamic inputs.
        assert!(!cone.static_inputs().is_empty());
        for si in cone.static_inputs() {
            assert_eq!(si.field, g);
        }
        for di in cone.inputs() {
            assert_eq!(di.field, f);
        }
    }

    #[test]
    fn signature_display_is_stable() {
        let p = jacobi_2d();
        let cone = Cone::build(&p, Window::square(3), 2).unwrap();
        assert_eq!(cone.signature().to_string(), "jacobi_w3x3_d2");
    }

    #[test]
    fn simplification_prunes_zero_taps() {
        // Kernel with a zero tap: f' = f(-1)*0 + f(0) — simplification must
        // remove the multiply and the add entirely.
        let mut p = StencilPattern::new(1).with_name("zerotap");
        let f = p.add_field("f", FieldKind::Dynamic);
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(f, crate::Offset::d1(-1)),
                Expr::constant(0.0),
            ),
            Expr::input(f, crate::Offset::d1(0)),
        );
        p.set_update(f, e.clone()).unwrap();
        let simplified = Cone::build(&p, Window::line(1), 1).unwrap();
        assert_eq!(simplified.registers(), 0);
        assert_eq!(simplified.inputs().len(), 1);
        let raw = Cone::build_with(&p, Window::line(1), 1, false).unwrap();
        assert_eq!(raw.registers(), 2);
        assert_eq!(raw.inputs().len(), 2);
    }

    #[test]
    fn multi_field_coupled_pattern() {
        // u' = v(0), v' = u(0) — a swap; depth 2 returns the original.
        let mut p = StencilPattern::new(1).with_name("swap");
        let u = p.add_field("u", FieldKind::Dynamic);
        let v = p.add_field("v", FieldKind::Dynamic);
        p.set_update(u, Expr::input(v, crate::Offset::d1(0))).unwrap();
        p.set_update(v, Expr::input(u, crate::Offset::d1(0))).unwrap();
        let cone = Cone::build(&p, Window::line(1), 2).unwrap();
        let out = cone.eval(
            |f, _| if f == u { 1.0 } else { 2.0 },
            &[],
        );
        let u_out = out.iter().find(|(f, _, _)| *f == u).unwrap().2;
        let v_out = out.iter().find(|(f, _, _)| *f == v).unwrap().2;
        assert_eq!(u_out, 1.0);
        assert_eq!(v_out, 2.0);
    }
}
