//! Content-addressed artifact caching for cone construction.
//!
//! Cone construction is deterministic: the cone of one `(pattern, window,
//! depth, simplify)` quadruple is always the same value. [`ConeCache`]
//! exploits that by interning built cones behind `Arc`s keyed by the
//! pattern's structural [fingerprint](crate::StencilPattern::fingerprint),
//! so every consumer of a shape — the synthesis simulator's fused-pair
//! probes, the design-space explorer's facts pass, the simulator's cone-DAG
//! engines, the VHDL backend — shares one build instead of repeating it.
//!
//! The cache is concurrency-safe (`Arc<Mutex<…>>` inside, cheap to clone,
//! one shared instance per session) and counts hits and misses so callers
//! can *prove* reuse happened (see the flow-level acceptance tests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::cone::{Cone, ConeError};
use crate::geometry::Window;
use crate::pattern::StencilPattern;

/// Hit/miss counters of one artifact cache, snapshotted by `stats()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: usize,
    /// Lookups that had to build (and then stored the result).
    pub misses: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }
}

/// Identity of one cone build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ConeKey {
    pattern: u64,
    window: Window,
    depth: u32,
    simplify: bool,
}

#[derive(Debug, Default)]
struct ConeCacheInner {
    map: Mutex<HashMap<ConeKey, Arc<Cone>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A concurrency-safe, content-keyed store of built [`Cone`]s.
///
/// Cloning is cheap and shares the underlying map — clone one cache into
/// every component that builds cones and they will deduplicate work.
///
/// ```
/// use isl_ir::{cache::ConeCache, StencilPattern, FieldKind, Expr, Offset, Window};
/// let mut p = StencilPattern::new(1);
/// let f = p.add_field("f", FieldKind::Dynamic);
/// p.set_update(f, Expr::input(f, Offset::d1(-1))).unwrap();
/// let cache = ConeCache::new();
/// let a = cache.get_or_build(&p, Window::line(2), 1, true).unwrap();
/// let b = cache.get_or_build(&p, Window::line(2), 1, true).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ConeCache {
    inner: Arc<ConeCacheInner>,
}

impl ConeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cone of `(pattern, window, depth, simplify)`: served from the
    /// cache when present, built (and stored) otherwise.
    ///
    /// The expensive build runs *outside* the lock, so concurrent callers
    /// never serialise on each other's construction; racing builders of the
    /// same key each count a miss and the first insertion wins.
    ///
    /// # Errors
    ///
    /// The [`ConeError`] of [`Cone::build_with`].
    pub fn get_or_build(
        &self,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        simplify: bool,
    ) -> Result<Arc<Cone>, ConeError> {
        let key = ConeKey {
            pattern: pattern.fingerprint(),
            window,
            depth,
            simplify,
        };
        if let Some(hit) = self.inner.map.lock().expect("cone cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(Cone::build_with(pattern, window, depth, simplify)?);
        let mut map = self.inner.map.lock().expect("cone cache");
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct cones currently stored.
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("cone cache").len()
    }

    /// Whether the cache holds no cones.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::geometry::Offset;
    use crate::ops::BinaryOp;
    use crate::pattern::FieldKind;

    fn avg() -> StencilPattern {
        let mut p = StencilPattern::new(1).with_name("avg");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d1(-1)),
            Expr::input(f, Offset::d1(0)),
            Expr::input(f, Offset::d1(1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(3.0)))
            .unwrap();
        p
    }

    #[test]
    fn distinct_shapes_are_distinct_entries() {
        let p = avg();
        let cache = ConeCache::new();
        cache.get_or_build(&p, Window::line(2), 1, true).unwrap();
        cache.get_or_build(&p, Window::line(2), 2, true).unwrap();
        cache.get_or_build(&p, Window::line(3), 1, true).unwrap();
        cache.get_or_build(&p, Window::line(2), 1, false).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn different_patterns_do_not_collide() {
        let a = avg();
        let mut b = avg();
        let f = crate::pattern::FieldId::new(0);
        b.set_update(f, Expr::input(f, Offset::d1(1))).unwrap();
        let cache = ConeCache::new();
        let ca = cache.get_or_build(&a, Window::line(1), 1, true).unwrap();
        let cb = cache.get_or_build(&b, Window::line(1), 1, true).unwrap();
        assert_ne!(ca.registers(), cb.registers());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cached_cone_is_bit_identical_to_cold_build() {
        let p = avg();
        let cache = ConeCache::new();
        let warm = cache.get_or_build(&p, Window::line(3), 2, true).unwrap();
        let cold = Cone::build(&p, Window::line(3), 2).unwrap();
        assert_eq!(warm.registers(), cold.registers());
        assert_eq!(warm.inputs(), cold.inputs());
        let read = |_f, pt: crate::geometry::Point| pt.x as f64 * 0.37;
        let a = warm.eval(read, &[]);
        let b = cold.eval(read, &[]);
        for ((_, _, x), (_, _, y)) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn errors_are_not_cached() {
        let p = avg();
        let cache = ConeCache::new();
        assert!(cache.get_or_build(&p, Window::line(1), 0, true).is_err());
        assert!(cache.is_empty());
    }
}
