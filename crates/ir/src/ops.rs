//! Operation kinds supported by the stencil IR.
//!
//! The set is chosen to cover the paper's two case studies — the iterative
//! Gaussian filter (adds, constant multiplies, divides by powers of two) and
//! the Chambolle total-variation algorithm (general multiply/divide, square
//! root, min/max/abs for projections) — plus comparisons and selection so
//! data-dependent clamping can be expressed.

use std::fmt;

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Absolute value.
    Abs,
    /// Square root (Chambolle's gradient norm needs it).
    Sqrt,
}

impl UnaryOp {
    /// Apply the operation to an `f64` (the functional semantics used by the
    /// simulator; hardware uses fixed point, see `isl-fpga`).
    pub fn apply(&self, a: f64) -> f64 {
        match self {
            UnaryOp::Neg => -a,
            UnaryOp::Abs => a.abs(),
            UnaryOp::Sqrt => a.sqrt(),
        }
    }

    /// Stable lowercase mnemonic (used in VHDL signal names and reports).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Abs => "abs",
            UnaryOp::Sqrt => "sqrt",
        }
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than comparison, producing 1.0 or 0.0.
    Lt,
    /// Less-or-equal comparison, producing 1.0 or 0.0.
    Le,
    /// Greater-than comparison, producing 1.0 or 0.0.
    Gt,
    /// Greater-or-equal comparison, producing 1.0 or 0.0.
    Ge,
}

impl BinaryOp {
    /// Apply the operation to two `f64` values.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Lt => f64::from(a < b),
            BinaryOp::Le => f64::from(a <= b),
            BinaryOp::Gt => f64::from(a > b),
            BinaryOp::Ge => f64::from(a >= b),
        }
    }

    /// Whether `op(a, b) == op(b, a)` for all inputs. Commutative operands
    /// are stored in canonical order by the hash-consing graph so that more
    /// subexpressions unify (more register reuse).
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Mul | BinaryOp::Min | BinaryOp::Max
        )
    }

    /// Stable lowercase mnemonic (used in VHDL signal names and reports).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BinaryOp::Add => "add",
            BinaryOp::Sub => "sub",
            BinaryOp::Mul => "mul",
            BinaryOp::Div => "div",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Lt => "lt",
            BinaryOp::Le => "le",
            BinaryOp::Gt => "gt",
            BinaryOp::Ge => "ge",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A uniform classification of every operation node in a [`crate::Graph`],
/// used for operation statistics, technology mapping and delay models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// A unary operation.
    Unary(UnaryOp),
    /// A binary operation.
    Binary(BinaryOp),
    /// A 2-to-1 multiplexer driven by a condition (`cond ? a : b`).
    Select,
}

impl OpKind {
    /// All operation kinds, in a stable order (useful for report tables).
    pub fn all() -> &'static [OpKind] {
        use BinaryOp::*;
        use UnaryOp::*;
        const ALL: &[OpKind] = &[
            OpKind::Unary(Neg),
            OpKind::Unary(Abs),
            OpKind::Unary(Sqrt),
            OpKind::Binary(Add),
            OpKind::Binary(Sub),
            OpKind::Binary(Mul),
            OpKind::Binary(Div),
            OpKind::Binary(Min),
            OpKind::Binary(Max),
            OpKind::Binary(Lt),
            OpKind::Binary(Le),
            OpKind::Binary(Gt),
            OpKind::Binary(Ge),
            OpKind::Select,
        ];
        ALL
    }

    /// Stable lowercase mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Unary(u) => u.mnemonic(),
            OpKind::Binary(b) => b.mnemonic(),
            OpKind::Select => "sel",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Neg.apply(2.5), -2.5);
        assert_eq!(UnaryOp::Abs.apply(-3.0), 3.0);
        assert_eq!(UnaryOp::Sqrt.apply(9.0), 3.0);
    }

    #[test]
    fn binary_semantics() {
        assert_eq!(BinaryOp::Add.apply(1.0, 2.0), 3.0);
        assert_eq!(BinaryOp::Sub.apply(1.0, 2.0), -1.0);
        assert_eq!(BinaryOp::Mul.apply(3.0, 4.0), 12.0);
        assert_eq!(BinaryOp::Div.apply(1.0, 4.0), 0.25);
        assert_eq!(BinaryOp::Min.apply(1.0, 2.0), 1.0);
        assert_eq!(BinaryOp::Max.apply(1.0, 2.0), 2.0);
        assert_eq!(BinaryOp::Lt.apply(1.0, 2.0), 1.0);
        assert_eq!(BinaryOp::Ge.apply(1.0, 2.0), 0.0);
    }

    #[test]
    fn commutativity_flags() {
        assert!(BinaryOp::Add.is_commutative());
        assert!(BinaryOp::Mul.is_commutative());
        assert!(BinaryOp::Min.is_commutative());
        assert!(BinaryOp::Max.is_commutative());
        assert!(!BinaryOp::Sub.is_commutative());
        assert!(!BinaryOp::Div.is_commutative());
        assert!(!BinaryOp::Lt.is_commutative());
    }

    #[test]
    fn all_kinds_have_unique_mnemonics() {
        let mut seen = std::collections::HashSet::new();
        for k in OpKind::all() {
            assert!(seen.insert(k.mnemonic()), "duplicate mnemonic {k}");
        }
        assert_eq!(OpKind::all().len(), 14);
    }
}
