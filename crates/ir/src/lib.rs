//! # isl-ir — intermediate representation for iterative stencil loops
//!
//! This crate is the foundation of the ISL HLS flow reproduced from
//! *"A High-Level Synthesis Flow for the Implementation of Iterative Stencil
//! Loop Algorithms on FPGA Devices"* (Nacci et al., DAC 2013). It provides:
//!
//! * [`StencilPattern`] — the single-iteration dependency pattern of an ISL,
//!   i.e. the output of the paper's symbolic-execution phase: one update
//!   expression per dynamic field, written over *relative* neighbour offsets
//!   (this is exactly what "domain narrowness" plus "translational
//!   invariance" allow);
//! * [`Expr`] — the surface expression tree used inside a pattern;
//! * [`Graph`] — a hash-consed dataflow DAG. Interning nodes implements the
//!   paper's *register reuse* rule: "for each operation between two elements,
//!   we store the result in a register: whenever the operation appears more
//!   than once, the register is reused" (Section 3.2, Figure 4);
//! * [`Cone`] — a multi-iteration compute module of a given *depth* `m` and
//!   *output window* `w × h`, built by unrolling the dependencies of the
//!   pattern through `m` iterations into a single shared [`Graph`].
//!
//! ## Quickstart
//!
//! ```
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset, Window, Cone};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1D three-point average: f'(x) = (f(x-1) + f(x) + f(x+1)) / 3
//! let mut pattern = StencilPattern::new(1);
//! let f = pattern.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::binary(
//!     BinaryOp::Add,
//!     Expr::binary(
//!         BinaryOp::Add,
//!         Expr::input(f, Offset::d1(-1)),
//!         Expr::input(f, Offset::d1(0)),
//!     ),
//!     Expr::input(f, Offset::d1(1)),
//! );
//! pattern.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(3.0)))?;
//!
//! // A cone of depth 2 computing a window of 4 output elements needs
//! // 4 + 2*1*2 = 8 input elements, and register reuse makes the interior
//! // adds shared between adjacent outputs.
//! let cone = Cone::build(&pattern, Window::line(4), 2)?;
//! assert_eq!(cone.inputs().len(), 8);
//! assert!(cone.registers() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod compose;
mod cone;
mod expr;
mod geometry;
mod graph;
mod ops;
mod pattern;

pub use cache::{CacheStats, ConeCache};
pub use cone::{Cone, ConeError, ConeInput, ConeOutput, ConeSignature};
pub use expr::Expr;
pub use geometry::{Extent, Offset, Point, Window};
pub use graph::{Graph, Leaf, Node, NodeId, OpStats};
pub use ops::{BinaryOp, OpKind, UnaryOp};
pub use pattern::{
    FieldDecl, FieldId, FieldKind, ParamDecl, ParamId, PatternError, StencilPattern,
};
