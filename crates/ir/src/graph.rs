//! Hash-consed dataflow graphs.
//!
//! Every operation node inserted into a [`Graph`] is *interned*: inserting
//! the same operation on the same operands twice returns the same
//! [`NodeId`]. In hardware terms each operation node is one register (its
//! result is stored once and wired to every consumer), so interning is the
//! literal implementation of the paper's register-reuse rule (Section 3.2,
//! Figure 4). The number of non-leaf nodes of a graph is the `Reg` quantity
//! used by the area-estimation model (Eq. 1).

use std::collections::HashMap;
use std::fmt;

use crate::geometry::Point;
use crate::ops::{BinaryOp, OpKind, UnaryOp};
use crate::pattern::{FieldId, ParamId};

/// Identifier of a node inside one [`Graph`].
///
/// Ids are dense and topologically ordered: every operand of a node has a
/// strictly smaller id than the node itself (children must exist before a
/// parent can be interned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw dense index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A bit-exact constant wrapper so `f64` constants can be hashed and interned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstValue(u64);

impl ConstValue {
    /// Wrap a constant. NaNs are canonicalised to a single representation so
    /// interning stays consistent.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            ConstValue(f64::NAN.to_bits())
        } else if v == 0.0 {
            // Fold -0.0 and +0.0 together.
            ConstValue(0f64.to_bits())
        } else {
            ConstValue(v.to_bits())
        }
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// Leaf (input) nodes of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Leaf {
    /// An element of a *dynamic* field at the cone's base iteration, at an
    /// absolute point in cone-local coordinates.
    Input {
        /// Field read.
        field: FieldId,
        /// Cone-local coordinate.
        point: Point,
    },
    /// An element of a *static* (frame-constant) field.
    Static {
        /// Field read.
        field: FieldId,
        /// Cone-local coordinate.
        point: Point,
    },
    /// A literal constant.
    Const(ConstValue),
    /// A scalar runtime parameter.
    Param(ParamId),
}

/// One node of a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// An input (leaf) node.
    Leaf(Leaf),
    /// A unary operation.
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Operand.
        arg: NodeId,
    },
    /// A binary operation.
    Binary {
        /// Operation.
        op: BinaryOp,
        /// Left operand.
        lhs: NodeId,
        /// Right operand.
        rhs: NodeId,
    },
    /// A 2-to-1 multiplexer.
    Select {
        /// Condition operand (non-zero selects `then_`).
        cond: NodeId,
        /// Selected when the condition holds.
        then_: NodeId,
        /// Selected otherwise.
        else_: NodeId,
    },
}

impl Node {
    /// Classification of this node's operation, or `None` for leaves.
    pub fn op_kind(&self) -> Option<OpKind> {
        match self {
            Node::Leaf(_) => None,
            Node::Unary { op, .. } => Some(OpKind::Unary(*op)),
            Node::Binary { op, .. } => Some(OpKind::Binary(*op)),
            Node::Select { .. } => Some(OpKind::Select),
        }
    }

    /// Operand ids, in order (empty for leaves).
    pub fn operands(&self) -> Vec<NodeId> {
        match self {
            Node::Leaf(_) => Vec::new(),
            Node::Unary { arg, .. } => vec![*arg],
            Node::Binary { lhs, rhs, .. } => vec![*lhs, *rhs],
            Node::Select { cond, then_, else_ } => vec![*cond, *then_, *else_],
        }
    }
}

/// Operation-count statistics of a graph (or of its reachable subset).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    counts: std::collections::BTreeMap<OpKind, usize>,
}

impl OpStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one occurrence of `kind`.
    pub fn record(&mut self, kind: OpKind) {
        *self.counts.entry(kind).or_insert(0) += 1;
    }

    /// Occurrences of `kind`.
    pub fn count(&self, kind: OpKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total operation count.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Iterate over `(kind, count)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, usize)> + '_ {
        self.counts.iter().map(|(k, c)| (*k, *c))
    }

    /// Merge another statistics object into this one.
    pub fn merge(&mut self, other: &OpStats) {
        for (k, c) in other.iter() {
            *self.counts.entry(k).or_insert(0) += c;
        }
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, c) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}:{c}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// A hash-consed dataflow DAG.
///
/// ```
/// use isl_ir::{Graph, BinaryOp, FieldId, Point};
/// let mut g = Graph::new();
/// let f = FieldId::new(0);
/// let a = g.input(f, Point::d1(0));
/// let b = g.input(f, Point::d1(1));
/// let s1 = g.binary(BinaryOp::Add, a, b);
/// let s2 = g.binary(BinaryOp::Add, b, a); // commutative: interned to s1
/// assert_eq!(s1, s2);
/// assert_eq!(g.register_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    nodes: Vec<Node>,
    intern: HashMap<Node, NodeId>,
    simplify: bool,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// A new graph with algebraic simplification (constant folding, identity
    /// elimination) enabled — the default the flow uses to emit "slim" VHDL.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            intern: HashMap::new(),
            simplify: true,
        }
    }

    /// A new graph that interns nodes but performs *no* algebraic rewrites.
    /// Used by ablation benches to quantify what simplification buys.
    pub fn without_simplification() -> Self {
        Graph {
            simplify: false,
            ..Self::new()
        }
    }

    /// Number of nodes (leaves + operations).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate over `(id, node)` pairs in topological (id) order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of operation (non-leaf) nodes: the paper's `Reg` quantity —
    /// every operation result is stored in one shared register.
    pub fn register_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !matches!(n, Node::Leaf(_)))
            .count()
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.len() - self.register_count()
    }

    fn push(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.intern.get(&node) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.intern.insert(node, id);
        id
    }

    /// Intern a dynamic-field input leaf.
    pub fn input(&mut self, field: FieldId, point: Point) -> NodeId {
        self.push(Node::Leaf(Leaf::Input { field, point }))
    }

    /// Intern a static-field input leaf.
    pub fn static_input(&mut self, field: FieldId, point: Point) -> NodeId {
        self.push(Node::Leaf(Leaf::Static { field, point }))
    }

    /// Intern a constant leaf.
    pub fn constant(&mut self, v: f64) -> NodeId {
        self.push(Node::Leaf(Leaf::Const(ConstValue::new(v))))
    }

    /// Intern a parameter leaf.
    pub fn param(&mut self, p: ParamId) -> NodeId {
        self.push(Node::Leaf(Leaf::Param(p)))
    }

    fn const_of(&self, id: NodeId) -> Option<f64> {
        match self.node(id) {
            Node::Leaf(Leaf::Const(c)) => Some(c.value()),
            _ => None,
        }
    }

    /// Intern a unary operation (with simplification when enabled).
    pub fn unary(&mut self, op: UnaryOp, arg: NodeId) -> NodeId {
        if self.simplify {
            if let Some(a) = self.const_of(arg) {
                return self.constant(op.apply(a));
            }
            // neg(neg(x)) = x ; abs(abs(x)) = abs(x)
            match (op, self.node(arg)) {
                (UnaryOp::Neg, Node::Unary { op: UnaryOp::Neg, arg: inner }) => return *inner,
                (UnaryOp::Abs, Node::Unary { op: UnaryOp::Abs, .. }) => return arg,
                _ => {}
            }
        }
        self.push(Node::Unary { op, arg })
    }

    /// Intern a binary operation. Commutative operations are stored in
    /// canonical operand order so `a + b` and `b + a` share one register.
    ///
    /// Simplification (when enabled) folds constants and applies the safe
    /// finite-arithmetic identities `x+0`, `x-0`, `x-x`, `x*1`, `x*0`,
    /// `x/1`, `min/max(x,x)`.
    pub fn binary(&mut self, op: BinaryOp, lhs: NodeId, rhs: NodeId) -> NodeId {
        let (mut lhs, mut rhs) = (lhs, rhs);
        if op.is_commutative() && rhs < lhs {
            std::mem::swap(&mut lhs, &mut rhs);
        }
        if self.simplify {
            if let (Some(a), Some(b)) = (self.const_of(lhs), self.const_of(rhs)) {
                return self.constant(op.apply(a, b));
            }
            let lc = self.const_of(lhs);
            let rc = self.const_of(rhs);
            match op {
                BinaryOp::Add => {
                    if rc == Some(0.0) {
                        return lhs;
                    }
                    if lc == Some(0.0) {
                        return rhs;
                    }
                }
                BinaryOp::Sub => {
                    if rc == Some(0.0) {
                        return lhs;
                    }
                    if lhs == rhs {
                        return self.constant(0.0);
                    }
                }
                BinaryOp::Mul => {
                    if rc == Some(1.0) {
                        return lhs;
                    }
                    if lc == Some(1.0) {
                        return rhs;
                    }
                    if rc == Some(0.0) || lc == Some(0.0) {
                        return self.constant(0.0);
                    }
                }
                BinaryOp::Div
                    if rc == Some(1.0) => {
                        return lhs;
                    }
                BinaryOp::Min | BinaryOp::Max
                    if lhs == rhs => {
                        return lhs;
                    }
                _ => {}
            }
        }
        self.push(Node::Binary { op, lhs, rhs })
    }

    /// Intern a multiplexer. With simplification, constant conditions select
    /// a branch and `sel(c, x, x)` collapses to `x`.
    pub fn select(&mut self, cond: NodeId, then_: NodeId, else_: NodeId) -> NodeId {
        if self.simplify {
            if let Some(c) = self.const_of(cond) {
                return if c != 0.0 { then_ } else { else_ };
            }
            if then_ == else_ {
                return then_;
            }
        }
        self.push(Node::Select { cond, then_, else_ })
    }

    /// Evaluate every node with `f64` semantics; `leaf_value` supplies the
    /// value of each leaf. Returns the value of every node, indexable by
    /// [`NodeId::index`].
    pub fn eval<F: Fn(&Leaf) -> f64>(&self, leaf_value: F) -> Vec<f64> {
        let mut vals = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match node {
                Node::Leaf(l) => leaf_value(l),
                Node::Unary { op, arg } => op.apply(vals[arg.index()]),
                Node::Binary { op, lhs, rhs } => op.apply(vals[lhs.index()], vals[rhs.index()]),
                Node::Select { cond, then_, else_ } => {
                    if vals[cond.index()] != 0.0 {
                        vals[then_.index()]
                    } else {
                        vals[else_.index()]
                    }
                }
            };
            vals.push(v);
        }
        vals
    }

    /// ASAP logic level of every node: leaves are level 0, an operation is
    /// one more than its deepest operand. Used for pipeline staging in the
    /// VHDL backend and for latency estimation.
    pub fn asap_levels(&self) -> Vec<u32> {
        let mut levels = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let l = match node {
                Node::Leaf(_) => 0,
                _ => {
                    1 + node
                        .operands()
                        .iter()
                        .map(|o| levels[o.index()])
                        .max()
                        .unwrap_or(0)
                }
            };
            levels.push(l);
        }
        levels
    }

    /// Longest weighted path through the graph, where `delay(node)` gives the
    /// cost of traversing a node (leaves usually cost 0). This is the
    /// combinational critical path used for frequency estimation.
    pub fn longest_path<F: Fn(&Node) -> f64>(&self, delay: F) -> f64 {
        let mut cp = vec![0.0f64; self.nodes.len()];
        let mut best = 0.0f64;
        for (i, node) in self.nodes.iter().enumerate() {
            let inputs_max = node
                .operands()
                .iter()
                .map(|o| cp[o.index()])
                .fold(0.0, f64::max);
            cp[i] = inputs_max + delay(node);
            best = best.max(cp[i]);
        }
        best
    }

    /// Reachability mask from a set of root nodes (e.g. cone outputs). Used
    /// to exclude orphans created by simplification from register counts.
    pub fn reachable(&self, roots: &[NodeId]) -> Vec<bool> {
        let mut mask = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if mask[id.index()] {
                continue;
            }
            mask[id.index()] = true;
            stack.extend(self.node(id).operands());
        }
        mask
    }

    /// Operation statistics over the nodes selected by `mask` (pair with
    /// [`Graph::reachable`]); pass `None` to count every node.
    pub fn op_stats(&self, mask: Option<&[bool]>) -> OpStats {
        let mut stats = OpStats::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(m) = mask {
                if !m[i] {
                    continue;
                }
            }
            if let Some(kind) = node.op_kind() {
                stats.record(kind);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid() -> FieldId {
        FieldId::new(0)
    }

    #[test]
    fn interning_reuses_nodes() {
        let mut g = Graph::new();
        let a = g.input(fid(), Point::d1(0));
        let b = g.input(fid(), Point::d1(1));
        let s1 = g.binary(BinaryOp::Add, a, b);
        let s2 = g.binary(BinaryOp::Add, a, b);
        assert_eq!(s1, s2);
        assert_eq!(g.register_count(), 1);
        assert_eq!(g.leaf_count(), 2);
    }

    #[test]
    fn commutative_canonicalisation() {
        let mut g = Graph::new();
        let a = g.input(fid(), Point::d1(0));
        let b = g.input(fid(), Point::d1(1));
        assert_eq!(g.binary(BinaryOp::Add, a, b), g.binary(BinaryOp::Add, b, a));
        assert_eq!(g.binary(BinaryOp::Mul, a, b), g.binary(BinaryOp::Mul, b, a));
        // Non-commutative ops must NOT unify.
        assert_ne!(g.binary(BinaryOp::Sub, a, b), g.binary(BinaryOp::Sub, b, a));
    }

    #[test]
    fn constant_folding() {
        let mut g = Graph::new();
        let two = g.constant(2.0);
        let three = g.constant(3.0);
        let s = g.binary(BinaryOp::Add, two, three);
        assert_eq!(g.const_of(s), Some(5.0));
        let r = g.unary(UnaryOp::Sqrt, s);
        assert!((g.const_of(r).unwrap() - 5.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn identity_simplifications() {
        let mut g = Graph::new();
        let x = g.input(fid(), Point::d1(0));
        let zero = g.constant(0.0);
        let one = g.constant(1.0);
        assert_eq!(g.binary(BinaryOp::Add, x, zero), x);
        assert_eq!(g.binary(BinaryOp::Sub, x, zero), x);
        assert_eq!(g.binary(BinaryOp::Mul, x, one), x);
        assert_eq!(g.binary(BinaryOp::Div, x, one), x);
        let z = g.binary(BinaryOp::Mul, x, zero);
        assert_eq!(g.const_of(z), Some(0.0));
        let sub_self = g.binary(BinaryOp::Sub, x, x);
        assert_eq!(g.const_of(sub_self), Some(0.0));
        assert_eq!(g.binary(BinaryOp::Min, x, x), x);
    }

    #[test]
    fn no_simplification_mode_keeps_structure() {
        let mut g = Graph::without_simplification();
        let x = g.input(fid(), Point::d1(0));
        let zero = g.constant(0.0);
        let s = g.binary(BinaryOp::Add, x, zero);
        assert_ne!(s, x);
        assert_eq!(g.register_count(), 1);
    }

    #[test]
    fn select_simplification() {
        let mut g = Graph::new();
        let x = g.input(fid(), Point::d1(0));
        let y = g.input(fid(), Point::d1(1));
        let t = g.constant(1.0);
        assert_eq!(g.select(t, x, y), x);
        let f = g.constant(0.0);
        assert_eq!(g.select(f, x, y), y);
        assert_eq!(g.select(x, y, y), y);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut g = Graph::new();
        let a = g.input(fid(), Point::d1(0));
        let b = g.input(fid(), Point::d1(1));
        let s = g.binary(BinaryOp::Add, a, b);
        let h = g.constant(0.5);
        let avg = g.binary(BinaryOp::Mul, s, h);
        let vals = g.eval(|leaf| match leaf {
            Leaf::Input { point, .. } => point.x as f64 + 1.0, // 1.0, 2.0
            Leaf::Const(c) => c.value(),
            _ => 0.0,
        });
        assert!((vals[avg.index()] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn asap_levels_and_critical_path() {
        let mut g = Graph::new();
        let a = g.input(fid(), Point::d1(0));
        let b = g.input(fid(), Point::d1(1));
        let c = g.input(fid(), Point::d1(2));
        let ab = g.binary(BinaryOp::Add, a, b);
        let abc = g.binary(BinaryOp::Add, ab, c);
        let levels = g.asap_levels();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[ab.index()], 1);
        assert_eq!(levels[abc.index()], 2);
        let cp = g.longest_path(|n| if matches!(n, Node::Leaf(_)) { 0.0 } else { 2.0 });
        assert_eq!(cp, 4.0);
    }

    #[test]
    fn reachability_excludes_orphans() {
        let mut g = Graph::new();
        let a = g.input(fid(), Point::d1(0));
        let b = g.input(fid(), Point::d1(1));
        let used = g.binary(BinaryOp::Add, a, b);
        let _orphan = g.binary(BinaryOp::Mul, a, b);
        let mask = g.reachable(&[used]);
        let stats = g.op_stats(Some(&mask));
        assert_eq!(stats.total(), 1);
        assert_eq!(stats.count(OpKind::Binary(BinaryOp::Add)), 1);
        assert_eq!(g.op_stats(None).total(), 2);
    }

    #[test]
    fn const_value_normalises_zero_and_nan() {
        assert_eq!(ConstValue::new(0.0), ConstValue::new(-0.0));
        assert_eq!(ConstValue::new(f64::NAN), ConstValue::new(-f64::NAN));
    }
}
