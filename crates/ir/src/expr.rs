//! Surface expression trees.
//!
//! An [`Expr`] is the *per-iteration* update function of one field, written
//! over relative [`Offset`]s — the direct product of the symbolic-execution
//! phase. Expression trees are deliberately plain trees (with possible
//! duplication); sharing is introduced later when a tree is instantiated into
//! a hash-consed [`crate::Graph`] during cone construction, which is where
//! the paper's register reuse happens.

use std::fmt;

use crate::geometry::Offset;
use crate::ops::{BinaryOp, UnaryOp};
use crate::pattern::{FieldId, ParamId};

/// A per-iteration scalar expression over neighbouring elements.
///
/// ```
/// use isl_ir::{Expr, BinaryOp, Offset, FieldId};
/// let f = FieldId::new(0);
/// // (f(-1) + f(+1)) * 0.5
/// let e = Expr::binary(
///     BinaryOp::Mul,
///     Expr::binary(
///         BinaryOp::Add,
///         Expr::input(f, Offset::d1(-1)),
///         Expr::input(f, Offset::d1(1)),
///     ),
///     Expr::constant(0.5),
/// );
/// assert_eq!(e.radius(), 1);
/// assert_eq!(e.op_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Read a field at a relative offset. If the field is *dynamic* the read
    /// refers to the previous iteration's value; if it is *static* (e.g. the
    /// observed image in Chambolle) it refers to the constant input frame.
    Input {
        /// Which field is read.
        field: FieldId,
        /// Relative neighbour offset.
        offset: Offset,
    },
    /// A literal constant.
    Const(f64),
    /// A scalar runtime parameter (e.g. Chambolle's `tau` or `lambda`).
    Param(ParamId),
    /// A unary operation.
    Unary {
        /// Operation.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operation.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond != 0 ? then_ : else_` — a hardware multiplexer.
    Select {
        /// Condition (non-zero selects `then_`).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then_: Box<Expr>,
        /// Value when the condition does not hold.
        else_: Box<Expr>,
    },
}

impl Expr {
    /// Read `field` at `offset`.
    pub fn input(field: FieldId, offset: Offset) -> Expr {
        Expr::Input { field, offset }
    }

    /// A literal constant.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// A scalar parameter reference.
    pub fn param(p: ParamId) -> Expr {
        Expr::Param(p)
    }

    /// Apply a unary operation.
    pub fn unary(op: UnaryOp, arg: Expr) -> Expr {
        Expr::Unary { op, arg: Box::new(arg) }
    }

    /// Apply a binary operation.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Build a multiplexer expression.
    pub fn select(cond: Expr, then_: Expr, else_: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then_: Box::new(then_),
            else_: Box::new(else_),
        }
    }

    /// Sum of a sequence of expressions (empty sum is `0.0`).
    pub fn sum<I: IntoIterator<Item = Expr>>(terms: I) -> Expr {
        let mut it = terms.into_iter();
        let first = match it.next() {
            Some(e) => e,
            None => return Expr::Const(0.0),
        };
        it.fold(first, |acc, e| Expr::binary(BinaryOp::Add, acc, e))
    }

    /// Evaluate the expression with `f64` semantics.
    ///
    /// `read(field, offset)` supplies neighbour values; `param(id)` supplies
    /// parameter values. This is the golden functional semantics used by the
    /// simulator and tests.
    pub fn eval<R, P>(&self, read: &R, param: &P) -> f64
    where
        R: Fn(FieldId, Offset) -> f64,
        P: Fn(ParamId) -> f64,
    {
        match self {
            Expr::Input { field, offset } => read(*field, *offset),
            Expr::Const(v) => *v,
            Expr::Param(p) => param(*p),
            Expr::Unary { op, arg } => op.apply(arg.eval(read, param)),
            Expr::Binary { op, lhs, rhs } => op.apply(lhs.eval(read, param), rhs.eval(read, param)),
            Expr::Select { cond, then_, else_ } => {
                if cond.eval(read, param) != 0.0 {
                    then_.eval(read, param)
                } else {
                    else_.eval(read, param)
                }
            }
        }
    }

    /// Evaluate like [`Expr::eval`], but pass every intermediate result
    /// through `post` — the hook the quantised simulator uses to apply
    /// fixed-point rounding after each operation, mirroring the hardware
    /// data path at frame scale.
    pub fn eval_map<R, P, Q>(&self, read: &R, param: &P, post: &Q) -> f64
    where
        R: Fn(FieldId, Offset) -> f64,
        P: Fn(ParamId) -> f64,
        Q: Fn(f64) -> f64,
    {
        match self {
            Expr::Input { field, offset } => post(read(*field, *offset)),
            Expr::Const(v) => post(*v),
            Expr::Param(p) => post(param(*p)),
            Expr::Unary { op, arg } => post(op.apply(arg.eval_map(read, param, post))),
            Expr::Binary { op, lhs, rhs } => post(op.apply(
                lhs.eval_map(read, param, post),
                rhs.eval_map(read, param, post),
            )),
            Expr::Select { cond, then_, else_ } => {
                if cond.eval_map(read, param, post) != 0.0 {
                    then_.eval_map(read, param, post)
                } else {
                    else_.eval_map(read, param, post)
                }
            }
        }
    }

    /// Visit every node of the tree (pre-order).
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Input { .. } | Expr::Const(_) | Expr::Param(_) => {}
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Select { cond, then_, else_ } => {
                cond.visit(f);
                then_.visit(f);
                else_.visit(f);
            }
        }
    }

    /// All `(field, offset)` pairs read by this expression, deduplicated and
    /// sorted — the element's dependency footprint.
    pub fn reads(&self) -> Vec<(FieldId, Offset)> {
        let mut v = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Input { field, offset } = e {
                v.push((*field, *offset));
            }
        });
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Stencil radius: the maximum Chebyshev norm over all offsets read.
    /// Returns 0 for expressions that read nothing.
    pub fn radius(&self) -> u32 {
        let mut r = 0;
        self.visit(&mut |e| {
            if let Expr::Input { offset, .. } = e {
                r = r.max(offset.chebyshev());
            }
        });
        r
    }

    /// Number of operation nodes (unary + binary + select) in the tree,
    /// counting duplicates. Compare with the register count of the interned
    /// [`crate::Graph`] to measure how much reuse buys.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |e| {
            if matches!(e, Expr::Unary { .. } | Expr::Binary { .. } | Expr::Select { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Maximum depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Input { .. } | Expr::Const(_) | Expr::Param(_) => 1,
            Expr::Unary { arg, .. } => 1 + arg.depth(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.depth().max(rhs.depth()),
            Expr::Select { cond, then_, else_ } => {
                1 + cond.depth().max(then_.depth()).max(else_.depth())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Input { field, offset } => write!(f, "{field}{offset}"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(p) => write!(f, "{p}"),
            Expr::Unary { op, arg } => write!(f, "{op}({arg})"),
            Expr::Binary { op, lhs, rhs } => write!(f, "{op}({lhs}, {rhs})"),
            Expr::Select { cond, then_, else_ } => write!(f, "sel({cond}, {then_}, {else_})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: u16) -> FieldId {
        FieldId::new(i)
    }

    fn three_point_avg() -> Expr {
        Expr::binary(
            BinaryOp::Div,
            Expr::sum([
                Expr::input(fid(0), Offset::d1(-1)),
                Expr::input(fid(0), Offset::d1(0)),
                Expr::input(fid(0), Offset::d1(1)),
            ]),
            Expr::constant(3.0),
        )
    }

    #[test]
    fn eval_three_point_avg() {
        let e = three_point_avg();
        let v = e.eval(&|_, o| (o.dx + 2) as f64, &|_| 0.0); // reads 1, 2, 3
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reads_are_sorted_and_deduped() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::input(fid(0), Offset::d1(1)),
            Expr::binary(
                BinaryOp::Add,
                Expr::input(fid(0), Offset::d1(1)),
                Expr::input(fid(0), Offset::d1(-1)),
            ),
        );
        assert_eq!(
            e.reads(),
            vec![(fid(0), Offset::d1(-1)), (fid(0), Offset::d1(1))]
        );
    }

    #[test]
    fn radius_and_counts() {
        let e = three_point_avg();
        assert_eq!(e.radius(), 1);
        assert_eq!(e.op_count(), 3); // 2 adds + 1 div
        assert_eq!(e.depth(), 4);
    }

    #[test]
    fn empty_sum_is_zero() {
        let e = Expr::sum([]);
        assert_eq!(e.eval(&|_, _| 1.0, &|_| 1.0), 0.0);
    }

    #[test]
    fn select_semantics() {
        let e = Expr::select(
            Expr::binary(
                BinaryOp::Lt,
                Expr::input(fid(0), Offset::ZERO),
                Expr::constant(0.0),
            ),
            Expr::constant(-1.0),
            Expr::constant(1.0),
        );
        assert_eq!(e.eval(&|_, _| -5.0, &|_| 0.0), -1.0);
        assert_eq!(e.eval(&|_, _| 5.0, &|_| 0.0), 1.0);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::unary(UnaryOp::Sqrt, Expr::constant(2.0));
        assert_eq!(e.to_string(), "sqrt(2)");
    }
}
