//! Geometric primitives shared across the flow: relative offsets, absolute
//! points, output windows and rectangular extents.
//!
//! Everything is stored with three coordinates so that 1D, 2D and 3D stencils
//! share one representation; unused trailing coordinates are zero. The rank of
//! a stencil lives in [`crate::StencilPattern`], not here.

use std::fmt;

/// A relative displacement between a stencil output element and one of the
/// elements it reads, e.g. `f[y-1][x+1]` reads at offset `(dx=1, dy=-1)`.
///
/// Offsets are what "domain narrowness" bounds: a valid ISL pattern only uses
/// offsets with small magnitude (the stencil radius).
///
/// ```
/// use isl_ir::Offset;
/// let o = Offset::d2(1, -1);
/// assert_eq!(o.chebyshev(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Offset {
    /// Displacement along the innermost (x) axis.
    pub dx: i32,
    /// Displacement along the second (y) axis; zero for 1D stencils.
    pub dy: i32,
    /// Displacement along the third (z) axis; zero for 1D/2D stencils.
    pub dz: i32,
}

impl Offset {
    /// Offset for a 1D stencil.
    pub const fn d1(dx: i32) -> Self {
        Self { dx, dy: 0, dz: 0 }
    }

    /// Offset for a 2D stencil.
    pub const fn d2(dx: i32, dy: i32) -> Self {
        Self { dx, dy, dz: 0 }
    }

    /// Offset for a 3D stencil.
    pub const fn d3(dx: i32, dy: i32, dz: i32) -> Self {
        Self { dx, dy, dz }
    }

    /// The zero offset (the element itself).
    pub const ZERO: Self = Self { dx: 0, dy: 0, dz: 0 };

    /// Chebyshev (L-infinity) norm: the stencil radius contribution of this
    /// offset.
    pub fn chebyshev(&self) -> u32 {
        self.dx
            .unsigned_abs()
            .max(self.dy.unsigned_abs())
            .max(self.dz.unsigned_abs())
    }

    /// Component along axis `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    pub fn axis(&self, axis: usize) -> i32 {
        match axis {
            0 => self.dx,
            1 => self.dy,
            2 => self.dz,
            _ => panic!("offset axis out of range: {axis}"),
        }
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.dx, self.dy, self.dz)
    }
}

impl std::ops::Add for Offset {
    type Output = Offset;
    fn add(self, rhs: Offset) -> Offset {
        Offset {
            dx: self.dx + rhs.dx,
            dy: self.dy + rhs.dy,
            dz: self.dz + rhs.dz,
        }
    }
}

/// An absolute grid coordinate inside a cone's local coordinate system (or a
/// frame, for the simulator). Negative coordinates are legal inside cones:
/// the output window spans `0..w`, while deeper levels of the cone reach
/// *outside* that span by `radius × level` elements on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Innermost (x) coordinate.
    pub x: i32,
    /// Second (y) coordinate.
    pub y: i32,
    /// Third (z) coordinate.
    pub z: i32,
}

impl Point {
    /// A 1D point.
    pub const fn d1(x: i32) -> Self {
        Self { x, y: 0, z: 0 }
    }

    /// A 2D point.
    pub const fn d2(x: i32, y: i32) -> Self {
        Self { x, y, z: 0 }
    }

    /// A 3D point.
    pub const fn d3(x: i32, y: i32, z: i32) -> Self {
        Self { x, y, z }
    }

    /// The origin.
    pub const ORIGIN: Self = Self { x: 0, y: 0, z: 0 };

    /// Translate this point by a stencil offset.
    pub fn offset(&self, o: Offset) -> Point {
        Point {
            x: self.x + o.dx,
            y: self.y + o.dy,
            z: self.z + o.dz,
        }
    }

    /// Component along axis `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    pub fn axis(&self, axis: usize) -> i32 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("point axis out of range: {axis}"),
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{},{}]", self.x, self.y, self.z)
    }
}

/// The *output window* of a cone: the block of elements of iteration `i + m`
/// that one cone invocation produces (the paper's `Pn`, Section 1).
///
/// The paper illustrates square windows "for the sake of illustration"; we
/// support rectangular (and line, for 1D) windows as an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Window {
    /// Extent along x (elements).
    pub w: u32,
    /// Extent along y (elements); 1 for 1D stencils.
    pub h: u32,
    /// Extent along z (elements); 1 for 1D/2D stencils.
    pub d: u32,
}

impl Window {
    /// A square 2D window of side `side`.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0`.
    pub fn square(side: u32) -> Self {
        assert!(side > 0, "window side must be positive");
        Self { w: side, h: side, d: 1 }
    }

    /// A rectangular 2D window.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn rect(w: u32, h: u32) -> Self {
        assert!(w > 0 && h > 0, "window dimensions must be positive");
        Self { w, h, d: 1 }
    }

    /// A 1D window (a line of `w` elements).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn line(w: u32) -> Self {
        assert!(w > 0, "window length must be positive");
        Self { w, h: 1, d: 1 }
    }

    /// A 3D window.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn cube3(w: u32, h: u32, d: u32) -> Self {
        assert!(w > 0 && h > 0 && d > 0, "window dimensions must be positive");
        Self { w, h, d }
    }

    /// Number of elements in the window (the paper's "output window area").
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h) * u64::from(self.d)
    }

    /// Iterate over all points of the window, x fastest.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let (w, h, d) = (self.w as i32, self.h as i32, self.d as i32);
        (0..d).flat_map(move |z| {
            (0..h).flat_map(move |y| (0..w).map(move |x| Point { x, y, z }))
        })
    }

    /// Grow the window by `margin` elements on every side of every used axis
    /// — the input window of a cone is the output window grown by
    /// `radius × depth`.
    pub fn grown(&self, margin: u32) -> Extent {
        let m = margin as i32;
        Extent {
            lo: Point {
                x: -m,
                y: if self.h > 1 || self.d > 1 { -m } else { 0 },
                z: if self.d > 1 { -m } else { 0 },
            },
            hi: Point {
                x: self.w as i32 - 1 + m,
                y: if self.h > 1 || self.d > 1 {
                    self.h as i32 - 1 + m
                } else {
                    0
                },
                z: if self.d > 1 { self.d as i32 - 1 + m } else { 0 },
            },
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.d > 1 {
            write!(f, "{}x{}x{}", self.w, self.h, self.d)
        } else if self.h > 1 {
            write!(f, "{}x{}", self.w, self.h)
        } else {
            write!(f, "{}x1", self.w)
        }
    }
}

/// An inclusive axis-aligned box of grid points, used to describe cone input
/// windows and tile coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Extent {
    /// Lowest corner (inclusive).
    pub lo: Point,
    /// Highest corner (inclusive).
    pub hi: Point,
}

impl Extent {
    /// Extent covering exactly one point.
    pub fn point(p: Point) -> Self {
        Self { lo: p, hi: p }
    }

    /// Number of points contained.
    pub fn count(&self) -> u64 {
        let span = |lo: i32, hi: i32| (hi - lo + 1).max(0) as u64;
        span(self.lo.x, self.hi.x) * span(self.lo.y, self.hi.y) * span(self.lo.z, self.hi.z)
    }

    /// Side length along axis `axis`.
    pub fn span(&self, axis: usize) -> u64 {
        (self.hi.axis(axis) - self.lo.axis(axis) + 1).max(0) as u64
    }

    /// Whether `p` lies inside the extent.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x
            && p.x <= self.hi.x
            && p.y >= self.lo.y
            && p.y <= self.hi.y
            && p.z >= self.lo.z
            && p.z <= self.hi.z
    }

    /// Iterate over all contained points, x fastest.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let (lo, hi) = (self.lo, self.hi);
        (lo.z..=hi.z).flat_map(move |z| {
            (lo.y..=hi.y).flat_map(move |y| (lo.x..=hi.x).map(move |x| Point { x, y, z }))
        })
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_chebyshev() {
        assert_eq!(Offset::d2(1, -2).chebyshev(), 2);
        assert_eq!(Offset::ZERO.chebyshev(), 0);
        assert_eq!(Offset::d3(0, 0, -3).chebyshev(), 3);
    }

    #[test]
    fn offset_add_is_componentwise() {
        let a = Offset::d3(1, 2, 3);
        let b = Offset::d3(-1, 1, 0);
        assert_eq!(a + b, Offset::d3(0, 3, 3));
    }

    #[test]
    fn point_offset_translates() {
        let p = Point::d2(5, 7);
        assert_eq!(p.offset(Offset::d2(-1, 2)), Point::d2(4, 9));
    }

    #[test]
    fn window_area_and_points() {
        let w = Window::rect(3, 2);
        assert_eq!(w.area(), 6);
        let pts: Vec<Point> = w.points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], Point::d2(0, 0));
        assert_eq!(pts[1], Point::d2(1, 0)); // x fastest
        assert_eq!(pts[5], Point::d2(2, 1));
    }

    #[test]
    fn window_grown_2d() {
        let e = Window::square(4).grown(3);
        assert_eq!(e.lo, Point::d2(-3, -3));
        assert_eq!(e.hi, Point::d2(6, 6));
        assert_eq!(e.count(), 100);
        assert_eq!(e.span(0), 10);
    }

    #[test]
    fn window_grown_1d_does_not_grow_y() {
        let e = Window::line(4).grown(2);
        assert_eq!(e.lo, Point::d1(-2));
        assert_eq!(e.hi, Point::d1(5));
        assert_eq!(e.count(), 8);
    }

    #[test]
    fn extent_contains_and_count() {
        let e = Extent {
            lo: Point::d2(-1, -1),
            hi: Point::d2(1, 1),
        };
        assert_eq!(e.count(), 9);
        assert!(e.contains(Point::d2(0, 0)));
        assert!(e.contains(Point::d2(-1, 1)));
        assert!(!e.contains(Point::d2(2, 0)));
        assert_eq!(e.points().count(), 9);
    }

    #[test]
    fn window_display() {
        assert_eq!(Window::square(4).to_string(), "4x4");
        assert_eq!(Window::line(5).to_string(), "5x1");
        assert_eq!(Window::cube3(2, 3, 4).to_string(), "2x3x4");
    }

    #[test]
    #[should_panic(expected = "window side must be positive")]
    fn zero_window_panics() {
        let _ = Window::square(0);
    }
}
