//! Pattern composition: fusing iterations at the *expression* level.
//!
//! Composing a pattern with itself substitutes every dynamic read in the
//! update expressions with a shifted copy of the corresponding update — the
//! algebraic counterpart of building a depth-2 cone. The two must agree
//! (`Cone(p, w, 2) ≡ Cone(p∘p, w, 1)` up to register counting), which gives
//! the test suite an independent oracle for the cone-construction logic and
//! users a way to hand the flow a pre-fused kernel.
//!
//! Composition works on trees, so it *duplicates* shared work — the size of
//! the composed expressions grows multiplicatively with depth. That is
//! exactly the "exponential growth of the number of symbols" the paper's
//! register reuse avoids; [`StencilPattern::composed`] documents the
//! trade-off by existing.

use crate::expr::Expr;
use crate::geometry::Offset;
use crate::pattern::{FieldKind, PatternError, StencilPattern};

impl StencilPattern {
    /// The pattern computing `self` applied twice: every dynamic-field read
    /// at offset `o` in an update is replaced by that field's update
    /// translated by `o`. Static-field reads and parameters are preserved.
    ///
    /// # Errors
    ///
    /// Propagates validation failure of `self`.
    pub fn composed_once(&self) -> Result<StencilPattern, PatternError> {
        self.validate()?;
        let mut out = self.clone().with_name(format!("{}^2", self.name()));
        for field in self.dynamic_fields() {
            let update = self.update(field).expect("validated pattern");
            let fused = substitute(update, self, Offset::ZERO);
            out.set_update(field, fused)?;
        }
        Ok(out)
    }

    /// The `n`-fold composition of `self` (`n = 1` returns a clone).
    ///
    /// # Errors
    ///
    /// [`PatternError`] from validation; `n` must be at least 1 or the same
    /// error surface as `composed_once` applies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn composed(&self, n: u32) -> Result<StencilPattern, PatternError> {
        assert!(n >= 1, "composition depth must be at least 1");
        let mut p = self.clone();
        for _ in 1..n {
            // Compose against the ORIGINAL one-step pattern, shifting reads
            // through the accumulated expression.
            p = compose_with(&p, self)?;
        }
        p.validate()?;
        Ok(p)
    }
}

/// `outer ∘ inner`: replace dynamic reads of `outer`'s updates with the
/// translated updates of `inner`.
fn compose_with(
    outer: &StencilPattern,
    inner: &StencilPattern,
) -> Result<StencilPattern, PatternError> {
    outer.validate()?;
    inner.validate()?;
    let mut out = outer
        .clone()
        .with_name(format!("{}*", outer.name().trim_end_matches('*')));
    for field in outer.dynamic_fields() {
        let update = outer.update(field).expect("validated pattern");
        let fused = substitute(update, inner, Offset::ZERO);
        out.set_update(field, fused)?;
    }
    Ok(out)
}

/// Instantiate `expr` with every dynamic read `(f, o)` replaced by `inner`'s
/// update of `f`, translated by `shift + o`.
fn substitute(expr: &Expr, inner: &StencilPattern, shift: Offset) -> Expr {
    match expr {
        Expr::Input { field, offset } => {
            let total = shift + *offset;
            if inner.field(*field).kind == FieldKind::Static {
                Expr::input(*field, total)
            } else {
                let update = inner.update(*field).expect("validated pattern");
                translate(update, total)
            }
        }
        Expr::Const(v) => Expr::Const(*v),
        Expr::Param(p) => Expr::Param(*p),
        Expr::Unary { op, arg } => Expr::unary(*op, substitute(arg, inner, shift)),
        Expr::Binary { op, lhs, rhs } => Expr::binary(
            *op,
            substitute(lhs, inner, shift),
            substitute(rhs, inner, shift),
        ),
        Expr::Select { cond, then_, else_ } => Expr::select(
            substitute(cond, inner, shift),
            substitute(then_, inner, shift),
            substitute(else_, inner, shift),
        ),
    }
}

/// Translate every read of `expr` by `shift`.
fn translate(expr: &Expr, shift: Offset) -> Expr {
    match expr {
        Expr::Input { field, offset } => Expr::input(*field, shift + *offset),
        Expr::Const(v) => Expr::Const(*v),
        Expr::Param(p) => Expr::Param(*p),
        Expr::Unary { op, arg } => Expr::unary(*op, translate(arg, shift)),
        Expr::Binary { op, lhs, rhs } => {
            Expr::binary(*op, translate(lhs, shift), translate(rhs, shift))
        }
        Expr::Select { cond, then_, else_ } => Expr::select(
            translate(cond, shift),
            translate(then_, shift),
            translate(else_, shift),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::Cone;
    use crate::geometry::{Point, Window};
    use crate::ops::BinaryOp;
    use crate::pattern::{FieldId, FieldKind};

    fn avg_1d() -> StencilPattern {
        let mut p = StencilPattern::new(1).with_name("avg");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d1(-1)),
            Expr::input(f, Offset::d1(0)),
            Expr::input(f, Offset::d1(1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))
            .unwrap();
        p
    }

    fn coupled_with_static() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("cs");
        let u = p.add_field("u", FieldKind::Dynamic);
        let v = p.add_field("v", FieldKind::Dynamic);
        let g = p.add_field("g", FieldKind::Static);
        p.set_update(
            u,
            Expr::binary(
                BinaryOp::Add,
                Expr::input(v, Offset::d2(1, 0)),
                Expr::input(g, Offset::d2(0, 1)),
            ),
        )
        .unwrap();
        p.set_update(
            v,
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(u, Offset::d2(0, -1)),
                Expr::constant(0.5),
            ),
        )
        .unwrap();
        p
    }

    #[test]
    fn composed_radius_scales() {
        let p = avg_1d();
        assert_eq!(p.composed(1).unwrap().radius(), 1);
        assert_eq!(p.composed(2).unwrap().radius(), 2);
        assert_eq!(p.composed(4).unwrap().radius(), 4);
    }

    #[test]
    fn composition_is_the_algebraic_cone() {
        // Cone(p, w, m) must equal Cone(p^m, w, 1) as a function.
        for m in 1..=3u32 {
            let p = avg_1d();
            let pm = p.composed(m).unwrap();
            let deep = Cone::build(&p, Window::line(3), m).unwrap();
            let flat = Cone::build(&pm, Window::line(3), 1).unwrap();
            let read = |_f: FieldId, pt: Point| (pt.x * pt.x) as f64 * 0.01 + 0.2;
            let a = deep.eval(read, &[]);
            let b = flat.eval(read, &[]);
            assert_eq!(a.len(), b.len());
            for ((fa, pa, va), (fb, pb, vb)) in a.iter().zip(b.iter()) {
                assert_eq!((fa, pa), (fb, pb));
                assert!((va - vb).abs() < 1e-12, "m={m}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn composition_handles_coupled_fields_and_statics() {
        let p = coupled_with_static();
        let p2 = p.composed(2).unwrap();
        // u'' = v'(1,0) + g(0,1) where v'(1,0) = 0.5·u(1,-1):
        // reads of u at (1,-1) and g at (1,... ) appear.
        let u = p.dynamic_fields()[0];
        let reads = p2.update(u).unwrap().reads();
        assert!(reads.contains(&(u, Offset::d2(1, -1))));
        // The static field keeps absolute (translated) offsets and is never
        // expanded.
        let g = p.static_fields()[0];
        assert!(reads.iter().any(|(f, _)| *f == g));

        // Functional agreement with the cone oracle.
        let deep = Cone::build(&p, Window::square(2), 2).unwrap();
        let flat = Cone::build(&p2, Window::square(2), 1).unwrap();
        let read = |f: FieldId, pt: Point| {
            (f.index() as f64 + 1.0) * 0.1 + pt.x as f64 * 0.01 - pt.y as f64 * 0.02
        };
        let a = deep.eval(read, &[]);
        let b = flat.eval(read, &[]);
        for ((_, _, va), (_, _, vb)) in a.iter().zip(b.iter()) {
            assert!((va - vb).abs() < 1e-12);
        }
    }

    #[test]
    fn composition_grows_trees_where_cones_do_not() {
        // The motivating contrast: composed expressions blow up, interned
        // cones stay compact.
        let p = avg_1d();
        let p6 = p.composed(6).unwrap();
        let tree_ops = p6.ops_per_element();
        let cone = Cone::build(&p, Window::line(1), 6).unwrap();
        assert!(
            tree_ops as f64 > 3.0 * cone.registers() as f64,
            "tree {tree_ops} vs registers {}",
            cone.registers()
        );
    }

    #[test]
    fn params_survive_composition() {
        let mut p = StencilPattern::new(1).with_name("par");
        let f = p.add_field("f", FieldKind::Dynamic);
        let tau = p.add_param("tau", 0.5);
        p.set_update(
            f,
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::ZERO), Expr::param(tau)),
        )
        .unwrap();
        let p3 = p.composed(3).unwrap();
        assert_eq!(p3.params().len(), 1);
        // f''' = tau^3 · f
        let cone = Cone::build(&p3, Window::line(1), 1).unwrap();
        let out = cone.eval(|_, _| 8.0, &[0.5]);
        assert!((out[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_composition_panics() {
        let _ = avg_1d().composed(0);
    }
}
