//! The incremental area model (Eq. 1) and its validation harness.

use isl_fpga::Synthesizer;
use isl_ir::{Cone, StencilPattern, Window};

use crate::error::EstimateError;

/// The calibrated area model
/// `A_est(i) = A_est(i-1) + (Reg_i - Reg_{i-1}) · SizeReg · α`.
///
/// Telescoping the recurrence anchors the estimate at the first calibration
/// synthesis: `A_est(reg) = A_0 + (reg - reg_0) · SizeReg · α`.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaEstimator {
    alpha: f64,
    size_reg: f64,
    anchor_area: f64,
    anchor_registers: u64,
    syntheses_used: usize,
}

impl AreaEstimator {
    /// Calibrate `α` by synthesising the cones of `calibration_windows`
    /// (at least two) at the given depth. With exactly two windows this is
    /// the paper's minimum-cost interpolation; more windows are fitted by
    /// least squares on the increments, trading synthesis time for accuracy.
    ///
    /// # Errors
    ///
    /// [`EstimateError::NotEnoughCalibration`] for fewer than two windows;
    /// [`EstimateError::DegenerateCalibration`] when the windows do not vary
    /// the register count; [`EstimateError::Synth`] if synthesis fails.
    pub fn calibrate(
        synth: &Synthesizer<'_>,
        pattern: &StencilPattern,
        depth: u32,
        calibration_windows: &[Window],
    ) -> Result<Self, EstimateError> {
        if calibration_windows.len() < 2 {
            return Err(EstimateError::NotEnoughCalibration(calibration_windows.len()));
        }
        let cones = calibration_windows
            .iter()
            .map(|w| {
                Cone::build_with(pattern, *w, depth, synth.options().simplify)
                    .map_err(|e| EstimateError::Synth(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::calibrate_with_cones(synth, pattern, &cones.iter().collect::<Vec<_>>())
    }

    /// [`AreaEstimator::calibrate`] over **already-built** calibration cones
    /// (all of one depth, built with the synthesiser's `simplify` option).
    /// Callers that construct the same cones for other passes — the design-
    /// space explorer's facts pass — share them instead of rebuilding.
    ///
    /// # Errors
    ///
    /// Same as [`AreaEstimator::calibrate`].
    pub fn calibrate_with_cones(
        synth: &Synthesizer<'_>,
        pattern: &StencilPattern,
        cones: &[&Cone],
    ) -> Result<Self, EstimateError> {
        if cones.len() < 2 {
            return Err(EstimateError::NotEnoughCalibration(cones.len()));
        }
        debug_assert!(
            cones.windows(2).all(|c| c[0].depth() == c[1].depth()),
            "calibration cones must share one depth"
        );
        let size_reg = synth.options().format.width as f64;
        let mut points: Vec<(u64, f64)> = Vec::with_capacity(cones.len());
        for cone in cones {
            let report = synth
                .synthesize_cone(pattern, cone, 1)
                .map_err(EstimateError::from)?;
            points.push((report.registers, report.luts as f64));
        }
        Self::from_synthesis_points(size_reg, points)
    }

    /// Fit the model directly from already-synthesised `(registers, luts)`
    /// calibration points. Callers that run the calibration syntheses
    /// themselves — the design-space explorer, which also reuses each
    /// report's mapped latency for its facts pass — feed the reports here
    /// instead of paying a second synthesis per point.
    ///
    /// # Errors
    ///
    /// [`EstimateError::NotEnoughCalibration`] for fewer than two points;
    /// [`EstimateError::DegenerateCalibration`] when the points do not vary
    /// the register count.
    pub fn from_synthesis_points(
        size_reg: f64,
        mut points: Vec<(u64, f64)>,
    ) -> Result<Self, EstimateError> {
        if points.len() < 2 {
            return Err(EstimateError::NotEnoughCalibration(points.len()));
        }
        let syntheses_used = points.len();
        points.sort_by_key(|(r, _)| *r);
        let (reg0, a0) = points[0];
        let (reg_last, _) = points[points.len() - 1];
        if reg_last == reg0 {
            return Err(EstimateError::DegenerateCalibration);
        }
        // Least squares through the anchor: α = Σ ΔA·ΔR / (SizeReg · Σ ΔR²),
        // with deltas taken against the anchor point.
        let mut num = 0.0;
        let mut den = 0.0;
        for &(reg, area) in &points[1..] {
            let dr = (reg - reg0) as f64 * size_reg;
            let da = area - a0;
            num += da * dr;
            den += dr * dr;
        }
        let alpha = num / den;
        Ok(AreaEstimator {
            alpha,
            size_reg,
            anchor_area: a0,
            anchor_registers: reg0,
            syntheses_used,
        })
    }

    /// Reassemble an estimator from its exact parts — the inverse of
    /// [`AreaEstimator::parts`], used by the persistence codec to
    /// round-trip calibrations bit-identically through disk. Not a
    /// calibration entry point: no fitting happens here.
    pub fn from_parts(
        alpha: f64,
        size_reg: f64,
        anchor_area: f64,
        anchor_registers: u64,
        syntheses_used: usize,
    ) -> Self {
        AreaEstimator {
            alpha,
            size_reg,
            anchor_area,
            anchor_registers,
            syntheses_used,
        }
    }

    /// Every field of the model, in [`AreaEstimator::from_parts`] order:
    /// `(alpha, size_reg, anchor_area, anchor_registers, syntheses_used)`.
    pub fn parts(&self) -> (f64, f64, f64, u64, usize) {
        (
            self.alpha,
            self.size_reg,
            self.anchor_area,
            self.anchor_registers,
            self.syntheses_used,
        )
    }

    /// The calibrated logic-reuse factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The register size (bits) used as `SizeReg`.
    pub fn size_reg(&self) -> f64 {
        self.size_reg
    }

    /// How many syntheses calibration consumed.
    pub fn syntheses_used(&self) -> usize {
        self.syntheses_used
    }

    /// Estimated LUTs for a cone with `registers` operation registers
    /// (Eq. 1, telescoped).
    pub fn estimate(&self, registers: u64) -> f64 {
        self.anchor_area
            + (registers as f64 - self.anchor_registers as f64) * self.size_reg * self.alpha
    }

    /// Estimated LUTs for the cone of `window`/`depth`, deriving the
    /// register count from the (cheap, synthesis-free) cone construction.
    ///
    /// # Errors
    ///
    /// [`EstimateError::Synth`] when cone construction fails.
    pub fn estimate_window(
        &self,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
    ) -> Result<f64, EstimateError> {
        let cone = Cone::build(pattern, window, depth)
            .map_err(|e| EstimateError::Synth(e.to_string()))?;
        Ok(self.estimate(cone.registers() as u64))
    }
}

/// One point of the Figure 5 / Figure 8 validation: estimated vs. actual.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Output window.
    pub window: Window,
    /// Cone depth (the figures draw one curve per depth).
    pub depth: u32,
    /// Registers of the cone (`Reg_i`).
    pub registers: u64,
    /// Estimated LUTs (Eq. 1).
    pub estimated_luts: f64,
    /// "Actual" LUTs from the synthesis simulator.
    pub actual_luts: u64,
    /// Relative error, percent.
    pub error_pct: f64,
    /// Whether this point was one of the calibration syntheses.
    pub calibration: bool,
}

/// The area-model validation experiment: calibrate per depth on the first
/// `calibration_points` windows, synthesise everything, compare.
#[derive(Debug, Clone)]
pub struct AreaValidation {
    /// All rows, grouped by depth then window.
    pub rows: Vec<ValidationRow>,
    /// Maximum |error| over non-calibration rows, percent.
    pub max_error_pct: f64,
    /// Mean |error| over non-calibration rows, percent.
    pub avg_error_pct: f64,
    /// Modeled CPU seconds a full synthesis of every point would take.
    pub full_synthesis_cpu_s: f64,
    /// Modeled CPU seconds the calibration syntheses take.
    pub calibration_cpu_s: f64,
}

impl AreaValidation {
    /// Run the experiment over `windows × depths`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis and calibration failures.
    pub fn run(
        synth: &Synthesizer<'_>,
        pattern: &StencilPattern,
        windows: &[Window],
        depths: &[u32],
        calibration_points: usize,
    ) -> Result<AreaValidation, EstimateError> {
        if calibration_points < 2 || calibration_points > windows.len() {
            return Err(EstimateError::BadParameter(format!(
                "calibration_points must be in 2..={}, got {calibration_points}",
                windows.len()
            )));
        }
        let mut rows = Vec::new();
        let mut full_cpu = 0.0;
        let mut calib_cpu = 0.0;
        for &depth in depths {
            let calib = &windows[..calibration_points];
            let est = AreaEstimator::calibrate(synth, pattern, depth, calib)?;
            for (i, &w) in windows.iter().enumerate() {
                let report = synth.synthesize(pattern, w, depth, 1)?;
                full_cpu += report.modeled_cpu_seconds;
                let is_calib = i < calibration_points;
                if is_calib {
                    calib_cpu += report.modeled_cpu_seconds;
                }
                let estimated = est.estimate(report.registers);
                let error_pct =
                    100.0 * (estimated - report.luts as f64).abs() / report.luts as f64;
                rows.push(ValidationRow {
                    window: w,
                    depth,
                    registers: report.registers,
                    estimated_luts: estimated,
                    actual_luts: report.luts,
                    error_pct,
                    calibration: is_calib,
                });
            }
        }
        let free: Vec<&ValidationRow> = rows.iter().filter(|r| !r.calibration).collect();
        let max_error_pct = free.iter().map(|r| r.error_pct).fold(0.0, f64::max);
        let avg_error_pct =
            free.iter().map(|r| r.error_pct).sum::<f64>() / free.len().max(1) as f64;
        Ok(AreaValidation {
            rows,
            max_error_pct,
            avg_error_pct,
            full_synthesis_cpu_s: full_cpu,
            calibration_cpu_s: calib_cpu,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_fpga::Device;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(-1, 0)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 0)), Expr::constant(4.0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(16.0)))
            .unwrap();
        p
    }

    fn windows() -> Vec<Window> {
        (1..=6).map(Window::square).collect()
    }

    #[test]
    fn calibration_needs_two_points() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        assert_eq!(
            AreaEstimator::calibrate(&s, &p, 1, &[Window::square(1)]).unwrap_err(),
            EstimateError::NotEnoughCalibration(1)
        );
    }

    #[test]
    fn two_point_calibration_predicts_larger_windows() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let est = AreaEstimator::calibrate(
            &s,
            &p,
            2,
            &[Window::square(1), Window::square(2)],
        )
        .unwrap();
        assert!(est.alpha() > 0.0);
        for side in 3..=6u32 {
            let w = Window::square(side);
            let predicted = est.estimate_window(&p, w, 2).unwrap();
            let actual = s.synthesize(&p, w, 2, 1).unwrap().luts as f64;
            let err = (predicted - actual).abs() / actual;
            assert!(
                err < 0.15,
                "side {side}: predicted {predicted:.0}, actual {actual:.0}, err {:.1}%",
                err * 100.0
            );
        }
    }

    #[test]
    fn estimate_is_linear_in_registers() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let est =
            AreaEstimator::calibrate(&s, &p, 1, &[Window::square(1), Window::square(3)]).unwrap();
        let a = est.estimate(100);
        let b = est.estimate(200);
        let c = est.estimate(300);
        assert!((2.0 * b - a - c).abs() < 1e-6);
    }

    #[test]
    fn validation_reports_small_errors() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let v = AreaValidation::run(&s, &p, &windows(), &[1, 2, 3], 2).unwrap();
        assert_eq!(v.rows.len(), 18);
        // The paper reports max 6.58% / avg 2.93% for IGF; our substitute
        // synthesis noise is ±3%, so single-digit errors are expected.
        assert!(v.max_error_pct < 12.0, "max error {:.2}%", v.max_error_pct);
        assert!(v.avg_error_pct < 6.0, "avg error {:.2}%", v.avg_error_pct);
        // Estimation must be far cheaper than full synthesis.
        assert!(v.calibration_cpu_s < v.full_synthesis_cpu_s / 2.0);
    }

    #[test]
    fn more_calibration_points_do_not_hurt() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let v2 = AreaValidation::run(&s, &p, &windows(), &[2], 2).unwrap();
        let v4 = AreaValidation::run(&s, &p, &windows(), &[2], 4).unwrap();
        // With twice the syntheses the fit should not get dramatically worse.
        assert!(v4.avg_error_pct <= v2.avg_error_pct * 1.5 + 1.0);
    }

    #[test]
    fn bad_calibration_count_rejected() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        assert!(matches!(
            AreaValidation::run(&s, &p, &windows(), &[1], 1),
            Err(EstimateError::BadParameter(_))
        ));
        assert!(matches!(
            AreaValidation::run(&s, &p, &windows(), &[1], 99),
            Err(EstimateError::BadParameter(_))
        ));
    }
}
