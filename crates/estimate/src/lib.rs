//! # isl-estimate — area and throughput estimation for cone architectures
//!
//! Implements Section 3.3 of the DAC 2013 paper:
//!
//! * [`AreaEstimator`] — the incremental register-based area model
//!
//!   ```text
//!   A_est(i) = A_est(i-1) + (Reg(i) - Reg(i-1)) · SizeReg · α        (Eq. 1)
//!   ```
//!
//!   `Reg(i)` (operation registers of the cone with output window `i`) is
//!   known *before* synthesis, straight from the register-reuse pass;
//!   `SizeReg` is the register width; `α` captures the synthesis tool's
//!   logic reuse and is calibrated by interpolating **as few as two** real
//!   syntheses — more calibration points buy more accuracy, exactly as the
//!   paper describes;
//! * [`ThroughputEstimator`] — "summing the delays of the operations
//!   included in each cone, and counting the number of cones that can run
//!   in parallel": a level-by-level schedule of the architecture template
//!   over a frame, including the off-chip transfer budget and the paper's
//!   feasibility rule (at least one cone of each required depth must fit);
//! * [`AreaValidation`] — the Figure 5 / Figure 8 experiment: estimated
//!   vs. actual area over the whole window/depth grid, with per-point and
//!   aggregate errors.
//!
//! ```
//! use isl_estimate::AreaEstimator;
//! use isl_fpga::{Device, Synthesizer};
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset, Window};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2);
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::sum([
//!     Expr::input(f, Offset::d2(0, -1)),
//!     Expr::input(f, Offset::d2(-1, 0)),
//!     Expr::input(f, Offset::d2(1, 0)),
//!     Expr::input(f, Offset::d2(0, 1)),
//! ]);
//! p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))?;
//!
//! let device = Device::virtex6_xc6vlx760();
//! let synth = Synthesizer::new(&device);
//! // Calibrate alpha from the two smallest windows, then predict 6x6.
//! let est = AreaEstimator::calibrate(
//!     &synth, &p, 2, &[Window::square(1), Window::square(2)],
//! )?;
//! let predicted = est.estimate_window(&p, Window::square(6), 2)?;
//! assert!(predicted > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod error;
mod throughput;

pub use area::{AreaEstimator, AreaValidation, ValidationRow};
pub use error::EstimateError;
pub use throughput::{
    schedule, Architecture, ScheduleModel, ScheduleOutcome, ThroughputEstimator,
    ThroughputReport, Workload,
};
