//! Estimation error type.

use std::error::Error;
use std::fmt;

use isl_fpga::SynthError;

/// Errors from area/throughput estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateError {
    /// Calibration needs at least two synthesis points.
    NotEnoughCalibration(usize),
    /// The calibration points have identical register counts, so α is
    /// undetermined.
    DegenerateCalibration,
    /// The architecture cannot be placed: not even one cone of each
    /// required depth fits the device (the paper's feasibility rule).
    Infeasible {
        /// Explanation of what does not fit.
        reason: String,
    },
    /// The underlying synthesis simulator failed.
    Synth(String),
    /// A parameter is out of its domain.
    BadParameter(String),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::NotEnoughCalibration(n) => {
                write!(f, "alpha calibration needs at least 2 syntheses, got {n}")
            }
            EstimateError::DegenerateCalibration => {
                write!(f, "calibration windows have identical register counts")
            }
            EstimateError::Infeasible { reason } => write!(f, "infeasible architecture: {reason}"),
            EstimateError::Synth(m) => write!(f, "synthesis failed: {m}"),
            EstimateError::BadParameter(m) => write!(f, "bad parameter: {m}"),
        }
    }
}

impl Error for EstimateError {}

impl From<SynthError> for EstimateError {
    fn from(e: SynthError) -> Self {
        EstimateError::Synth(e.to_string())
    }
}
