//! Throughput estimation: scheduling the cone architecture over a frame.
//!
//! Follows the paper's recipe — operation delays give the cone clock and
//! latency (via `isl-fpga`), and the architecture's throughput comes from
//! how many cone executions a frame needs and how many cones run in
//! parallel. The level structure matches Section 3.1: `floor(N/d)` levels of
//! the main depth plus, when `d` does not divide `N`, one *additional
//! specific core* of depth `N mod d` — the mechanism that makes non-divisor
//! depths lose on `N = 10` (Figure 7).

use isl_fpga::{Device, Synthesizer, SynthesisReport};
use isl_ir::{StencilPattern, Window};

use crate::error::EstimateError;

/// The frame-processing job to estimate against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Frame width, elements.
    pub frame_width: u32,
    /// Frame height, elements.
    pub frame_height: u32,
    /// ISL iterations per frame (the paper's `N`).
    pub iterations: u32,
    /// Bytes per element moved over the off-chip interface.
    pub bytes_per_element: u32,
}

impl Workload {
    /// An image-processing workload with 16-bit samples.
    pub fn image(frame_width: u32, frame_height: u32, iterations: u32) -> Self {
        Workload {
            frame_width,
            frame_height,
            iterations,
            bytes_per_element: 2,
        }
    }

    /// Elements per frame.
    pub fn frame_elements(&self) -> u64 {
        u64::from(self.frame_width) * u64::from(self.frame_height)
    }
}

/// One instance of the architecture template: `cores` cones of `depth`
/// producing `window`-sized output blocks (plus the implicit remainder core
/// when `depth` does not divide the workload's iteration count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Architecture {
    /// Output window of every cone.
    pub window: Window,
    /// Main cone depth.
    pub depth: u32,
    /// Parallel cone instances of the main depth.
    pub cores: u32,
}

impl Architecture {
    /// Convenience constructor.
    pub fn new(window: Window, depth: u32, cores: u32) -> Self {
        Architecture { window, depth, cores }
    }
}

/// Knobs of the schedule model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleModel {
    /// Fraction of a cone's pipeline latency hidden by overlapping
    /// successive executions (0 = fully serial, 1 = perfectly pipelined,
    /// one execution per cycle). The default 0.25 reflects the
    /// level-to-level dependencies inside a tile that limit overlap; it is
    /// calibrated so the IGF architectures land in the paper's ~110 fps
    /// range on the Virtex-6 (see EXPERIMENTS.md).
    pub pipeline_overlap: f64,
}

impl Default for ScheduleModel {
    fn default() -> Self {
        ScheduleModel { pipeline_overlap: 0.25 }
    }
}

/// The outcome of the analytic schedule of one architecture over one frame
/// (no synthesis involved — everything derives from cone geometry, latencies
/// and the device's interface).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleOutcome {
    /// Output tiles per frame.
    pub tiles: u64,
    /// Cone executions per tile, main-depth levels.
    pub executions_main: u64,
    /// Cone executions per tile, remainder level.
    pub executions_rem: u64,
    /// Total cycles per frame.
    pub cycles_per_frame: f64,
    /// Compute time per frame, seconds.
    pub compute_time_s: f64,
    /// Off-chip transfer time per frame, seconds.
    pub transfer_time_s: f64,
    /// Effective frame time, seconds.
    pub time_per_frame_s: f64,
    /// Frames per second.
    pub fps: f64,
    /// Whether the interface is the bottleneck.
    pub transfer_bound: bool,
}

/// Analytically schedule `arch` over `workload`: level extents, execution
/// counts, initiation intervals from latencies, and the off-chip transfer
/// budget (with row-band halo reuse). This is the "throughput estimation"
/// the paper performs without synthesis — callers supply per-cone latencies
/// (available straight after VHDL generation) and a clock.
///
/// # Errors
///
/// [`EstimateError::BadParameter`] for a zero/excessive depth or zero cores.
#[allow(clippy::too_many_arguments)]
pub fn schedule(
    pattern: &StencilPattern,
    arch: Architecture,
    workload: Workload,
    latency_main: u32,
    latency_rem: Option<u32>,
    fmax_mhz: f64,
    model: ScheduleModel,
    device: &Device,
) -> Result<ScheduleOutcome, EstimateError> {
    if arch.cores == 0 {
        return Err(EstimateError::BadParameter("cores must be >= 1".into()));
    }
    if arch.depth == 0 || arch.depth > workload.iterations {
        return Err(EstimateError::BadParameter(format!(
            "depth must be in 1..={} (iterations), got {}",
            workload.iterations, arch.depth
        )));
    }
    let rem = workload.iterations % arch.depth;
    let n_main_levels = workload.iterations / arch.depth;
    let r = pattern.radius();

    let mut depths: Vec<u32> = vec![arch.depth; n_main_levels as usize];
    if rem > 0 {
        depths.push(rem);
    }

    let is_1d = workload.frame_height == 1 || arch.window.h == 1 && pattern.rank() == 1;
    let mut ext = (u64::from(arch.window.w), u64::from(arch.window.h));
    let mut execs_main = 0u64;
    let mut execs_rem = 0u64;
    for (idx, &d) in depths.iter().enumerate().rev() {
        let execs =
            ext.0.div_ceil(u64::from(arch.window.w)) * ext.1.div_ceil(u64::from(arch.window.h));
        if idx >= n_main_levels as usize {
            execs_rem += execs;
        } else {
            execs_main += execs;
        }
        ext.0 += 2 * u64::from(r) * u64::from(d);
        if !is_1d {
            ext.1 += 2 * u64::from(r) * u64::from(d);
        }
    }

    let ii = |latency: u32| -> f64 {
        (latency as f64 * (1.0 - model.pipeline_overlap)).max(1.0)
    };
    let tiles = u64::from(workload.frame_width).div_ceil(u64::from(arch.window.w))
        * u64::from(workload.frame_height).div_ceil(u64::from(arch.window.h));
    let cycles_per_tile = execs_main as f64 * ii(latency_main) / arch.cores as f64
        + execs_rem as f64 * latency_rem.map_or(0.0, &ii);
    let cycles_per_frame = tiles as f64 * cycles_per_tile;
    let compute_time_s = cycles_per_frame / (fmax_mhz * 1e6);

    // Off-chip traffic with row-band reuse: the DMA engine fetches each
    // tile body once and shares halo bands between adjacent tiles, so the
    // halo is paid per tile *edge* rather than per tile area.
    let n_dyn = pattern.dynamic_fields().len() as u64;
    let n_static = pattern.static_fields().len() as u64;
    let halo = 2 * u64::from(r) * u64::from(workload.iterations);
    let body = u64::from(arch.window.w) * u64::from(arch.window.h);
    let edges = halo * (u64::from(arch.window.w) + u64::from(arch.window.h));
    let per_tile_elems = (body + edges) * (n_dyn + n_static) + body * n_dyn;
    let bytes_per_frame = tiles as f64 * per_tile_elems as f64 * workload.bytes_per_element as f64;
    let transfer_time_s = bytes_per_frame / (device.offchip_bandwidth_mbs * 1e6);

    let time_per_frame_s = compute_time_s.max(transfer_time_s);
    Ok(ScheduleOutcome {
        tiles,
        executions_main: execs_main,
        executions_rem: execs_rem,
        cycles_per_frame,
        compute_time_s,
        transfer_time_s,
        time_per_frame_s,
        fps: 1.0 / time_per_frame_s,
        transfer_bound: transfer_time_s > compute_time_s,
    })
}

/// Estimated performance of one architecture on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// The architecture estimated.
    pub arch: Architecture,
    /// Output tiles per frame.
    pub tiles: u64,
    /// Cone executions per tile, main-depth levels.
    pub executions_main: u64,
    /// Cone executions per tile, remainder level (0 when `d | N`).
    pub executions_rem: u64,
    /// Clock after synthesis of all cores, MHz.
    pub fmax_mhz: f64,
    /// Total cycles per frame.
    pub cycles_per_frame: f64,
    /// Compute-side time per frame, seconds.
    pub compute_time_s: f64,
    /// Off-chip transfer time per frame, seconds.
    pub transfer_time_s: f64,
    /// Effective time per frame (max of compute and transfer), seconds.
    pub time_per_frame_s: f64,
    /// Frames per second.
    pub fps: f64,
    /// Whether the off-chip interface is the bottleneck.
    pub transfer_bound: bool,
    /// Total LUTs of the instantiated cores (incl. remainder core).
    pub luts: u64,
    /// Synthesis report of the main cores.
    pub main_synthesis: SynthesisReport,
    /// Synthesis report of the remainder core, when present.
    pub rem_synthesis: Option<SynthesisReport>,
}

/// Estimates architecture throughput on a device (through its
/// [`Synthesizer`]).
#[derive(Debug, Clone)]
pub struct ThroughputEstimator<'a, 'd> {
    synth: &'a Synthesizer<'d>,
    schedule: ScheduleModel,
}

impl<'a, 'd> ThroughputEstimator<'a, 'd> {
    /// Estimator with the default schedule model.
    pub fn new(synth: &'a Synthesizer<'d>) -> Self {
        ThroughputEstimator {
            synth,
            schedule: ScheduleModel::default(),
        }
    }

    /// Estimator with an explicit schedule model.
    pub fn with_schedule(synth: &'a Synthesizer<'d>, schedule: ScheduleModel) -> Self {
        ThroughputEstimator { synth, schedule }
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        self.synth.device()
    }

    /// Estimate one architecture against one workload.
    ///
    /// # Errors
    ///
    /// [`EstimateError::BadParameter`] for zero cores or `depth >
    /// iterations`; [`EstimateError::Infeasible`] when the cores do not fit
    /// the device; synthesis failures are propagated.
    pub fn estimate(
        &self,
        pattern: &StencilPattern,
        arch: Architecture,
        workload: Workload,
    ) -> Result<ThroughputReport, EstimateError> {
        let rem = if arch.depth == 0 { 0 } else { workload.iterations % arch.depth };

        // Synthesise the cores.
        let main = self
            .synth
            .synthesize(pattern, arch.window, arch.depth.max(1), arch.cores.max(1))?;
        let rem_report = if rem > 0 {
            Some(self.synth.synthesize(pattern, arch.window, rem, 1)?)
        } else {
            None
        };
        let total_luts = main.luts + rem_report.as_ref().map_or(0, |r| r.luts);
        let device = self.synth.device();

        let fmax = main
            .fmax_mhz
            .min(rem_report.as_ref().map_or(f64::INFINITY, |r| r.fmax_mhz));
        let outcome = schedule(
            pattern,
            arch,
            workload,
            main.latency_cycles,
            rem_report.as_ref().map(|r| r.latency_cycles),
            fmax,
            self.schedule,
            device,
        )?;
        if total_luts > device.luts {
            return Err(EstimateError::Infeasible {
                reason: format!(
                    "{total_luts} LUTs required, {} available on {}",
                    device.luts, device.name
                ),
            });
        }

        Ok(ThroughputReport {
            arch,
            tiles: outcome.tiles,
            executions_main: outcome.executions_main,
            executions_rem: outcome.executions_rem,
            fmax_mhz: fmax,
            cycles_per_frame: outcome.cycles_per_frame,
            compute_time_s: outcome.compute_time_s,
            transfer_time_s: outcome.transfer_time_s,
            time_per_frame_s: outcome.time_per_frame_s,
            fps: outcome.fps,
            transfer_bound: outcome.transfer_bound,
            luts: total_luts,
            main_synthesis: main,
            rem_synthesis: rem_report,
        })
    }

    /// Largest core count whose area (plus the remainder core) fits the
    /// device — "the synthesis tool uses all the available area to maximise
    /// the throughput" (Section 4.1).
    ///
    /// # Errors
    ///
    /// [`EstimateError::Infeasible`] when not even one core of each depth
    /// fits (the paper's feasibility rule).
    pub fn max_cores(
        &self,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        iterations: u32,
    ) -> Result<u32, EstimateError> {
        let device = self.synth.device();
        let rem = iterations % depth;
        let rem_luts = if rem > 0 {
            self.synth.synthesize(pattern, window, rem, 1)?.luts
        } else {
            0
        };
        let budget = device.luts.saturating_sub(rem_luts);
        let fits = |n: u32| -> Result<bool, EstimateError> {
            Ok(self.synth.synthesize(pattern, window, depth, n)?.luts <= budget)
        };
        if !fits(1)? {
            return Err(EstimateError::Infeasible {
                reason: format!(
                    "one cone of window {window} depth {depth} (plus its remainder core) exceeds {}",
                    device.name
                ),
            });
        }
        // Exponential probe, then binary search, bounded by the window-buffer
        // feed limit of the device.
        let mut lo = 1u32;
        let mut hi = 2u32;
        let cap: u32 = device.max_parallel_cones.max(1);
        if fits(cap)? {
            return Ok(cap);
        }
        while hi <= cap && fits(hi)? {
            lo = hi;
            hi *= 2;
        }
        let mut hi = hi.min(cap + 1);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if fits(mid)? {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Estimate with the maximum core count that fits the device.
    ///
    /// # Errors
    ///
    /// Same as [`ThroughputEstimator::max_cores`] and
    /// [`ThroughputEstimator::estimate`].
    pub fn best_on_device(
        &self,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        workload: Workload,
    ) -> Result<ThroughputReport, EstimateError> {
        let cores = self.max_cores(pattern, window, depth, workload.iterations)?;
        self.estimate(
            pattern,
            Architecture::new(window, depth, cores),
            workload,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_fpga::{Device, SynthOptions, Synthesizer};
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(-1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, -1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(-1, 0)), Expr::constant(2.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 0)), Expr::constant(4.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(1, 0)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(-1, 1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(16.0)))
            .unwrap();
        p
    }

    /// An expensive per-element pattern (divide + sqrt), Chambolle-like.
    fn heavy() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("heavy");
        let f = p.add_field("f", FieldKind::Dynamic);
        let gx = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 0)),
        );
        let gy = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d2(0, 1)),
            Expr::input(f, Offset::d2(0, 0)),
        );
        let norm = Expr::unary(
            isl_ir::UnaryOp::Sqrt,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, gx.clone(), gx),
                Expr::binary(BinaryOp::Mul, gy.clone(), gy),
            ),
        );
        let den = Expr::binary(BinaryOp::Add, Expr::constant(1.0), norm);
        p.set_update(
            f,
            Expr::binary(BinaryOp::Div, Expr::input(f, Offset::ZERO), den),
        )
        .unwrap();
        p
    }

    #[test]
    fn basic_report_sanity() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let r = est
            .estimate(
                &p,
                Architecture::new(Window::square(4), 2, 2),
                Workload::image(256, 192, 10),
            )
            .unwrap();
        assert!(r.fps > 0.0);
        assert!(r.fmax_mhz > 0.0);
        assert_eq!(r.tiles, 64 * 48);
        assert_eq!(r.executions_rem, 0);
        assert!(r.executions_main >= 5); // 5 levels, growing extents
        assert!(r.luts > 0);
    }

    #[test]
    fn more_cores_more_fps() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let w = Workload::image(512, 384, 10);
        let one = est
            .estimate(&p, Architecture::new(Window::square(4), 2, 1), w)
            .unwrap();
        let four = est
            .estimate(&p, Architecture::new(Window::square(4), 2, 4), w)
            .unwrap();
        assert!(four.fps > one.fps);
    }

    #[test]
    fn divisor_depths_win_on_n10() {
        // Section 4.1: with N = 10, depths 1/2/5 beat 3/4 because the
        // latter need an extra remainder core.
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let w = Workload::image(1024, 768, 10);
        // Mid-size windows are where Figure 7 separates divisor depths from
        // non-divisors (tiny windows are halo-dominated for every depth).
        let fps = |d: u32| {
            est.best_on_device(&p, Window::square(6), d, w)
                .map(|r| r.fps)
                .unwrap_or(0.0)
        };
        let (f1, f2, f3, f4, f5) = (fps(1), fps(2), fps(3), fps(4), fps(5));
        assert!(f1 > f3, "depth 1 ({f1:.1}) should beat 3 ({f3:.1})");
        assert!(f1 > f4, "depth 1 ({f1:.1}) should beat 4 ({f4:.1})");
        assert!(f2 > f3, "depth 2 ({f2:.1}) should beat 3 ({f3:.1})");
        assert!(f2 > f4, "depth 2 ({f2:.1}) should beat 4 ({f4:.1})");
        // The deep divisor beats the adjacent non-divisor, which pays for a
        // remainder core and its extra level.
        assert!(f5 > f4, "depth 5 ({f5:.1}) should beat 4 ({f4:.1})");
    }

    #[test]
    fn remainder_level_is_accounted() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let r = est
            .estimate(
                &p,
                Architecture::new(Window::square(4), 3, 1),
                Workload::image(128, 128, 10), // 10 = 3+3+3+1
            )
            .unwrap();
        assert!(r.rem_synthesis.is_some());
        assert_eq!(r.executions_rem, 1); // topmost level, window-sized
    }

    #[test]
    fn transfer_bound_on_starved_interface() {
        let mut dev = Device::virtex6_xc6vlx760();
        dev.offchip_bandwidth_mbs = 5.0; // strangle the interface
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let r = est
            .estimate(
                &p,
                Architecture::new(Window::square(4), 2, 4),
                Workload::image(1024, 768, 10),
            )
            .unwrap();
        assert!(r.transfer_bound);
        assert!(r.fps < 30.0);
    }

    #[test]
    fn infeasible_when_cone_exceeds_device() {
        let dev = Device::small_multimedia();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = heavy();
        let err = est
            .max_cores(&p, Window::square(8), 5, 10)
            .unwrap_err();
        assert!(matches!(err, EstimateError::Infeasible { .. }));
    }

    #[test]
    fn max_cores_fits_budget() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::with_options(
            &dev,
            SynthOptions { jitter: false, ..SynthOptions::default() },
        );
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let n = est.max_cores(&p, Window::square(4), 2, 10).unwrap();
        assert!(n >= 1);
        assert!(n <= dev.max_parallel_cones);
        let fit = s.synthesize(&p, Window::square(4), 2, n).unwrap();
        assert!(fit.luts <= dev.luts);
        if n < dev.max_parallel_cones {
            let over = s.synthesize(&p, Window::square(4), 2, n + 1).unwrap();
            assert!(over.luts > dev.luts);
        }
    }

    #[test]
    fn bad_parameters_rejected() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let p = blur();
        let w = Workload::image(64, 64, 4);
        assert!(matches!(
            est.estimate(&p, Architecture::new(Window::square(4), 0, 1), w),
            Err(EstimateError::BadParameter(_))
        ));
        assert!(matches!(
            est.estimate(&p, Architecture::new(Window::square(4), 5, 1), w),
            Err(EstimateError::BadParameter(_))
        ));
        assert!(matches!(
            est.estimate(&p, Architecture::new(Window::square(4), 2, 0), w),
            Err(EstimateError::BadParameter(_))
        ));
    }

    #[test]
    fn heavy_patterns_are_slower() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let est = ThroughputEstimator::new(&s);
        let w = Workload::image(512, 384, 10);
        let light = est
            .best_on_device(&blur(), Window::square(4), 2, w)
            .unwrap();
        let heavy = est
            .best_on_device(&heavy(), Window::square(4), 2, w)
            .unwrap();
        assert!(light.fps > heavy.fps);
    }
}
