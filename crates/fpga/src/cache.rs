//! Content-addressed memoization of synthesis runs.
//!
//! The synthesis simulator is deterministic: one
//! `(device, options, pattern, window, depth, cones)` tuple always produces
//! the same [`SynthesisReport`] value. [`SynthCache`]
//! interns reports behind `Arc`s keyed by exactly that tuple (the pattern
//! contributes its structural
//! [fingerprint](isl_ir::StencilPattern::fingerprint)), so calibration
//! syntheses — the dominant cost of large design-space sweeps — run once
//! per distinct key no matter how many explorations, sessions or threads
//! request them.
//!
//! Like [`isl_ir::ConeCache`], the cache is cheap to clone (clones share
//! the map) and counts hits and misses so reuse is provable.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use isl_ir::{CacheStats, StencilPattern, Window};

use crate::device::Device;
use crate::numeric::FixedFormat;
use crate::synth::{SynthOptions, SynthesisReport};

/// The full identity of one synthesis run — every input that can change the
/// report. Construct with [`SynthKey::new`]; the key is the memoization
/// contract of [`SynthCache`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SynthKey {
    /// Structural fingerprint of the pattern.
    pub pattern: u64,
    /// Target part name (reports depend on every device parameter, but
    /// parts are identified by name in this model).
    pub device: String,
    /// Fixed-point format.
    pub format: FixedFormat,
    /// Option bits: (inter_cone_sharing, jitter, simplify, use_dsp).
    pub options: (bool, bool, bool, bool),
    /// Output window of the cone shape.
    pub window: Window,
    /// Cone depth.
    pub depth: u32,
    /// Cone instances synthesised together.
    pub cones: u32,
}

impl SynthKey {
    /// Key of synthesising `cones` instances of `(window, depth)` of
    /// `pattern` on `device` under `options`.
    pub fn new(
        device: &Device,
        options: &SynthOptions,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        cones: u32,
    ) -> Self {
        SynthKey {
            pattern: pattern.fingerprint(),
            device: device.name.clone(),
            format: options.format,
            options: (
                options.inter_cone_sharing,
                options.jitter,
                options.simplify,
                options.use_dsp,
            ),
            window,
            depth,
            cones,
        }
    }
}

#[derive(Debug, Default)]
struct SynthCacheInner {
    map: Mutex<HashMap<SynthKey, Arc<SynthesisReport>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// A concurrency-safe, content-keyed store of [`SynthesisReport`]s.
///
/// Attach one to a [`Synthesizer`](crate::Synthesizer) with
/// [`Synthesizer::with_caches`](crate::Synthesizer::with_caches); every
/// synthesis of the same key is then served from the store.
#[derive(Debug, Clone, Default)]
pub struct SynthCache {
    inner: Arc<SynthCacheInner>,
}

impl SynthCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report of `key`: served from the cache when present, produced by
    /// `build` (outside the lock) and stored otherwise. Racing builders of
    /// one key each count a miss; the first insertion wins.
    ///
    /// # Errors
    ///
    /// Whatever `build` returns; build errors are not cached.
    pub fn get_or_synthesize<E>(
        &self,
        key: SynthKey,
        build: impl FnOnce() -> Result<SynthesisReport, E>,
    ) -> Result<Arc<SynthesisReport>, E> {
        if let Some(hit) = self.inner.map.lock().expect("synth cache").get(&key) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        let report = Arc::new(build()?);
        let mut map = self.inner.map.lock().expect("synth cache");
        Ok(Arc::clone(map.entry(key).or_insert(report)))
    }

    /// Every stored `(key, report)` pair, sorted by key — a deterministic
    /// enumeration for the persistence layer's flush path.
    pub fn entries(&self) -> Vec<(SynthKey, Arc<SynthesisReport>)> {
        let map = self.inner.map.lock().expect("synth cache");
        let mut out: Vec<_> = map.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        drop(map);
        out.sort_by(|(a, _), (b, _)| {
            (&a.pattern, &a.device, a.format.width, a.format.frac, &a.options, a.window, a.depth, a.cones)
                .cmp(&(&b.pattern, &b.device, b.format.width, b.format.frac, &b.options, b.window, b.depth, b.cones))
        });
        out
    }

    /// Pre-load a report without touching the hit/miss counters — the
    /// persistence layer's warm-open path (disk-loaded reports are neither
    /// hits nor misses until something asks for them). An existing entry
    /// for the key is kept.
    pub fn seed(&self, key: SynthKey, report: SynthesisReport) {
        self.inner
            .map
            .lock()
            .expect("synth cache")
            .entry(key)
            .or_insert_with(|| Arc::new(report));
    }

    /// Snapshot the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct reports currently stored.
    pub fn len(&self) -> usize {
        self.inner.map.lock().expect("synth cache").len()
    }

    /// Whether the cache holds no reports.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Synthesizer;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))
            .unwrap();
        p
    }

    #[test]
    fn cached_report_is_identical_to_cold_synthesis() {
        let dev = Device::virtex6_xc6vlx760();
        let p = blur();
        let cache = SynthCache::new();
        let cached = Synthesizer::new(&dev)
            .with_caches(isl_ir::ConeCache::new(), cache.clone())
            .synthesize(&p, Window::square(3), 2, 2)
            .unwrap();
        let cold = Synthesizer::new(&dev)
            .synthesize(&p, Window::square(3), 2, 2)
            .unwrap();
        assert_eq!(cached, cold);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn repeat_synthesis_hits() {
        let dev = Device::virtex6_xc6vlx760();
        let p = blur();
        let cache = SynthCache::new();
        let s = Synthesizer::new(&dev).with_caches(isl_ir::ConeCache::new(), cache.clone());
        let a = s.synthesize(&p, Window::square(2), 1, 1).unwrap();
        let b = s.synthesize(&p, Window::square(2), 1, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn fused_pair_cone_memoized_across_core_counts() {
        // cones > 1 triggers the fused-pair sharing probe; with a cone cache
        // the pair cone is built once for every core count of one shape.
        let dev = Device::virtex6_xc6vlx760();
        let p = blur();
        let cones = isl_ir::ConeCache::new();
        let s = Synthesizer::new(&dev).with_caches(cones.clone(), SynthCache::new());
        for cores in 2..=6 {
            s.synthesize(&p, Window::square(3), 2, cores).unwrap();
        }
        // Entries: the single cone + the fused pair — two builds total.
        assert_eq!(cones.stats().misses, 2);
        assert_eq!(cones.stats().hits, 2 * 5 - 2);
    }

    #[test]
    fn option_changes_miss() {
        let dev = Device::virtex6_xc6vlx760();
        let p = blur();
        let cache = SynthCache::new();
        let a = Synthesizer::new(&dev).with_caches(isl_ir::ConeCache::new(), cache.clone());
        let b = Synthesizer::with_options(
            &dev,
            SynthOptions {
                jitter: false,
                ..SynthOptions::default()
            },
        )
        .with_caches(isl_ir::ConeCache::new(), cache.clone());
        a.synthesize(&p, Window::square(2), 1, 1).unwrap();
        b.synthesize(&p, Window::square(2), 1, 1).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }
}
