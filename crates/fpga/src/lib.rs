//! # isl-fpga — FPGA device models and a deterministic synthesis simulator
//!
//! The DAC 2013 flow validates its area-estimation model against *actual
//! syntheses* on Xilinx devices (Figures 5 and 8) and measures throughput on
//! a Virtex-6 XC6VLX760 (Figures 7 and 10). No FPGA toolchain exists in this
//! environment, so this crate supplies the substitute substrate documented in
//! `DESIGN.md`:
//!
//! * [`Device`] — resource/timing models of the paper's parts (Virtex-6
//!   XC6VLX760, Virtex-II Pro) plus a small "multimedia-class" part;
//! * [`FixedFormat`] — the fixed-point arithmetic format mapped to hardware
//!   (the hand-made Chambolle design the paper starts from used fixed
//!   point);
//! * [`techmap`] — per-operation technology mapping onto LUT6/carry/FF/DSP
//!   resources, with canonical-signed-digit decomposition of constant
//!   multipliers and pipelined iterative divider/sqrt arrays;
//! * [`Synthesizer`] — the synthesis simulator. It reproduces the phenomena
//!   the paper's estimation model exists to handle:
//!   - area grows **non-linearly** in the number of cone instances, because
//!     adjacent cones share logic over their overlapping input windows
//!     (computed *structurally*, by fusing adjacent windows into one
//!     hash-consed graph — not by a fudge factor);
//!   - placement overhead grows with device utilisation;
//!   - results carry a small deterministic, seeded variability (±3 %)
//!     standing in for place-and-route noise, so estimation error is
//!     non-zero and honest;
//!   - every report carries a `modeled_cpu_seconds` figure so the "synthesis
//!     of the whole space takes days" claim (Section 3.3) is quantifiable.
//!
//! ```
//! use isl_fpga::{Device, Synthesizer};
//! use isl_ir::{StencilPattern, FieldKind, Expr, BinaryOp, Offset, Window};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut p = StencilPattern::new(2);
//! let f = p.add_field("f", FieldKind::Dynamic);
//! let sum = Expr::sum([
//!     Expr::input(f, Offset::d2(0, -1)),
//!     Expr::input(f, Offset::d2(-1, 0)),
//!     Expr::input(f, Offset::d2(1, 0)),
//!     Expr::input(f, Offset::d2(0, 1)),
//! ]);
//! p.set_update(f, Expr::binary(BinaryOp::Mul, sum, Expr::constant(0.25)))?;
//!
//! let device = Device::virtex6_xc6vlx760();
//! let synth = Synthesizer::new(&device);
//! let report = synth.synthesize(&p, Window::square(4), 2, 1)?;
//! assert!(report.luts > 0);
//! assert!(report.fmax_mhz > 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod device;
mod numeric;
pub mod quant;
mod synth;
pub mod techmap;

pub use cache::{SynthCache, SynthKey};
pub use device::Device;
pub use numeric::{isqrt_wide, FixedFormat};
pub use quant::{eval_fixed, eval_fixed_raw};
pub use synth::{SynthError, SynthOptions, Synthesizer, SynthesisReport};
pub use techmap::{map_graph, MappedGraph};
