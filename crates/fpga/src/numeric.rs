//! Fixed-point number formats for the hardware data path.

use std::fmt;

/// A signed fixed-point format with `width` total bits, `frac` of which are
/// fractional (Q notation: `Q(width-frac).frac`).
///
/// The default, `Q8.10` in 18 bits, follows the fixed-point choice of the
/// hand-optimised Chambolle implementation the paper builds on, and matches
/// the 18-bit DSP/multiplier granularity of the Xilinx parts modelled here.
///
/// ```
/// use isl_fpga::FixedFormat;
/// let q = FixedFormat::default();
/// assert_eq!(q.width, 18);
/// let bits = q.quantize(0.25);
/// assert_eq!(q.dequantize(bits), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    /// Total bits, including sign.
    pub width: u32,
    /// Fractional bits.
    pub frac: u32,
}

impl Default for FixedFormat {
    fn default() -> Self {
        FixedFormat { width: 18, frac: 10 }
    }
}

impl FixedFormat {
    /// Build a format.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 64` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        assert!(frac < width, "frac must leave at least the sign bit");
        FixedFormat { width, frac }
    }

    /// Integer (non-fractional) bits, including sign.
    pub fn int_bits(&self) -> u32 {
        self.width - self.frac
    }

    /// Quantisation step.
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        let max_raw = (1i64 << (self.width - 1)) - 1;
        max_raw as f64 * self.resolution()
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        let min_raw = -(1i64 << (self.width - 1));
        min_raw as f64 * self.resolution()
    }

    /// Round-to-nearest quantisation with saturation, returning the raw
    /// two's-complement value.
    pub fn quantize(&self, v: f64) -> i64 {
        let max_raw = (1i64 << (self.width - 1)) - 1;
        let min_raw = -(1i64 << (self.width - 1));
        let scaled = (v * (1u64 << self.frac) as f64).round();
        if scaled >= max_raw as f64 {
            max_raw
        } else if scaled <= min_raw as f64 {
            min_raw
        } else {
            scaled as i64
        }
    }

    /// Back-conversion from a raw value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.resolution()
    }

    /// Round-trip a value through the format (quantisation error included).
    pub fn round_trip(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{} ({}b)", self.int_bits(), self.frac, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_18_bit() {
        let q = FixedFormat::default();
        assert_eq!(q.width, 18);
        assert_eq!(q.frac, 10);
        assert_eq!(q.int_bits(), 8);
    }

    #[test]
    fn quantize_roundtrip_exact_values() {
        let q = FixedFormat::new(16, 8);
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 127.0] {
            assert_eq!(q.round_trip(v), v, "value {v}");
        }
    }

    #[test]
    fn quantize_rounds() {
        let q = FixedFormat::new(16, 8);
        let eps = q.resolution();
        assert_eq!(q.round_trip(0.3), (0.3f64 / eps).round() * eps);
    }

    #[test]
    fn saturation() {
        let q = FixedFormat::new(8, 4);
        assert_eq!(q.round_trip(1000.0), q.max_value());
        assert_eq!(q.round_trip(-1000.0), q.min_value());
        assert!(q.max_value() < 8.0);
        assert_eq!(q.min_value(), -8.0);
    }

    #[test]
    #[should_panic(expected = "frac must leave")]
    fn bad_format_panics() {
        let _ = FixedFormat::new(8, 8);
    }

    #[test]
    fn display() {
        assert_eq!(FixedFormat::default().to_string(), "Q8.10 (18b)");
    }
}
