//! Fixed-point number formats for the hardware data path.
//!
//! Besides the format descriptor itself, this module is the **single
//! definition of the integer datapath**: the raw-word operations
//! ([`FixedFormat::apply_unary`], [`FixedFormat::apply_binary`]) that the
//! generated VHDL's `isl_fixed_pkg` implements. The cone-level fixed-point
//! interpreter ([`crate::quant::eval_fixed`]) and the bit-true co-simulation
//! VM (`isl-cosim`) both execute through these functions, so "what the
//! hardware computes" is written down exactly once.

use std::fmt;

use isl_ir::{BinaryOp, UnaryOp};

/// A signed fixed-point format with `width` total bits, `frac` of which are
/// fractional (Q notation: `Q(width-frac).frac`).
///
/// The default, `Q8.10` in 18 bits, follows the fixed-point choice of the
/// hand-optimised Chambolle implementation the paper builds on, and matches
/// the 18-bit DSP/multiplier granularity of the Xilinx parts modelled here.
///
/// ```
/// use isl_fpga::FixedFormat;
/// let q = FixedFormat::default();
/// assert_eq!(q.width, 18);
/// let bits = q.quantize(0.25);
/// assert_eq!(q.dequantize(bits), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    /// Total bits, including sign.
    pub width: u32,
    /// Fractional bits.
    pub frac: u32,
}

impl Default for FixedFormat {
    fn default() -> Self {
        FixedFormat { width: 18, frac: 10 }
    }
}

impl FixedFormat {
    /// Build a format.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 64` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        assert!(frac < width, "frac must leave at least the sign bit");
        FixedFormat { width, frac }
    }

    /// Integer (non-fractional) bits, including sign.
    pub fn int_bits(&self) -> u32 {
        self.width - self.frac
    }

    /// Quantisation step.
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac as i32))
    }

    /// Largest raw word. Computed in `i128`: at `width = 64` the textbook
    /// `(1i64 << 63) - 1` overflows `i64` (a debug panic, wrapped rails in
    /// release) — the bug that made the wide end of the format-search range
    /// unusable.
    pub fn max_raw(&self) -> i64 {
        ((1i128 << (self.width - 1)) - 1) as i64
    }

    /// Smallest raw word (see [`FixedFormat::max_raw`] for why `i128`).
    pub fn min_raw(&self) -> i64 {
        (-(1i128 << (self.width - 1))) as i64
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.resolution()
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.resolution()
    }

    /// Round-to-nearest quantisation with saturation, returning the raw
    /// two's-complement value.
    ///
    /// **NaN contract:** a NaN input quantises to raw `0` (the hardware has
    /// no NaN to propagate — zero is the deterministic, documented choice;
    /// the simulator-side `isl_sim::Quantizer::apply` applies the same
    /// rule). `±inf` saturates to the rails like any other out-of-range
    /// value.
    pub fn quantize(&self, v: f64) -> i64 {
        if v.is_nan() {
            return 0;
        }
        let max_raw = self.max_raw();
        let min_raw = self.min_raw();
        let scaled = (v * (1u64 << self.frac) as f64).round();
        if scaled >= max_raw as f64 {
            max_raw
        } else if scaled <= min_raw as f64 {
            min_raw
        } else {
            scaled as i64
        }
    }

    /// Back-conversion from a raw value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.resolution()
    }

    /// Round-trip a value through the format (quantisation error included).
    pub fn round_trip(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }

    // -- the integer datapath -----------------------------------------------
    //
    // Raw-word semantics of every operation the generated hardware performs:
    // saturating add/sub/neg/abs, truncating (floor) multiply and divide with
    // the same widening the VHDL uses, non-restoring integer square root, and
    // comparisons that produce fixed-point `1.0`. `isl_fixed_pkg` and these
    // functions must stay in lock-step; `quant::eval_fixed` and the
    // `isl-cosim` VM both call them.

    /// Saturate a raw word to the representable range.
    pub fn saturate(&self, v: i64) -> i64 {
        v.clamp(self.min_raw(), self.max_raw())
    }

    /// Saturate a widened intermediate back to the rails. Every datapath
    /// operation funnels its `i128` result through here — at wide widths
    /// the old `as i64` casts wrapped (and `-a` / `a.abs()` panicked on
    /// `i64::MIN` in debug builds) before the rails were even consulted.
    ///
    /// Public because `isl-analyze` transfers interval endpoints through
    /// the *same* clamp the datapath uses: the abstract interpreter's
    /// soundness contract is "endpoint arithmetic in `i128`, then this
    /// function", never a reimplementation of the rails.
    pub fn saturate_wide(&self, v: i128) -> i64 {
        v.clamp(self.min_raw() as i128, self.max_raw() as i128) as i64
    }

    /// Does the widened intermediate `v` lie outside the rails? The static
    /// analyzer's "may saturate" verdict is exactly "some point of the
    /// abstract pre-saturation interval satisfies this predicate".
    pub fn saturates_wide(&self, v: i128) -> bool {
        v < self.min_raw() as i128 || v > self.max_raw() as i128
    }

    /// The raw word for fixed-point `1.0` (comparison results), saturated:
    /// a format with `frac >= width - 1` cannot represent `1.0` and yields
    /// the positive rail instead of a wrapped (negative) word.
    pub fn one_raw(&self) -> i64 {
        self.saturate_wide(1i128 << self.frac)
    }

    /// A unary operation on one raw word, exactly as the hardware datapath
    /// performs it.
    pub fn apply_unary(&self, op: UnaryOp, a: i64) -> i64 {
        match op {
            UnaryOp::Neg => self.saturate_wide(-(a as i128)),
            UnaryOp::Abs => self.saturate_wide((a as i128).abs()),
            UnaryOp::Sqrt => {
                // Integer square root of `a << frac`, like fx_sqrt.
                if a <= 0 {
                    0
                } else {
                    self.saturate_wide(isqrt((a as i128) << self.frac))
                }
            }
        }
    }

    /// Lane-wise [`FixedFormat::apply_unary`] over a span of raw words:
    /// `dst[i] = apply_unary(op, a[i])` for every lane.
    ///
    /// The per-op rounding/saturation dispatch is resolved once per span,
    /// not once per word: rails and shift amounts are hoisted out of the
    /// loop and each lane body is branch-poor (saturation via overflow
    /// flags and clamps), so the compiler can vectorise. The scalar
    /// functions remain the semantic definition; the in-module tests pin
    /// every span kernel bit-identical to its scalar twin, including at the
    /// `i64::MIN`/`i64::MAX` rails and width 64.
    ///
    /// # Panics
    ///
    /// Panics when `a` and `dst` differ in length.
    pub fn unary_span(&self, op: UnaryOp, a: &[i64], dst: &mut [i64]) {
        assert_eq!(a.len(), dst.len(), "span length mismatch");
        isl_telemetry::add("lane.unary", dst.len() as u64);
        let (lo, hi) = (self.min_raw(), self.max_raw());
        match op {
            UnaryOp::Neg => {
                // checked_neg is None only for i64::MIN, whose negation
                // saturates to the positive rail — same as saturate_wide.
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = x.checked_neg().map_or(hi, |v| v.clamp(lo, hi));
                }
            }
            UnaryOp::Abs => {
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = x.checked_abs().map_or(hi, |v| v.clamp(lo, hi));
                }
            }
            UnaryOp::Sqrt => {
                let frac = self.frac;
                if self.width + frac <= 63 {
                    // `x << frac` fits in 63 bits: run the integer square
                    // root in native u64 arithmetic (float-seeded, off-by-
                    // one corrected) — no i128 soft-math in the lane loop.
                    // Non-positive words clamp to zero up front (n = 0
                    // yields r = 0), keeping the lane branch-free outside
                    // the rarely-taken correction steps.
                    for (d, &x) in dst.iter_mut().zip(a) {
                        let n = (x.max(0) as u64) << frac;
                        let mut r = (n as f64).sqrt() as u64;
                        while r > 0 && r * r > n {
                            r -= 1;
                        }
                        while (r + 1) * (r + 1) <= n {
                            r += 1;
                        }
                        *d = (r as i64).min(hi);
                    }
                } else {
                    for (d, &x) in dst.iter_mut().zip(a) {
                        *d = if x <= 0 {
                            0
                        } else {
                            self.saturate_wide(isqrt((x as i128) << frac))
                        };
                    }
                }
            }
        }
    }

    /// Lane-wise [`FixedFormat::apply_binary`] over spans of raw words:
    /// `dst[i] = apply_binary(op, a[i], b[i])` for every lane. See
    /// [`FixedFormat::unary_span`] for the kernel contract.
    ///
    /// Add/sub saturate branch-free (`saturating_add` then a rail clamp —
    /// an `i64` overflow means the true sum lies past the rails in the same
    /// direction, so the result is identical to the widened path on *every*
    /// input). Multiply and divide take a **single-width `i64` lane** when
    /// the format is narrow enough that in-format operands cannot overflow
    /// it (products at `width <= 32`, shifted dividends at
    /// `width + frac <= 63`), falling back to the `i128`-widened scalar
    /// path at wide formats.
    ///
    /// The narrow lanes assume **in-format operands** — raw words produced
    /// by [`FixedFormat::quantize`] or by a previous kernel of the same
    /// format, which is every word the simulation engines ever make.
    /// Out-of-format words still yield deterministic (wrapping) results but
    /// may then diverge from the widened scalar datapath.
    ///
    /// # Panics
    ///
    /// Panics when `a`, `b` and `dst` differ in length.
    pub fn binary_span(&self, op: BinaryOp, a: &[i64], b: &[i64], dst: &mut [i64]) {
        assert_eq!(a.len(), dst.len(), "span length mismatch");
        assert_eq!(b.len(), dst.len(), "span length mismatch");
        isl_telemetry::add("lane.binary", dst.len() as u64);
        let (lo, hi) = (self.min_raw(), self.max_raw());
        let lanes = dst.iter_mut().zip(a.iter().zip(b));
        match op {
            BinaryOp::Add => {
                for (d, (&x, &y)) in lanes {
                    *d = x.saturating_add(y).clamp(lo, hi);
                }
            }
            BinaryOp::Sub => {
                for (d, (&x, &y)) in lanes {
                    *d = x.saturating_sub(y).clamp(lo, hi);
                }
            }
            BinaryOp::Mul => {
                let frac = self.frac;
                if self.width <= 32 {
                    // In-format products fit i64 (|x·y| <= 2^(2·width-2)):
                    // one single-width multiply per lane, no widening.
                    for (d, (&x, &y)) in lanes {
                        *d = (x.wrapping_mul(y) >> frac).clamp(lo, hi);
                    }
                } else {
                    let (wlo, whi) = (lo as i128, hi as i128);
                    for (d, (&x, &y)) in lanes {
                        *d = ((x as i128 * y as i128) >> frac).clamp(wlo, whi) as i64;
                    }
                }
            }
            BinaryOp::Div => {
                let frac = self.frac;
                if self.width + self.frac <= 52 {
                    // In-format words and shifted dividends are f64-exact:
                    // divide in f64 (truncating cast rounds toward zero,
                    // like the hardware) and repair the at-most-off-by-one
                    // float rounding with exact integer remainder checks.
                    // Far cheaper than a 64-bit `idiv` per lane, and
                    // provably bit-identical.
                    for (d, (&x, &y)) in lanes {
                        *d = if y == 0 {
                            0
                        } else {
                            let v = x << frac;
                            let mut q = (v as f64 / y as f64) as i64;
                            let r = v - q * y;
                            if r != 0 {
                                let toward = if (v < 0) == (y < 0) { 1 } else { -1 };
                                if (r < 0) != (v < 0) {
                                    // A remainder against the dividend's
                                    // sign means the quotient overshot.
                                    q -= toward;
                                } else if r.unsigned_abs() >= y.unsigned_abs() {
                                    // A full divisor left over: one short.
                                    q += toward;
                                }
                            }
                            q.clamp(lo, hi)
                        };
                    }
                } else if self.width + self.frac <= 63 {
                    // In-format shifted dividends fit i64
                    // (|x << frac| <= 2^(width-1+frac)); wrapping_div keeps
                    // the out-of-format edge (i64::MIN / -1) total.
                    for (d, (&x, &y)) in lanes {
                        *d = if y == 0 {
                            0
                        } else {
                            (x << frac).wrapping_div(y).clamp(lo, hi)
                        };
                    }
                } else {
                    let (wlo, whi) = (lo as i128, hi as i128);
                    for (d, (&x, &y)) in lanes {
                        *d = if y == 0 {
                            0
                        } else {
                            (((x as i128) << frac) / y as i128).clamp(wlo, whi) as i64
                        };
                    }
                }
            }
            BinaryOp::Min => {
                for (d, (&x, &y)) in lanes {
                    *d = x.min(y);
                }
            }
            BinaryOp::Max => {
                for (d, (&x, &y)) in lanes {
                    *d = x.max(y);
                }
            }
            BinaryOp::Lt => {
                let one = self.one_raw();
                for (d, (&x, &y)) in lanes {
                    *d = if x < y { one } else { 0 };
                }
            }
            BinaryOp::Le => {
                let one = self.one_raw();
                for (d, (&x, &y)) in lanes {
                    *d = if x <= y { one } else { 0 };
                }
            }
            BinaryOp::Gt => {
                let one = self.one_raw();
                for (d, (&x, &y)) in lanes {
                    *d = if x > y { one } else { 0 };
                }
            }
            BinaryOp::Ge => {
                let one = self.one_raw();
                for (d, (&x, &y)) in lanes {
                    *d = if x >= y { one } else { 0 };
                }
            }
        }
    }

    /// Lane-wise [`FixedFormat::apply_binary`] with a **constant** right
    /// operand — the specialisations a known word enables. A multiply by a
    /// positive power-of-two word becomes a pure shift pair; a divide by
    /// any non-zero constant loses its per-lane hardware divider — a
    /// branch-free toward-zero shift for power-of-two magnitudes, a
    /// Granlund–Montgomery reciprocal multiply otherwise. These are the
    /// hot constants of stencil kernels (×2, ×4, ÷16, ÷λ). Returns `true`
    /// when a specialised kernel ran; callers must fall back to
    /// [`FixedFormat::binary_span`] over a constant-filled span on `false`.
    /// Bit-identical to that fallback on in-format operands (the span
    /// contract of [`FixedFormat::binary_span`]).
    ///
    /// # Panics
    ///
    /// Panics when `a` and `dst` differ in length.
    pub fn binary_span_const(&self, op: BinaryOp, a: &[i64], c: i64, dst: &mut [i64]) -> bool {
        assert_eq!(a.len(), dst.len(), "span length mismatch");
        let (lo, hi) = (self.min_raw(), self.max_raw());
        let pow2 = c > 0 && (c as u64).is_power_of_two();
        match op {
            BinaryOp::Mul if pow2 && self.width <= 32 => {
                isl_telemetry::add("lane.binary_const", dst.len() as u64);
                // x·2^t >> frac as shifts (wrapping_mul by a power of two
                // *is* a left shift; in-format words never clip bits under
                // the width gate).
                let t = c.trailing_zeros();
                let frac = self.frac;
                for (d, &x) in dst.iter_mut().zip(a) {
                    *d = ((x << t) >> frac).clamp(lo, hi);
                }
                true
            }
            BinaryOp::Div if self.width + self.frac <= 63 => {
                isl_telemetry::add("lane.binary_const", dst.len() as u64);
                let frac = self.frac;
                if c == 0 {
                    // The datapath's divide-by-zero contract: raw zero.
                    dst.fill(0);
                } else if pow2 {
                    // (x << frac) / 2^j with truncation toward zero: add
                    // the sign-selected bias, then arithmetic-shift — no
                    // divider.
                    let j = c.trailing_zeros();
                    let bias = c - 1;
                    for (d, &x) in dst.iter_mut().zip(a) {
                        let v = x << frac;
                        *d = ((v + ((v >> 63) & bias)) >> j).clamp(lo, hi);
                    }
                } else if c.unsigned_abs().is_power_of_two() {
                    // Negative divisor of power-of-two magnitude:
                    // truncation commutes with the sign, so shift on the
                    // magnitude and negate.
                    let div = c.unsigned_abs();
                    let j = div.trailing_zeros();
                    let bias = (div - 1) as i64;
                    for (d, &x) in dst.iter_mut().zip(a) {
                        let v = x << frac;
                        let q = (v + ((v >> 63) & bias)) >> j;
                        *d = (-q).clamp(lo, hi);
                    }
                } else {
                    // General constant: Granlund–Montgomery round-down
                    // reciprocal on magnitudes. `div >= 3` and not a power
                    // of two here, so `m` fits in a u64; the round-down
                    // quotient is at most one short and a single fixup
                    // restores exact truncation toward zero — no per-lane
                    // divide. Fully branch-free: the fixup is a setcc add
                    // and the sign is re-applied with a mask, so lanes of
                    // mixed-sign data cost no mispredictions.
                    let div = c.unsigned_abs();
                    let l = 63 - div.leading_zeros();
                    let m = ((1u128 << (64 + l)) / div as u128) as u64;
                    let flip = -(i64::from(c < 0));
                    for (d, &x) in dst.iter_mut().zip(a) {
                        let v = x << frac;
                        let s = v >> 63;
                        let n = ((v ^ s) - s) as u64;
                        let mut q = (((n as u128 * m as u128) >> 64) as u64) >> l;
                        q += u64::from(n - q * div >= div);
                        let t = s ^ flip;
                        *d = ((q as i64 ^ t) - t).clamp(lo, hi);
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Lane-wise [`FixedFormat::quantize`]: load an `f64` span into raw
    /// words (the window-buffer load of the hardware), rails hoisted.
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` differ in length.
    pub fn quantize_span(&self, src: &[f64], dst: &mut [i64]) {
        assert_eq!(src.len(), dst.len(), "span length mismatch");
        isl_telemetry::add("lane.quantize", dst.len() as u64);
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = self.quantize(v);
        }
    }

    /// Lane-wise [`FixedFormat::dequantize`]: raw words back to real units.
    ///
    /// # Panics
    ///
    /// Panics when `src` and `dst` differ in length.
    pub fn dequantize_span(&self, src: &[i64], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len(), "span length mismatch");
        isl_telemetry::add("lane.dequantize", dst.len() as u64);
        let res = self.resolution();
        for (d, &r) in dst.iter_mut().zip(src) {
            *d = r as f64 * res;
        }
    }

    /// A binary operation on raw words, exactly as the hardware datapath
    /// performs it: widened truncating multiply/divide, divide-by-zero
    /// yielding zero (like `fx_div`), comparisons producing fixed-point one.
    pub fn apply_binary(&self, op: BinaryOp, a: i64, b: i64) -> i64 {
        match op {
            BinaryOp::Add => self.saturate_wide(a as i128 + b as i128),
            BinaryOp::Sub => self.saturate_wide(a as i128 - b as i128),
            BinaryOp::Mul => self.saturate_wide((a as i128 * b as i128) >> self.frac),
            BinaryOp::Div => {
                if b == 0 {
                    0
                } else {
                    self.saturate_wide(((a as i128) << self.frac) / b as i128)
                }
            }
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Lt => {
                if a < b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Le => {
                if a <= b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Gt => {
                if a > b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Ge => {
                if a >= b {
                    self.one_raw()
                } else {
                    0
                }
            }
        }
    }
}

/// Integer square root (floor) on the widened intermediate type, exactly
/// the routine [`FixedFormat::apply_unary`] uses for `Sqrt`. Public so the
/// `isl-analyze` interval transfer for `Sqrt` maps endpoints through the
/// *same* function the datapath evaluates (monotonicity of `isqrt` makes
/// endpoint mapping sound).
pub fn isqrt_wide(n: i128) -> i128 {
    isqrt(n)
}

/// Integer square root (floor) for non-negative `i128`.
pub(crate) fn isqrt(n: i128) -> i128 {
    if n < 2 {
        return n.max(0);
    }
    let mut x = (n as f64).sqrt() as i128;
    // Newton touch-ups to correct float rounding.
    while x > 0 && x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{} ({}b)", self.int_bits(), self.frac, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_18_bit() {
        let q = FixedFormat::default();
        assert_eq!(q.width, 18);
        assert_eq!(q.frac, 10);
        assert_eq!(q.int_bits(), 8);
    }

    #[test]
    fn quantize_roundtrip_exact_values() {
        let q = FixedFormat::new(16, 8);
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 127.0] {
            assert_eq!(q.round_trip(v), v, "value {v}");
        }
    }

    #[test]
    fn quantize_rounds() {
        let q = FixedFormat::new(16, 8);
        let eps = q.resolution();
        assert_eq!(q.round_trip(0.3), (0.3f64 / eps).round() * eps);
    }

    #[test]
    fn saturation() {
        let q = FixedFormat::new(8, 4);
        assert_eq!(q.round_trip(1000.0), q.max_value());
        assert_eq!(q.round_trip(-1000.0), q.min_value());
        assert!(q.max_value() < 8.0);
        assert_eq!(q.min_value(), -8.0);
    }

    #[test]
    #[should_panic(expected = "frac must leave")]
    fn bad_format_panics() {
        let _ = FixedFormat::new(8, 8);
    }

    #[test]
    fn display() {
        assert_eq!(FixedFormat::default().to_string(), "Q8.10 (18b)");
    }

    #[test]
    fn isqrt_exact() {
        for n in 0..2000i128 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
        assert_eq!(isqrt(1 << 40), 1 << 20);
    }

    #[test]
    fn wide_width_rails_do_not_overflow() {
        // Regression: at widths 63 and 64 (the wide end the format search
        // probes) the old `(1i64 << (width - 1)) - 1` rails overflowed i64 —
        // a panic in debug builds, silently wrapped rails in release.
        for width in [62u32, 63, 64] {
            let q = FixedFormat::new(width, 10);
            assert!(q.max_raw() > 0, "width {width}");
            assert!(q.min_raw() < 0, "width {width}");
            assert_eq!(q.saturate(i64::MAX), q.max_raw());
            assert_eq!(q.saturate(i64::MIN), q.min_raw());
            assert_eq!(q.quantize(1e300), q.max_raw());
            assert_eq!(q.quantize(-1e300), q.min_raw());
            assert_eq!(q.quantize(f64::INFINITY), q.max_raw());
            assert_eq!(q.round_trip(1.0), 1.0);
            assert_eq!(q.round_trip(-2.5), -2.5);
            assert!(q.max_value() > 0.0 && q.min_value() < 0.0);
        }
        let q64 = FixedFormat::new(64, 10);
        assert_eq!(q64.max_raw(), i64::MAX);
        assert_eq!(q64.min_raw(), i64::MIN);
    }

    #[test]
    fn wide_width_datapath_saturates_instead_of_panicking() {
        let q = FixedFormat::new(64, 10);
        // Neg/Abs on i64::MIN used to panic (`-i64::MIN` / `i64::MIN.abs()`
        // overflow); the datapath must saturate to the positive rail.
        assert_eq!(q.apply_unary(UnaryOp::Neg, i64::MIN), i64::MAX);
        assert_eq!(q.apply_unary(UnaryOp::Abs, i64::MIN), i64::MAX);
        assert_eq!(q.apply_unary(UnaryOp::Neg, i64::MAX), i64::MIN + 1);
        // Saturating add/sub at the full-i64 rails.
        assert_eq!(q.apply_binary(BinaryOp::Add, i64::MAX, i64::MAX), i64::MAX);
        assert_eq!(q.apply_binary(BinaryOp::Sub, i64::MIN, i64::MAX), i64::MIN);
        // Widened multiply/divide results beyond i64 saturate, not wrap.
        let w63 = FixedFormat::new(63, 0);
        let big = w63.max_raw();
        assert_eq!(w63.apply_binary(BinaryOp::Mul, big, big), big);
        assert_eq!(w63.apply_binary(BinaryOp::Mul, big, -big), w63.min_raw());
        let deep = FixedFormat::new(63, 40);
        assert_eq!(deep.apply_binary(BinaryOp::Div, deep.max_raw(), 1), deep.max_raw());
        // Sqrt of the rail stays on the rails.
        assert!(q.apply_unary(UnaryOp::Sqrt, i64::MAX) <= q.max_raw());
    }

    #[test]
    fn one_raw_saturates_when_one_is_unrepresentable() {
        // Q1.7 in 8 bits cannot hold 1.0: the comparison constant must be
        // the positive rail, not the wrapped (negative) `1 << 7`.
        let q = FixedFormat::new(8, 7);
        assert_eq!(q.one_raw(), q.max_raw());
        assert!(q.one_raw() > 0);
        // Ordinary formats are untouched.
        assert_eq!(FixedFormat::default().one_raw(), 1 << 10);
    }

    #[test]
    fn nan_quantizes_to_zero() {
        // The documented NaN contract: raw 0, deterministically.
        for q in [FixedFormat::default(), FixedFormat::new(64, 10), FixedFormat::new(8, 4)] {
            assert_eq!(q.quantize(f64::NAN), 0);
            assert_eq!(q.round_trip(f64::NAN), 0.0);
        }
    }

    /// Deterministic mix of adversarial **in-format** raw words for a
    /// format: the rails, their neighbourhoods and LCG-scattered words, all
    /// saturated to the format (the span-kernel contract — at width 64 that
    /// still includes the full `i64::MIN`/`i64::MAX` extremes).
    fn probe_words(q: FixedFormat) -> Vec<i64> {
        let mut words: Vec<i64> = [
            0,
            1,
            -1,
            q.one_raw(),
            -q.one_raw(),
            q.max_raw(),
            q.min_raw(),
            q.max_raw().saturating_sub(1),
            q.min_raw().saturating_add(1),
            i64::MAX,
            i64::MIN,
            i64::MIN + 1,
        ]
        .into_iter()
        .map(|w| q.saturate(w))
        .collect();
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..104 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            words.push(q.saturate(s as i64));
        }
        words
    }

    #[test]
    fn span_kernels_match_scalar_datapath_bitwise() {
        use BinaryOp::*;
        use UnaryOp::*;
        // The satellite widths: byte, DSP-native, odd mid, past-f64-mantissa,
        // and both full-rail extremes.
        for (w, f) in [(8, 4), (18, 10), (31, 13), (54, 30), (63, 40), (64, 10), (8, 7), (64, 63)]
        {
            let q = FixedFormat::new(w, f);
            let a = probe_words(q);
            let mut b = probe_words(q);
            b.rotate_left(7);
            let mut dst = vec![0i64; a.len()];
            for op in [Neg, Abs, Sqrt] {
                q.unary_span(op, &a, &mut dst);
                for (i, (&x, &d)) in a.iter().zip(&dst).enumerate() {
                    assert_eq!(d, q.apply_unary(op, x), "{q} {op:?} lane {i} word {x}");
                }
            }
            for op in [Add, Sub, Mul, Div, Min, Max, Lt, Le, Gt, Ge] {
                q.binary_span(op, &a, &b, &mut dst);
                for (i, ((&x, &y), &d)) in a.iter().zip(&b).zip(&dst).enumerate() {
                    assert_eq!(
                        d,
                        q.apply_binary(op, x, y),
                        "{q} {op:?} lane {i} words {x}, {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn const_operand_spans_match_scalar_datapath_bitwise() {
        use BinaryOp::*;
        // Whenever the const-operand kernel claims an (op, c) pair, its
        // lanes must equal the scalar datapath exactly; the power-of-two
        // hot path must actually engage for the convolution constants.
        for (w, f) in [(8, 4), (18, 10), (31, 13), (54, 30), (63, 40), (64, 10), (8, 7)] {
            let q = FixedFormat::new(w, f);
            let a = probe_words(q);
            let mut dst = vec![0i64; a.len()];
            let consts = [
                0,
                1,
                -1,
                2,
                3,
                q.one_raw(),
                q.saturate(q.one_raw() << 1),
                q.saturate(q.one_raw() << 2),
                q.quantize(16.0),
                q.max_raw(),
                q.min_raw(),
            ];
            for op in [Add, Sub, Mul, Div, Min, Max, Lt, Le, Gt, Ge] {
                for c in consts {
                    if !q.binary_span_const(op, &a, c, &mut dst) {
                        continue;
                    }
                    for (i, (&x, &d)) in a.iter().zip(&dst).enumerate() {
                        assert_eq!(
                            d,
                            q.apply_binary(op, x, c),
                            "{q} {op:?} lane {i} word {x} const {c}"
                        );
                    }
                }
            }
            // The point of the kernel: ×2 and ÷16 take the shift path in
            // DSP-scale formats.
            if q.width <= 32 && q.frac + 4 < q.width {
                let sixteen = q.quantize(16.0);
                assert!(q.binary_span_const(Mul, &a, q.saturate(q.one_raw() << 1), &mut dst));
                assert!(q.binary_span_const(Div, &a, sixteen, &mut dst));
            }
        }
    }

    #[test]
    fn division_lanes_are_exact_exhaustively() {
        use BinaryOp::Div;
        // Width 8 is small enough to check every raw operand pair: the f64
        // fast path with remainder fixup and every const-divisor kernel
        // (shift, negative power of two, reciprocal multiply, zero) must
        // equal the i128 definition on all of them.
        for frac in [1, 4, 7] {
            let q = FixedFormat::new(8, frac);
            let xs: Vec<i64> = (q.min_raw()..=q.max_raw()).collect();
            let mut dst = vec![0i64; xs.len()];
            for y in q.min_raw()..=q.max_raw() {
                let ys = vec![y; xs.len()];
                q.binary_span(Div, &xs, &ys, &mut dst);
                for (&x, &d) in xs.iter().zip(&dst) {
                    assert_eq!(d, q.apply_binary(Div, x, y), "{q} span {x}/{y}");
                }
                assert!(q.binary_span_const(Div, &xs, y, &mut dst));
                for (&x, &d) in xs.iter().zip(&dst) {
                    assert_eq!(d, q.apply_binary(Div, x, y), "{q} const {x}/{y}");
                }
            }
        }
    }

    #[test]
    fn quantize_spans_match_scalar() {
        for (w, f) in [(8, 4), (18, 10), (54, 30), (64, 10)] {
            let q = FixedFormat::new(w, f);
            let vals: Vec<f64> = vec![
                0.0,
                -0.0,
                1.0,
                -1.5,
                1e300,
                -1e300,
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                q.max_value(),
                q.min_value(),
                0.3,
            ];
            let mut raw = vec![0i64; vals.len()];
            q.quantize_span(&vals, &mut raw);
            for (&v, &r) in vals.iter().zip(&raw) {
                assert_eq!(r, q.quantize(v), "{q} at {v}");
            }
            let mut back = vec![0.0f64; raw.len()];
            q.dequantize_span(&raw, &mut back);
            for (&r, &v) in raw.iter().zip(&back) {
                assert_eq!(v.to_bits(), q.dequantize(r).to_bits(), "{q} raw {r}");
            }
        }
    }

    #[test]
    fn integer_ops_match_hardware_shapes() {
        let q = FixedFormat::new(8, 4); // Q4.4
        let one = q.one_raw();
        assert_eq!(one, 16);
        // Saturating add at the rails.
        assert_eq!(q.apply_binary(BinaryOp::Add, 120, 120), 127);
        assert_eq!(q.apply_binary(BinaryOp::Sub, -120, 120), -128);
        // Truncating multiply: 1.5 * 1.5 = 2.25 -> 36 exactly in Q4.4.
        assert_eq!(q.apply_binary(BinaryOp::Mul, 24, 24), 36);
        // Floor truncation: 0.0625 * 0.0625 floors to 0.
        assert_eq!(q.apply_binary(BinaryOp::Mul, 1, 1), 0);
        // Division by zero is zero, like fx_div.
        assert_eq!(q.apply_binary(BinaryOp::Div, one, 0), 0);
        assert_eq!(q.apply_binary(BinaryOp::Div, 32, 16), 32);
        // Comparisons produce fixed-point booleans.
        assert_eq!(q.apply_binary(BinaryOp::Lt, 1, 2), one);
        assert_eq!(q.apply_binary(BinaryOp::Ge, 1, 2), 0);
        // Unary.
        assert_eq!(q.apply_unary(UnaryOp::Neg, 7), -7);
        assert_eq!(q.apply_unary(UnaryOp::Abs, -7), 7);
        // sqrt(4.0): raw 64 -> sqrt -> raw 32 (2.0).
        assert_eq!(q.apply_unary(UnaryOp::Sqrt, 64), 32);
        assert_eq!(q.apply_unary(UnaryOp::Sqrt, -3), 0);
    }
}
