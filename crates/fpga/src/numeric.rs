//! Fixed-point number formats for the hardware data path.
//!
//! Besides the format descriptor itself, this module is the **single
//! definition of the integer datapath**: the raw-word operations
//! ([`FixedFormat::apply_unary`], [`FixedFormat::apply_binary`]) that the
//! generated VHDL's `isl_fixed_pkg` implements. The cone-level fixed-point
//! interpreter ([`crate::quant::eval_fixed`]) and the bit-true co-simulation
//! VM (`isl-cosim`) both execute through these functions, so "what the
//! hardware computes" is written down exactly once.

use std::fmt;

use isl_ir::{BinaryOp, UnaryOp};

/// A signed fixed-point format with `width` total bits, `frac` of which are
/// fractional (Q notation: `Q(width-frac).frac`).
///
/// The default, `Q8.10` in 18 bits, follows the fixed-point choice of the
/// hand-optimised Chambolle implementation the paper builds on, and matches
/// the 18-bit DSP/multiplier granularity of the Xilinx parts modelled here.
///
/// ```
/// use isl_fpga::FixedFormat;
/// let q = FixedFormat::default();
/// assert_eq!(q.width, 18);
/// let bits = q.quantize(0.25);
/// assert_eq!(q.dequantize(bits), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedFormat {
    /// Total bits, including sign.
    pub width: u32,
    /// Fractional bits.
    pub frac: u32,
}

impl Default for FixedFormat {
    fn default() -> Self {
        FixedFormat { width: 18, frac: 10 }
    }
}

impl FixedFormat {
    /// Build a format.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= 64` and `frac < width`.
    pub fn new(width: u32, frac: u32) -> Self {
        assert!(width > 0 && width <= 64, "width must be in 1..=64");
        assert!(frac < width, "frac must leave at least the sign bit");
        FixedFormat { width, frac }
    }

    /// Integer (non-fractional) bits, including sign.
    pub fn int_bits(&self) -> u32 {
        self.width - self.frac
    }

    /// Quantisation step.
    pub fn resolution(&self) -> f64 {
        (2.0f64).powi(-(self.frac as i32))
    }

    /// Largest raw word. Computed in `i128`: at `width = 64` the textbook
    /// `(1i64 << 63) - 1` overflows `i64` (a debug panic, wrapped rails in
    /// release) — the bug that made the wide end of the format-search range
    /// unusable.
    pub fn max_raw(&self) -> i64 {
        ((1i128 << (self.width - 1)) - 1) as i64
    }

    /// Smallest raw word (see [`FixedFormat::max_raw`] for why `i128`).
    pub fn min_raw(&self) -> i64 {
        (-(1i128 << (self.width - 1))) as i64
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.resolution()
    }

    /// Smallest representable value.
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.resolution()
    }

    /// Round-to-nearest quantisation with saturation, returning the raw
    /// two's-complement value.
    ///
    /// **NaN contract:** a NaN input quantises to raw `0` (the hardware has
    /// no NaN to propagate — zero is the deterministic, documented choice;
    /// the simulator-side `isl_sim::Quantizer::apply` applies the same
    /// rule). `±inf` saturates to the rails like any other out-of-range
    /// value.
    pub fn quantize(&self, v: f64) -> i64 {
        if v.is_nan() {
            return 0;
        }
        let max_raw = self.max_raw();
        let min_raw = self.min_raw();
        let scaled = (v * (1u64 << self.frac) as f64).round();
        if scaled >= max_raw as f64 {
            max_raw
        } else if scaled <= min_raw as f64 {
            min_raw
        } else {
            scaled as i64
        }
    }

    /// Back-conversion from a raw value.
    pub fn dequantize(&self, raw: i64) -> f64 {
        raw as f64 * self.resolution()
    }

    /// Round-trip a value through the format (quantisation error included).
    pub fn round_trip(&self, v: f64) -> f64 {
        self.dequantize(self.quantize(v))
    }

    // -- the integer datapath -----------------------------------------------
    //
    // Raw-word semantics of every operation the generated hardware performs:
    // saturating add/sub/neg/abs, truncating (floor) multiply and divide with
    // the same widening the VHDL uses, non-restoring integer square root, and
    // comparisons that produce fixed-point `1.0`. `isl_fixed_pkg` and these
    // functions must stay in lock-step; `quant::eval_fixed` and the
    // `isl-cosim` VM both call them.

    /// Saturate a raw word to the representable range.
    pub fn saturate(&self, v: i64) -> i64 {
        v.clamp(self.min_raw(), self.max_raw())
    }

    /// Saturate a widened intermediate back to the rails. Every datapath
    /// operation funnels its `i128` result through here — at wide widths
    /// the old `as i64` casts wrapped (and `-a` / `a.abs()` panicked on
    /// `i64::MIN` in debug builds) before the rails were even consulted.
    fn saturate_wide(&self, v: i128) -> i64 {
        v.clamp(self.min_raw() as i128, self.max_raw() as i128) as i64
    }

    /// The raw word for fixed-point `1.0` (comparison results), saturated:
    /// a format with `frac >= width - 1` cannot represent `1.0` and yields
    /// the positive rail instead of a wrapped (negative) word.
    pub fn one_raw(&self) -> i64 {
        self.saturate_wide(1i128 << self.frac)
    }

    /// A unary operation on one raw word, exactly as the hardware datapath
    /// performs it.
    pub fn apply_unary(&self, op: UnaryOp, a: i64) -> i64 {
        match op {
            UnaryOp::Neg => self.saturate_wide(-(a as i128)),
            UnaryOp::Abs => self.saturate_wide((a as i128).abs()),
            UnaryOp::Sqrt => {
                // Integer square root of `a << frac`, like fx_sqrt.
                if a <= 0 {
                    0
                } else {
                    self.saturate_wide(isqrt((a as i128) << self.frac))
                }
            }
        }
    }

    /// A binary operation on raw words, exactly as the hardware datapath
    /// performs it: widened truncating multiply/divide, divide-by-zero
    /// yielding zero (like `fx_div`), comparisons producing fixed-point one.
    pub fn apply_binary(&self, op: BinaryOp, a: i64, b: i64) -> i64 {
        match op {
            BinaryOp::Add => self.saturate_wide(a as i128 + b as i128),
            BinaryOp::Sub => self.saturate_wide(a as i128 - b as i128),
            BinaryOp::Mul => self.saturate_wide((a as i128 * b as i128) >> self.frac),
            BinaryOp::Div => {
                if b == 0 {
                    0
                } else {
                    self.saturate_wide(((a as i128) << self.frac) / b as i128)
                }
            }
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Lt => {
                if a < b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Le => {
                if a <= b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Gt => {
                if a > b {
                    self.one_raw()
                } else {
                    0
                }
            }
            BinaryOp::Ge => {
                if a >= b {
                    self.one_raw()
                } else {
                    0
                }
            }
        }
    }
}

/// Integer square root (floor) for non-negative `i128`.
pub(crate) fn isqrt(n: i128) -> i128 {
    if n < 2 {
        return n.max(0);
    }
    let mut x = (n as f64).sqrt() as i128;
    // Newton touch-ups to correct float rounding.
    while x > 0 && x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x
}

impl fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{} ({}b)", self.int_bits(), self.frac, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_18_bit() {
        let q = FixedFormat::default();
        assert_eq!(q.width, 18);
        assert_eq!(q.frac, 10);
        assert_eq!(q.int_bits(), 8);
    }

    #[test]
    fn quantize_roundtrip_exact_values() {
        let q = FixedFormat::new(16, 8);
        for v in [0.0, 1.0, -1.0, 0.5, -0.25, 127.0] {
            assert_eq!(q.round_trip(v), v, "value {v}");
        }
    }

    #[test]
    fn quantize_rounds() {
        let q = FixedFormat::new(16, 8);
        let eps = q.resolution();
        assert_eq!(q.round_trip(0.3), (0.3f64 / eps).round() * eps);
    }

    #[test]
    fn saturation() {
        let q = FixedFormat::new(8, 4);
        assert_eq!(q.round_trip(1000.0), q.max_value());
        assert_eq!(q.round_trip(-1000.0), q.min_value());
        assert!(q.max_value() < 8.0);
        assert_eq!(q.min_value(), -8.0);
    }

    #[test]
    #[should_panic(expected = "frac must leave")]
    fn bad_format_panics() {
        let _ = FixedFormat::new(8, 8);
    }

    #[test]
    fn display() {
        assert_eq!(FixedFormat::default().to_string(), "Q8.10 (18b)");
    }

    #[test]
    fn isqrt_exact() {
        for n in 0..2000i128 {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
        assert_eq!(isqrt(1 << 40), 1 << 20);
    }

    #[test]
    fn wide_width_rails_do_not_overflow() {
        // Regression: at widths 63 and 64 (the wide end the format search
        // probes) the old `(1i64 << (width - 1)) - 1` rails overflowed i64 —
        // a panic in debug builds, silently wrapped rails in release.
        for width in [62u32, 63, 64] {
            let q = FixedFormat::new(width, 10);
            assert!(q.max_raw() > 0, "width {width}");
            assert!(q.min_raw() < 0, "width {width}");
            assert_eq!(q.saturate(i64::MAX), q.max_raw());
            assert_eq!(q.saturate(i64::MIN), q.min_raw());
            assert_eq!(q.quantize(1e300), q.max_raw());
            assert_eq!(q.quantize(-1e300), q.min_raw());
            assert_eq!(q.quantize(f64::INFINITY), q.max_raw());
            assert_eq!(q.round_trip(1.0), 1.0);
            assert_eq!(q.round_trip(-2.5), -2.5);
            assert!(q.max_value() > 0.0 && q.min_value() < 0.0);
        }
        let q64 = FixedFormat::new(64, 10);
        assert_eq!(q64.max_raw(), i64::MAX);
        assert_eq!(q64.min_raw(), i64::MIN);
    }

    #[test]
    fn wide_width_datapath_saturates_instead_of_panicking() {
        let q = FixedFormat::new(64, 10);
        // Neg/Abs on i64::MIN used to panic (`-i64::MIN` / `i64::MIN.abs()`
        // overflow); the datapath must saturate to the positive rail.
        assert_eq!(q.apply_unary(UnaryOp::Neg, i64::MIN), i64::MAX);
        assert_eq!(q.apply_unary(UnaryOp::Abs, i64::MIN), i64::MAX);
        assert_eq!(q.apply_unary(UnaryOp::Neg, i64::MAX), i64::MIN + 1);
        // Saturating add/sub at the full-i64 rails.
        assert_eq!(q.apply_binary(BinaryOp::Add, i64::MAX, i64::MAX), i64::MAX);
        assert_eq!(q.apply_binary(BinaryOp::Sub, i64::MIN, i64::MAX), i64::MIN);
        // Widened multiply/divide results beyond i64 saturate, not wrap.
        let w63 = FixedFormat::new(63, 0);
        let big = w63.max_raw();
        assert_eq!(w63.apply_binary(BinaryOp::Mul, big, big), big);
        assert_eq!(w63.apply_binary(BinaryOp::Mul, big, -big), w63.min_raw());
        let deep = FixedFormat::new(63, 40);
        assert_eq!(deep.apply_binary(BinaryOp::Div, deep.max_raw(), 1), deep.max_raw());
        // Sqrt of the rail stays on the rails.
        assert!(q.apply_unary(UnaryOp::Sqrt, i64::MAX) <= q.max_raw());
    }

    #[test]
    fn one_raw_saturates_when_one_is_unrepresentable() {
        // Q1.7 in 8 bits cannot hold 1.0: the comparison constant must be
        // the positive rail, not the wrapped (negative) `1 << 7`.
        let q = FixedFormat::new(8, 7);
        assert_eq!(q.one_raw(), q.max_raw());
        assert!(q.one_raw() > 0);
        // Ordinary formats are untouched.
        assert_eq!(FixedFormat::default().one_raw(), 1 << 10);
    }

    #[test]
    fn nan_quantizes_to_zero() {
        // The documented NaN contract: raw 0, deterministically.
        for q in [FixedFormat::default(), FixedFormat::new(64, 10), FixedFormat::new(8, 4)] {
            assert_eq!(q.quantize(f64::NAN), 0);
            assert_eq!(q.round_trip(f64::NAN), 0.0);
        }
    }

    #[test]
    fn integer_ops_match_hardware_shapes() {
        let q = FixedFormat::new(8, 4); // Q4.4
        let one = q.one_raw();
        assert_eq!(one, 16);
        // Saturating add at the rails.
        assert_eq!(q.apply_binary(BinaryOp::Add, 120, 120), 127);
        assert_eq!(q.apply_binary(BinaryOp::Sub, -120, 120), -128);
        // Truncating multiply: 1.5 * 1.5 = 2.25 -> 36 exactly in Q4.4.
        assert_eq!(q.apply_binary(BinaryOp::Mul, 24, 24), 36);
        // Floor truncation: 0.0625 * 0.0625 floors to 0.
        assert_eq!(q.apply_binary(BinaryOp::Mul, 1, 1), 0);
        // Division by zero is zero, like fx_div.
        assert_eq!(q.apply_binary(BinaryOp::Div, one, 0), 0);
        assert_eq!(q.apply_binary(BinaryOp::Div, 32, 16), 32);
        // Comparisons produce fixed-point booleans.
        assert_eq!(q.apply_binary(BinaryOp::Lt, 1, 2), one);
        assert_eq!(q.apply_binary(BinaryOp::Ge, 1, 2), 0);
        // Unary.
        assert_eq!(q.apply_unary(UnaryOp::Neg, 7), -7);
        assert_eq!(q.apply_unary(UnaryOp::Abs, -7), 7);
        // sqrt(4.0): raw 64 -> sqrt -> raw 32 (2.0).
        assert_eq!(q.apply_unary(UnaryOp::Sqrt, 64), 32);
        assert_eq!(q.apply_unary(UnaryOp::Sqrt, -3), 0);
    }
}
