//! Bit-accurate fixed-point evaluation of cone dataflow graphs.
//!
//! The generated VHDL computes in fixed point (`isl_fixed_pkg`), while the
//! functional simulator uses `f64`. This module evaluates a cone exactly the
//! way the hardware does — quantising after every operation, saturating on
//! overflow, truncating multiplies — so the numeric gap between the two is a
//! measurable quantity instead of a leap of faith. The generated testbenches
//! assert against `f64` expectations with an LSB tolerance; the tests here
//! justify that tolerance.
//!
//! The per-operation raw-word semantics live on [`FixedFormat`]
//! ([`FixedFormat::apply_unary`] / [`FixedFormat::apply_binary`]); this
//! module is the tree-walking graph interpreter over them. The bit-true
//! co-simulation VM in `isl-cosim` executes lowered bytecode through the
//! same functions and is property-tested bit-identical to this walk.

use isl_ir::{Cone, FieldId, Leaf, Node, Point};

use crate::numeric::FixedFormat;

/// Evaluate `cone` in fixed-point arithmetic.
///
/// `read` supplies input values in real units (they are quantised on entry,
/// like samples loaded into the window buffer); `params` likewise. Returns
/// `(field, point, value)` per output, dequantised back to `f64`.
pub fn eval_fixed<R>(
    cone: &Cone,
    fmt: FixedFormat,
    read: R,
    params: &[f64],
) -> Vec<(FieldId, Point, f64)>
where
    R: Fn(FieldId, Point) -> f64,
{
    let params_raw: Vec<i64> = params.iter().map(|&p| fmt.quantize(p)).collect();
    eval_fixed_raw(cone, fmt, |f, p| fmt.quantize(read(f, p)), &params_raw)
        .into_iter()
        .map(|(f, p, v)| (f, p, fmt.dequantize(v)))
        .collect()
}

/// Evaluate `cone` entirely in the **raw-word domain**: `read` supplies
/// already-quantised input words, `params` likewise, and each output is
/// returned as a raw word.
///
/// This is the exact form for any width — nothing round-trips through
/// `f64`, so 63- and 64-bit datapaths (whose raw words exceed `f64`'s
/// 53-bit mantissa) evaluate bit-for-bit. Golden-vector certification
/// must use this entry point; [`eval_fixed`] is the convenience wrapper
/// for callers that live in real units.
pub fn eval_fixed_raw<R>(
    cone: &Cone,
    fmt: FixedFormat,
    read: R,
    params: &[i64],
) -> Vec<(FieldId, Point, i64)>
where
    R: Fn(FieldId, Point) -> i64,
{
    let graph = cone.graph();
    let mut vals: Vec<i64> = Vec::with_capacity(graph.len());
    for (_, node) in graph.nodes() {
        let v = match node {
            Node::Leaf(leaf) => match leaf {
                Leaf::Input { field, point } | Leaf::Static { field, point } => {
                    read(*field, *point)
                }
                Leaf::Const(c) => fmt.quantize(c.value()),
                Leaf::Param(p) => params.get(p.index()).copied().unwrap_or(0),
            },
            Node::Unary { op, arg } => fmt.apply_unary(*op, vals[arg.index()]),
            Node::Binary { op, lhs, rhs } => {
                fmt.apply_binary(*op, vals[lhs.index()], vals[rhs.index()])
            }
            Node::Select { cond, then_, else_ } => {
                if vals[cond.index()] != 0 {
                    vals[then_.index()]
                } else {
                    vals[else_.index()]
                }
            }
        };
        vals.push(v);
    }
    cone.outputs()
        .iter()
        .map(|o| (o.field, o.point, vals[o.node.index()]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset, StencilPattern, UnaryOp, Window};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(0, -1)),
            Expr::input(f, Offset::d2(-1, 0)),
            Expr::input(f, Offset::d2(1, 0)),
            Expr::input(f, Offset::d2(0, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(4.0)))
            .unwrap();
        p
    }

    fn heavy() -> StencilPattern {
        // sqrt + divide, the Chambolle-style numerics.
        let mut p = StencilPattern::new(1).with_name("heavy");
        let f = p.add_field("f", FieldKind::Dynamic);
        let gx = Expr::binary(
            BinaryOp::Sub,
            Expr::input(f, Offset::d1(1)),
            Expr::input(f, Offset::d1(-1)),
        );
        let den = Expr::binary(
            BinaryOp::Add,
            Expr::constant(1.0),
            Expr::unary(UnaryOp::Sqrt, Expr::binary(BinaryOp::Mul, gx.clone(), gx)),
        );
        p.set_update(
            f,
            Expr::binary(BinaryOp::Div, Expr::input(f, Offset::ZERO), den),
        )
        .unwrap();
        p
    }

    fn stimulus(f: FieldId, p: Point) -> f64 {
        let i = (p.x + 7 * p.y + 13 * f.index() as i32).rem_euclid(23);
        i as f64 / 8.0 - 1.0
    }

    #[test]
    fn raw_eval_is_exact_past_f64_mantissa_width() {
        // At width 63 the raw words of even modest values exceed 2^53, so
        // any path that detours through f64 rounds them. The raw walk must
        // reproduce apply_binary's arithmetic word for word.
        let mut p = StencilPattern::new(1).with_name("mul1");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(f, Offset::d1(0)),
                Expr::input(f, Offset::d1(1)),
            ),
        )
        .unwrap();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let fmt = FixedFormat::new(63, 31);
        // Two raw words with dense low bits, far beyond f64's mantissa.
        let words = [(1i64 << 60) | 0x5A5A_5A5Ai64, (3i64 << 29) | 0x33i64];
        let read = |_f: FieldId, pt: Point| words[pt.x.unsigned_abs() as usize % 2];
        let out = eval_fixed_raw(&cone, fmt, read, &[]);
        let inputs = cone.inputs();
        let expect = fmt.apply_binary(
            BinaryOp::Mul,
            read(f, inputs[0].point),
            read(f, inputs[1].point),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].2, expect);
        // The f64 round trip really would have lost these words — guard
        // that the test is non-vacuous.
        assert_ne!(fmt.quantize(fmt.dequantize(words[0])), words[0]);
    }

    #[test]
    fn fixed_point_tracks_f64_for_shift_only_kernels() {
        let p = blur();
        let cone = Cone::build(&p, Window::square(3), 3).unwrap();
        let fmt = FixedFormat::default();
        let fixed = eval_fixed(&cone, fmt, stimulus, &[]);
        let float = cone.eval(stimulus, &[]);
        for ((_, _, fv), (_, _, dv)) in fixed.iter().zip(float.iter()) {
            // Shift-and-add data path: error bounded by a few quantisation
            // steps per level.
            assert!(
                (fv - dv).abs() < 16.0 * fmt.resolution(),
                "{fv} vs {dv}"
            );
        }
    }

    #[test]
    fn more_fraction_bits_reduce_error() {
        let p = heavy();
        let cone = Cone::build(&p, Window::line(2), 2).unwrap();
        let float = cone.eval(stimulus, &[]);
        let err_of = |fmt: FixedFormat| {
            let fixed = eval_fixed(&cone, fmt, stimulus, &[]);
            fixed
                .iter()
                .zip(float.iter())
                .map(|((_, _, a), (_, _, b))| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let coarse = err_of(FixedFormat::new(16, 6));
        let fine = err_of(FixedFormat::new(28, 16));
        assert!(fine < coarse, "fine {fine} !< coarse {coarse}");
        assert!(fine < 1e-3);
    }

    #[test]
    fn saturation_engages_instead_of_wrapping() {
        // f' = f + f repeatedly overflows Q2.4 quickly; values must pin at
        // the rails, never wrap sign.
        let mut p = StencilPattern::new(1).with_name("doubler");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Add,
                Expr::input(f, Offset::ZERO),
                Expr::input(f, Offset::ZERO),
            ),
        )
        .unwrap();
        let cone = Cone::build(&p, Window::line(1), 8).unwrap();
        let fmt = FixedFormat::new(6, 4);
        let out = eval_fixed(&cone, fmt, |_, _| 1.0, &[]);
        assert_eq!(out[0].2, fmt.max_value());
        let out_neg = eval_fixed(&cone, fmt, |_, _| -1.0, &[]);
        assert_eq!(out_neg[0].2, fmt.min_value());
    }

    #[test]
    fn comparisons_yield_exact_booleans() {
        let mut p = StencilPattern::new(1).with_name("cmp");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::select(
                Expr::binary(
                    BinaryOp::Gt,
                    Expr::input(f, Offset::d1(0)),
                    Expr::constant(0.0),
                ),
                Expr::constant(1.0),
                Expr::constant(-1.0),
            ),
        )
        .unwrap();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let fmt = FixedFormat::default();
        assert_eq!(eval_fixed(&cone, fmt, |_, _| 0.5, &[])[0].2, 1.0);
        assert_eq!(eval_fixed(&cone, fmt, |_, _| -0.5, &[])[0].2, -1.0);
    }

    #[test]
    fn division_by_zero_yields_zero_like_fx_div() {
        let mut p = StencilPattern::new(1).with_name("div");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Div,
                Expr::constant(1.0),
                Expr::input(f, Offset::ZERO),
            ),
        )
        .unwrap();
        let cone = Cone::build(&p, Window::line(1), 1).unwrap();
        let out = eval_fixed(&cone, FixedFormat::default(), |_, _| 0.0, &[]);
        assert_eq!(out[0].2, 0.0);
    }
}
