//! Technology mapping: operation nodes → LUT/FF/DSP resources and delays.
//!
//! The mapping follows standard FPGA arithmetic implementation practice:
//!
//! * adders/subtractors ride the carry chain (1 LUT/bit);
//! * multiplications by constants are decomposed into shift-adds using the
//!   canonical signed digit (CSD / non-adjacent form) recoding of the
//!   constant — so a Gaussian kernel tap `×2` is free and `×√2 ≈ Q10
//!   constant` costs a handful of adders;
//! * general multiplications take DSP blocks — one per
//!   `dsp_input_bits`-wide operand tile, `⌈w/g⌉²` for wide words
//!   ([`dsp_blocks_for_width`]) — falling back to LUT arrays when DSPs run
//!   out;
//! * division and square root become pipelined iterative arrays (one
//!   subtract-compare stage per result bit);
//! * every operation's result is registered (one pipeline stage), which is
//!   the hardware realisation of the paper's "store the result in a
//!   register" reuse rule.

use isl_ir::{BinaryOp, Graph, Leaf, Node, NodeId, UnaryOp};

use crate::device::Device;
use crate::numeric::FixedFormat;

/// Resources and timing of one mapped operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceCost {
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Combinational delay of the slowest pipeline stage of this operation,
    /// nanoseconds (excludes register overhead).
    pub stage_delay_ns: f64,
    /// Pipeline stages occupied (1 for simple ops, `width` for dividers).
    pub stages: u32,
}

impl ResourceCost {
    /// Componentwise sum.
    pub fn add(&self, other: &ResourceCost) -> ResourceCost {
        ResourceCost {
            luts: self.luts + other.luts,
            ffs: self.ffs + other.ffs,
            dsps: self.dsps + other.dsps,
            stage_delay_ns: self.stage_delay_ns.max(other.stage_delay_ns),
            stages: self.stages.max(other.stages),
        }
    }
}

/// Number of non-zero digits in the canonical signed digit (non-adjacent
/// form) recoding of `n` — the number of partial products a constant
/// multiplier needs.
///
/// ```
/// use isl_fpga::techmap::csd_nonzero_digits;
/// assert_eq!(csd_nonzero_digits(0), 0);
/// assert_eq!(csd_nonzero_digits(4), 1);   // one shift
/// assert_eq!(csd_nonzero_digits(7), 2);   // 8 - 1
/// assert_eq!(csd_nonzero_digits(0b1010101), 4);
/// ```
pub fn csd_nonzero_digits(n: u64) -> u32 {
    if n == 0 {
        return 0;
    }
    let n = n as u128;
    ((3 * n) ^ n).count_ones()
}

/// Adders needed to multiply by the constant `c` in format `fmt`
/// (shift-adds after CSD recoding; 0 for powers of two and for 0/±1).
pub fn const_mul_adders(c: f64, fmt: FixedFormat) -> u32 {
    let raw = (c.abs() * (1u64 << fmt.frac) as f64).round() as u64;
    csd_nonzero_digits(raw).saturating_sub(1)
}

/// Whether multiplying by `c` is a pure shift (CSD has at most one digit).
pub fn const_is_shift(c: f64, fmt: FixedFormat) -> bool {
    const_mul_adders(c, fmt) == 0
}

fn adder_delay(dev: &Device, width: u32) -> f64 {
    dev.lut_delay_ns + dev.carry_per_bit_ns * width as f64 + dev.routing_delay_ns
}

fn adder_cost(dev: &Device, width: u32) -> ResourceCost {
    ResourceCost {
        luts: width as u64,
        ffs: width as u64,
        dsps: 0,
        stage_delay_ns: adder_delay(dev, width),
        stages: 1,
    }
}

/// DSP blocks a `w`-bit general multiply occupies on `dev`: `⌈w/g⌉²` for a
/// DSP granularity of `g` input bits (schoolbook tiling of the partial
/// products). The old model hardcoded "one DSP if `w <= 18`, else fall back
/// to fabric" — precision-aware DSE sweeps word widths, so the block count
/// must follow the operand width.
///
/// ```
/// use isl_fpga::techmap::dsp_blocks_for_width;
/// use isl_fpga::Device;
/// let dev = Device::virtex6_xc6vlx760(); // 18-bit DSP inputs
/// assert_eq!(dsp_blocks_for_width(12, &dev), 1);
/// assert_eq!(dsp_blocks_for_width(18, &dev), 1);
/// assert_eq!(dsp_blocks_for_width(24, &dev), 4);  // 2x2 tiles
/// assert_eq!(dsp_blocks_for_width(54, &dev), 9);  // 3x3 tiles
/// ```
pub fn dsp_blocks_for_width(width: u32, dev: &Device) -> u64 {
    let g = dev.dsp_input_bits.max(2);
    let tiles = width.div_ceil(g).max(1) as u64;
    tiles * tiles
}

/// A general (both-operands-variable) multiply of `w` bits on DSP blocks:
/// one block when the operands fit the device granularity, a tiled array of
/// [`dsp_blocks_for_width`] blocks with carry-chain recombination adders
/// otherwise.
fn dsp_mul_cost(dev: &Device, w: u32) -> ResourceCost {
    let wu = w as u64;
    let blocks = dsp_blocks_for_width(w, dev);
    if blocks == 1 {
        return ResourceCost {
            luts: 0,
            ffs: wu,
            dsps: 1,
            stage_delay_ns: dev.dsp_delay_ns,
            stages: 1,
        };
    }
    // Recombining `blocks` shifted partial products needs `blocks - 1`
    // double-width adders, arranged as a ⌈log₂ blocks⌉-deep tree.
    let levels = (64 - (blocks - 1).leading_zeros()).max(1);
    ResourceCost {
        luts: (blocks - 1) * 2 * wu,
        ffs: wu,
        dsps: blocks,
        stage_delay_ns: dev.dsp_delay_ns + adder_delay(dev, 2 * w) * levels as f64,
        stages: 1 + levels,
    }
}

/// A general multiply of `w` bits on fabric (no DSPs): a LUT partial-product
/// array, quadratic in the operand width.
fn lut_mul_cost(dev: &Device, w: u32) -> ResourceCost {
    let wu = w as u64;
    ResourceCost {
        luts: wu * wu / 2,
        ffs: wu,
        dsps: 0,
        stage_delay_ns: adder_delay(dev, w) * (32 - w.leading_zeros()).max(1) as f64 * 0.5,
        stages: 2,
    }
}

/// Per-node pipeline-stage weight used by the latency model: iterative units
/// (divide, square root) contribute one stage per result bit (half for
/// sqrt), every other operation one stage, leaves zero.
fn latency_weight(n: &Node, fmt: FixedFormat) -> f64 {
    match n.op_kind() {
        Some(isl_ir::OpKind::Binary(BinaryOp::Div)) => fmt.width as f64,
        Some(isl_ir::OpKind::Unary(UnaryOp::Sqrt)) => (fmt.width as f64 / 2.0).max(1.0),
        Some(_) => 1.0,
        None => 0.0,
    }
}

/// Pipeline latency (in cycles) of a graph whose every operation is
/// registered: the longest path measured in pipeline stages, with iterative
/// units (divide, square root) contributing one stage per result bit.
pub fn pipeline_latency(graph: &Graph, fmt: FixedFormat) -> u32 {
    let latency = graph.longest_path(|n| latency_weight(n, fmt));
    (latency as u32).max(1)
}

/// The complete techmap result of one graph: resource totals, the slowest
/// combinational stage, and the pipeline latency — everything the
/// synthesiser and the scheduler need, from **one** traversal.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MappedGraph {
    /// Logic LUTs over all mapped (reachable) operations.
    pub luts: u64,
    /// Flip-flops over all mapped operations.
    pub ffs: u64,
    /// DSP blocks over all mapped operations.
    pub dsps: u64,
    /// Combinational delay of the slowest single pipeline stage, ns.
    pub max_stage_delay_ns: f64,
    /// Pipeline latency in cycles (identical to [`pipeline_latency`]).
    pub latency_cycles: u32,
}

/// Map every node selected by `mask` (pass `None` to map all) in a single
/// forward pass, accumulating resources, the slowest stage delay, and the
/// longest weighted path in pipeline stages. Replaces the former
/// resource-walk + [`pipeline_latency`] pair, which traversed the graph
/// twice per cone shape — calibration-heavy DSE sweeps map thousands of
/// shapes, so the second walk was pure overhead.
pub fn map_graph(
    graph: &Graph,
    mask: Option<&[bool]>,
    fmt: FixedFormat,
    dev: &Device,
    allow_dsp: bool,
) -> MappedGraph {
    let mut out = MappedGraph::default();
    // Longest path is computed over *all* nodes (exactly like
    // `Graph::longest_path`, so the latency stays byte-identical to
    // `pipeline_latency`); resources only over the masked set.
    let mut cp = vec![0.0f64; graph.len()];
    let mut best = 0.0f64;
    for (id, node) in graph.nodes() {
        let inputs_max = node
            .operands()
            .iter()
            .map(|o| cp[o.index()])
            .fold(0.0, f64::max);
        cp[id.index()] = inputs_max + latency_weight(node, fmt);
        best = best.max(cp[id.index()]);
        if mask.is_some_and(|m| !m[id.index()]) {
            continue;
        }
        let c = map_node(graph, id, fmt, dev, allow_dsp);
        out.luts += c.luts;
        out.ffs += c.ffs;
        out.dsps += c.dsps;
        out.max_stage_delay_ns = out.max_stage_delay_ns.max(c.stage_delay_ns);
    }
    out.latency_cycles = (best as u32).max(1);
    out
}

/// Map one operation node of `graph`. Leaves cost nothing (their registers
/// are accounted as input-window buffers by the synthesiser). `allow_dsp`
/// selects DSP blocks for general multiplies; pass `false` when the DSP
/// budget is exhausted to fall back to LUT multipliers.
pub fn map_node(
    graph: &Graph,
    id: NodeId,
    fmt: FixedFormat,
    dev: &Device,
    allow_dsp: bool,
) -> ResourceCost {
    let w = fmt.width;
    let wu = w as u64;
    let node = graph.node(id);
    let const_of = |nid: NodeId| -> Option<f64> {
        match graph.node(nid) {
            Node::Leaf(Leaf::Const(c)) => Some(c.value()),
            _ => None,
        }
    };
    match node {
        Node::Leaf(_) => ResourceCost::default(),
        Node::Unary { op, .. } => match op {
            UnaryOp::Neg => adder_cost(dev, w),
            UnaryOp::Abs => ResourceCost {
                luts: wu + wu / 2,
                ffs: wu,
                dsps: 0,
                stage_delay_ns: adder_delay(dev, w) + dev.lut_delay_ns,
                stages: 1,
            },
            UnaryOp::Sqrt => ResourceCost {
                // Non-restoring square root: one subtract/compare row per
                // result bit, fully pipelined.
                luts: (wu * wu) * 4 / 5,
                ffs: wu * wu / 2,
                dsps: 0,
                stage_delay_ns: adder_delay(dev, w),
                stages: w.div_ceil(2).max(1),
            },
        },
        Node::Binary { op, lhs, rhs } => {
            let (lc, rc) = (const_of(*lhs), const_of(*rhs));
            match op {
                BinaryOp::Add | BinaryOp::Sub => adder_cost(dev, w),
                BinaryOp::Mul => {
                    // One side constant: CSD shift-add network.
                    if let Some(c) = lc.or(rc) {
                        let adders = const_mul_adders(c, fmt) as u64;
                        if adders == 0 {
                            return ResourceCost {
                                luts: 0,
                                ffs: wu,
                                dsps: 0,
                                stage_delay_ns: dev.routing_delay_ns,
                                stages: 1,
                            };
                        }
                        let levels = (64 - (adders + 1).leading_zeros()).max(1);
                        return ResourceCost {
                            luts: adders * wu,
                            ffs: wu,
                            dsps: 0,
                            stage_delay_ns: adder_delay(dev, w) * levels as f64,
                            stages: 1,
                        };
                    }
                    if allow_dsp {
                        dsp_mul_cost(dev, w)
                    } else {
                        lut_mul_cost(dev, w)
                    }
                }
                BinaryOp::Div => {
                    if let Some(c) = rc {
                        // Division by a constant = multiplication by the
                        // quantised reciprocal (exact shift for powers of 2).
                        if c != 0.0 && const_is_shift(1.0 / c, fmt) {
                            return ResourceCost {
                                luts: 0,
                                ffs: wu,
                                dsps: 0,
                                stage_delay_ns: dev.routing_delay_ns,
                                stages: 1,
                            };
                        }
                        let adders = if c != 0.0 {
                            const_mul_adders(1.0 / c, fmt) as u64
                        } else {
                            0
                        };
                        let levels = (64 - (adders + 1).leading_zeros()).max(1);
                        return ResourceCost {
                            luts: adders * wu,
                            ffs: wu,
                            dsps: 0,
                            stage_delay_ns: adder_delay(dev, w) * levels as f64,
                            stages: 1,
                        };
                    }
                    // Pipelined non-restoring divider array.
                    ResourceCost {
                        luts: wu * wu * 3 / 2,
                        ffs: wu * wu,
                        dsps: 0,
                        stage_delay_ns: adder_delay(dev, w),
                        stages: w,
                    }
                }
                BinaryOp::Min | BinaryOp::Max => ResourceCost {
                    luts: wu,
                    ffs: wu,
                    dsps: 0,
                    stage_delay_ns: adder_delay(dev, w) + dev.lut_delay_ns,
                    stages: 1,
                },
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => ResourceCost {
                    luts: wu / 2 + 1,
                    ffs: 1,
                    dsps: 0,
                    stage_delay_ns: adder_delay(dev, w),
                    stages: 1,
                },
            }
        }
        Node::Select { .. } => ResourceCost {
            luts: wu / 2,
            ffs: wu,
            dsps: 0,
            stage_delay_ns: dev.lut_delay_ns + dev.routing_delay_ns,
            stages: 1,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{FieldId, Point};

    fn setup() -> (Graph, NodeId, NodeId, Device, FixedFormat) {
        let mut g = Graph::new();
        let a = g.input(FieldId::new(0), Point::d1(0));
        let b = g.input(FieldId::new(0), Point::d1(1));
        (g, a, b, Device::virtex6_xc6vlx760(), FixedFormat::default())
    }

    #[test]
    fn csd_values() {
        assert_eq!(csd_nonzero_digits(0), 0);
        assert_eq!(csd_nonzero_digits(1), 1);
        assert_eq!(csd_nonzero_digits(2), 1);
        assert_eq!(csd_nonzero_digits(3), 2); // 4 - 1
        assert_eq!(csd_nonzero_digits(15), 2); // 16 - 1
        assert_eq!(csd_nonzero_digits(255), 2); // 256 - 1
        assert_eq!(csd_nonzero_digits(0b101010), 3);
    }

    #[test]
    fn power_of_two_multiplies_are_free() {
        let fmt = FixedFormat::default();
        assert!(const_is_shift(2.0, fmt));
        assert!(const_is_shift(0.25, fmt));
        assert!(const_is_shift(1.0, fmt));
        assert!(!const_is_shift(3.0, fmt));
        assert_eq!(const_mul_adders(3.0, fmt), 1);
        assert_eq!(const_mul_adders(0.0625, fmt), 0); // 1/16
    }

    #[test]
    fn adds_ride_the_carry_chain() {
        let (mut g, a, b, dev, fmt) = setup();
        let s = g.binary(BinaryOp::Add, a, b);
        let c = map_node(&g, s, fmt, &dev, true);
        assert_eq!(c.luts, fmt.width as u64);
        assert_eq!(c.ffs, fmt.width as u64);
        assert_eq!(c.stages, 1);
        assert!(c.stage_delay_ns > 0.0);
    }

    #[test]
    fn const_mul_cheaper_than_general_mul() {
        let (mut g, a, b, dev, fmt) = setup();
        let k = g.constant(3.0);
        let cm = g.binary(BinaryOp::Mul, a, k);
        let gm = g.binary(BinaryOp::Mul, a, b);
        let c_const = map_node(&g, cm, fmt, &dev, false);
        let c_gen = map_node(&g, gm, fmt, &dev, false);
        assert!(c_const.luts < c_gen.luts);
    }

    #[test]
    fn general_mul_uses_dsp_when_allowed() {
        let (mut g, a, b, dev, fmt) = setup();
        let m = g.binary(BinaryOp::Mul, a, b);
        let with = map_node(&g, m, fmt, &dev, true);
        let without = map_node(&g, m, fmt, &dev, false);
        assert_eq!(with.dsps, 1);
        assert_eq!(with.luts, 0);
        assert_eq!(without.dsps, 0);
        assert!(without.luts > 0);
    }

    #[test]
    fn divider_is_expensive_and_deep() {
        let (mut g, a, b, dev, fmt) = setup();
        let d = g.binary(BinaryOp::Div, a, b);
        let s = g.binary(BinaryOp::Add, a, b);
        let cd = map_node(&g, d, fmt, &dev, true);
        let cs = map_node(&g, s, fmt, &dev, true);
        assert!(cd.luts > 10 * cs.luts);
        assert_eq!(cd.stages, fmt.width);
    }

    #[test]
    fn div_by_power_of_two_is_free() {
        let (mut g, a, _, dev, fmt) = setup();
        let k = g.constant(16.0);
        let d = g.binary(BinaryOp::Div, a, k);
        let c = map_node(&g, d, fmt, &dev, true);
        assert_eq!(c.luts, 0);
        assert_eq!(c.dsps, 0);
    }

    #[test]
    fn sqrt_is_an_iterative_array() {
        let (mut g, a, _, dev, fmt) = setup();
        let s = g.unary(UnaryOp::Sqrt, a);
        let c = map_node(&g, s, fmt, &dev, true);
        assert!(c.luts > fmt.width as u64 * 10);
        assert!(c.stages > 1);
    }

    #[test]
    fn wide_multiplies_tile_across_dsps() {
        let (mut g, a, b, dev, _) = setup();
        let m = g.binary(BinaryOp::Mul, a, b);
        let narrow = map_node(&g, m, FixedFormat::new(16, 8), &dev, true);
        let at_grain = map_node(&g, m, FixedFormat::new(18, 10), &dev, true);
        let wide = map_node(&g, m, FixedFormat::new(32, 16), &dev, true);
        let huge = map_node(&g, m, FixedFormat::new(54, 20), &dev, true);
        assert_eq!(narrow.dsps, 1);
        assert_eq!(at_grain.dsps, 1);
        assert_eq!(wide.dsps, 4);
        assert_eq!(huge.dsps, 9);
        // Tiled multiplies pay recombination adders and extra delay.
        assert_eq!(at_grain.luts, 0);
        assert!(wide.luts > 0);
        assert!(wide.stage_delay_ns > at_grain.stage_delay_ns);
        assert!(huge.stages > wide.stages);
    }

    #[test]
    fn mapped_area_is_monotone_in_width() {
        // The axis the format search optimises: for one graph on one
        // device, a strictly narrower word maps to strictly fewer LUTs
        // (fabric path) and never more DSPs.
        let (mut g, a, b, dev, _) = setup();
        let s = g.binary(BinaryOp::Add, a, b);
        let m = g.binary(BinaryOp::Mul, s, b);
        let _ = g.binary(BinaryOp::Div, m, a);
        let mapped = |w: u32| map_graph(&g, None, FixedFormat::new(w, w / 2), &dev, false);
        let mut prev = mapped(8);
        for w in [10u32, 14, 18, 24, 32, 48, 63] {
            let cur = mapped(w);
            assert!(cur.luts > prev.luts, "width {w}: {} !> {}", cur.luts, prev.luts);
            assert!(cur.ffs > prev.ffs, "width {w}");
            prev = cur;
        }
    }

    #[test]
    fn leaves_cost_nothing() {
        let (g, a, _, dev, fmt) = setup();
        assert_eq!(map_node(&g, a, fmt, &dev, true), ResourceCost::default());
    }

    #[test]
    fn comparisons_produce_single_bit() {
        let (mut g, a, b, dev, fmt) = setup();
        let lt = g.binary(BinaryOp::Lt, a, b);
        let c = map_node(&g, lt, fmt, &dev, true);
        assert_eq!(c.ffs, 1);
        assert!(c.luts <= fmt.width as u64);
    }
}
