//! The synthesis simulator: cone → placed-and-routed resource report.
//!
//! This is the stand-in for the Xilinx synthesis runs the paper uses as
//! ground truth (see `DESIGN.md`, "Substitutions"). It is deterministic,
//! fast, and reproduces the three phenomena that make the paper's area
//! estimation model necessary:
//!
//! 1. **logic reuse across cone instances** — adjacent cones overlap on
//!    their input windows; the shared logic is computed *structurally* by
//!    fusing two adjacent output windows into one hash-consed graph and
//!    measuring what interning deduplicates;
//! 2. **placement overhead** growing with device utilisation;
//! 3. **seeded place-and-route variability** (±3 %), so that a model fitted
//!    on two syntheses shows honest single-digit-percent errors on the rest.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use isl_ir::{Cone, ConeCache, ConeError, StencilPattern, Window};

use crate::cache::{SynthCache, SynthKey};
use crate::device::Device;
use crate::numeric::FixedFormat;
use crate::techmap::ResourceCost;

/// Options controlling a synthesis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthOptions {
    /// Fixed-point data format.
    pub format: FixedFormat,
    /// Model logic sharing between adjacent cone instances (ablation hook;
    /// the real tool always does this).
    pub inter_cone_sharing: bool,
    /// Apply deterministic place-and-route variability.
    pub jitter: bool,
    /// Algebraic simplification during cone construction.
    pub simplify: bool,
    /// Map general multiplies onto DSP blocks. Off by default: fabric-only
    /// multiplier mapping keeps area growth linear in the design size (the
    /// portability-first choice of the era's flows — the Virtex-II Pro
    /// baseline has no DSP48 at all); the DSP-aware mode spills smoothly to
    /// LUTs once the block budget is exhausted.
    pub use_dsp: bool,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            format: FixedFormat::default(),
            inter_cone_sharing: true,
            jitter: true,
            simplify: true,
            use_dsp: false,
        }
    }
}

/// Errors from the synthesis simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Cone construction failed.
    Cone(String),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Cone(m) => write!(f, "cone construction failed: {m}"),
        }
    }
}

impl Error for SynthError {}

impl From<ConeError> for SynthError {
    fn from(e: ConeError) -> Self {
        SynthError::Cone(e.to_string())
    }
}

/// Result of synthesising `cones` instances of one cone shape onto a device.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Design identity, e.g. `blur_w4x4_d2 x3`.
    pub design: String,
    /// Output window of the cone shape.
    pub window: Window,
    /// Cone depth.
    pub depth: u32,
    /// Number of cone instances synthesised together.
    pub cones: u32,
    /// Logic LUTs after sharing, placement overhead and jitter.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Slices (device packing of LUTs/FFs).
    pub slices: u64,
    /// Operation registers of a *single* cone — the paper's `Reg_i`,
    /// known before synthesis from the VHDL generation step.
    pub registers: u64,
    /// Bits of on-chip buffering for the cone input windows.
    pub input_buffer_bits: u64,
    /// Critical path of the slowest pipeline stage, ns.
    pub critical_path_ns: f64,
    /// Achievable clock, MHz.
    pub fmax_mhz: f64,
    /// Pipeline latency of one cone pass, cycles.
    pub latency_cycles: u32,
    /// Device utilisation (LUTs), 1.0 = full.
    pub utilization: f64,
    /// What this synthesis would have cost in real CPU time (the quantity
    /// that makes exhaustive synthesis-based DSE take "days", Section 3.3).
    pub modeled_cpu_seconds: f64,
}

/// The synthesis simulator for a target [`Device`].
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Synthesizer<'d> {
    device: &'d Device,
    options: SynthOptions,
    cones: Option<ConeCache>,
    reports: Option<SynthCache>,
}

impl<'d> Synthesizer<'d> {
    /// Synthesiser with default options.
    pub fn new(device: &'d Device) -> Self {
        Synthesizer {
            device,
            options: SynthOptions::default(),
            cones: None,
            reports: None,
        }
    }

    /// Synthesiser with explicit options.
    pub fn with_options(device: &'d Device, options: SynthOptions) -> Self {
        Synthesizer {
            device,
            options,
            cones: None,
            reports: None,
        }
    }

    /// Attach shared artifact caches: built cones (including the fused-pair
    /// cones of the inter-cone sharing probe, which are otherwise rebuilt
    /// for every core count of one shape) and finished synthesis reports.
    /// Both caches key on the full content identity — pattern fingerprint,
    /// device, options, shape — so one pair of caches is safely shared
    /// across patterns, devices and threads.
    pub fn with_caches(mut self, cones: ConeCache, reports: SynthCache) -> Self {
        self.cones = Some(cones);
        self.reports = Some(reports);
        self
    }

    /// Build (or fetch from the attached cone cache) the cone of one shape
    /// under this synthesiser's `simplify` option.
    fn cone(&self, pattern: &StencilPattern, window: Window, depth: u32) -> Result<Arc<Cone>, SynthError> {
        match &self.cones {
            Some(cache) => Ok(cache.get_or_build(pattern, window, depth, self.options.simplify)?),
            None => Ok(Arc::new(Cone::build_with(
                pattern,
                window,
                depth,
                self.options.simplify,
            )?)),
        }
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        self.device
    }

    /// The active options.
    pub fn options(&self) -> &SynthOptions {
        &self.options
    }

    /// Synthesise `cones` instances of the cone with the given output window
    /// and depth.
    ///
    /// # Errors
    ///
    /// [`SynthError::Cone`] when cone construction fails (zero depth,
    /// invalid pattern).
    pub fn synthesize(
        &self,
        pattern: &StencilPattern,
        window: Window,
        depth: u32,
        cones: u32,
    ) -> Result<SynthesisReport, SynthError> {
        // Serve straight from the report cache when possible — then the
        // cone is not even built.
        if let Some(reports) = &self.reports {
            let key = SynthKey::new(self.device, &self.options, pattern, window, depth, cones);
            return reports
                .get_or_synthesize(key, || {
                    let cone = self.cone(pattern, window, depth)?;
                    self.run_synthesis(pattern, &cone, cones)
                })
                .map(|r| (*r).clone());
        }
        let cone = self.cone(pattern, window, depth)?;
        self.run_synthesis(pattern, &cone, cones)
    }

    /// [`Synthesizer::synthesize`] over an **already-built** cone, so callers
    /// that need the cone for other purposes too (the DSE facts pass) do not
    /// pay construction twice. The cone must have been built with this
    /// synthesiser's `simplify` option for the report to match
    /// [`Synthesizer::synthesize`]. `pattern` is only consulted when
    /// `cones > 1` with inter-cone sharing enabled (the fused-pair probe).
    ///
    /// # Errors
    ///
    /// [`SynthError::Cone`] when fused-pair cone construction fails.
    pub fn synthesize_cone(
        &self,
        pattern: &StencilPattern,
        cone: &Cone,
        cones: u32,
    ) -> Result<SynthesisReport, SynthError> {
        if let Some(reports) = &self.reports {
            let key = SynthKey::new(
                self.device,
                &self.options,
                pattern,
                cone.window(),
                cone.depth(),
                cones,
            );
            return reports
                .get_or_synthesize(key, || self.run_synthesis(pattern, cone, cones))
                .map(|r| (*r).clone());
        }
        self.run_synthesis(pattern, cone, cones)
    }

    /// The actual synthesis model — always recomputes; both cache paths and
    /// the cache-free paths funnel here, so a cached report is by
    /// construction the value a cold run would produce.
    fn run_synthesis(
        &self,
        pattern: &StencilPattern,
        cone: &Cone,
        cones: u32,
    ) -> Result<SynthesisReport, SynthError> {
        let window = cone.window();
        let depth = cone.depth();
        let single = self.map_cone(cone);

        // Structural inter-cone sharing: fuse two x-adjacent windows and
        // measure what hash-consing deduplicates.
        let (total_luts, total_ffs, total_dsps) = if cones > 1 && self.options.inter_cone_sharing {
            let fused_window = if window.h > 1 {
                Window::rect(window.w * 2, window.h)
            } else {
                Window::line(window.w * 2)
            };
            let fused = self.cone(pattern, fused_window, depth)?;
            let pair = self.map_cone(&fused);
            let shared_luts = (2 * single.cost.luts).saturating_sub(pair.cost.luts);
            let shared_ffs = (2 * single.cost.ffs).saturating_sub(pair.cost.ffs);
            let shared_dsps = (2 * single.cost.dsps).saturating_sub(pair.cost.dsps);
            let n = cones as u64;
            (
                n * single.cost.luts - (n - 1) * shared_luts,
                n * single.cost.ffs - (n - 1) * shared_ffs,
                n * single.cost.dsps - (n - 1) * shared_dsps,
            )
        } else {
            let n = cones as u64;
            (
                n * single.cost.luts,
                n * single.cost.ffs,
                n * single.cost.dsps,
            )
        };

        // DSP budget: multiplier blocks beyond the device's DSP capacity
        // spill to LUT arrays (the tool maps what fits to DSPs and the rest
        // to fabric, so area grows smoothly past the limit). One spilled
        // block re-implements its own operand tile — at most the device's
        // DSP granularity wide, narrower when the data width is.
        let (total_luts, total_dsps) = if total_dsps > self.device.dsps {
            let tile = self.options.format.width.min(self.device.dsp_input_bits) as u64;
            let lut_per_block = (tile * tile) / 2;
            let excess = total_dsps - self.device.dsps;
            (total_luts + excess * lut_per_block, self.device.dsps)
        } else {
            (total_luts, total_dsps)
        };

        // Placement overhead grows (mildly) with utilisation.
        let utilization = total_luts as f64 / self.device.luts as f64;
        let overhead = 1.0 + 0.02 * utilization.min(1.5).powi(2);
        let mut luts = (total_luts as f64 * overhead) as u64;
        let mut ffs = total_ffs;

        // Deterministic place-and-route variability.
        let seed = design_seed(
            &self.device.name,
            pattern.name(),
            window,
            depth,
            cones,
            self.options.format,
        );
        let mut fmax_factor = 1.0;
        if self.options.jitter {
            let a = hash01(seed);
            let f = hash01(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
            let area_factor = 0.99 + 0.02 * a;
            fmax_factor = 0.98 + 0.04 * f;
            luts = (luts as f64 * area_factor) as u64;
            ffs = (ffs as f64 * area_factor) as u64;
        }

        // Timing: per-stage critical path + congestion derating.
        let congestion = 1.0 + 0.25 * utilization.min(1.0);
        let cp = (single.max_stage_delay + self.device.ff_overhead_ns) * congestion;
        let fmax = (1000.0 / cp * fmax_factor).min(self.device.fmax_cap_mhz);

        // Modeled CPU time of a real synthesis of this design (calibrated so
        // a large cone costs tens of minutes to hours, like XST+PAR on a
        // 100k+ LUT design).
        let node_count = (cone.graph().len() as u64) * cones as u64;
        let modeled_cpu_seconds = 0.01 * (node_count as f64).powf(1.3);

        let input_buffer_bits = (cone.inputs().len() + cone.static_inputs().len()) as u64
            * self.options.format.width as u64
            * cones as u64;

        Ok(SynthesisReport {
            design: format!("{} x{}", cone.signature(), cones),
            window,
            depth,
            cones,
            luts,
            ffs: ffs + input_buffer_bits,
            dsps: total_dsps,
            slices: self.device.slices_for(luts, ffs + input_buffer_bits),
            registers: cone.registers() as u64,
            input_buffer_bits,
            critical_path_ns: cp,
            fmax_mhz: fmax,
            latency_cycles: single.latency_cycles,
            utilization,
            modeled_cpu_seconds,
        })
    }
}

struct MappedCone {
    cost: ResourceCost,
    max_stage_delay: f64,
    latency_cycles: u32,
}

impl Synthesizer<'_> {
    fn map_cone(&self, cone: &Cone) -> MappedCone {
        let graph = cone.graph();
        let roots: Vec<_> = cone.outputs().iter().map(|o| o.node).collect();
        let mask = graph.reachable(&roots);
        // One traversal yields resources, the slowest stage *and* the
        // pipeline latency (formerly a second full walk per shape).
        let mapped = crate::techmap::map_graph(
            graph,
            Some(&mask),
            self.options.format,
            self.device,
            self.options.use_dsp,
        );
        MappedCone {
            cost: ResourceCost {
                luts: mapped.luts,
                ffs: mapped.ffs,
                dsps: mapped.dsps,
                stage_delay_ns: mapped.max_stage_delay_ns,
                stages: 1,
            },
            max_stage_delay: mapped.max_stage_delay_ns,
            latency_cycles: mapped.latency_cycles,
        }
    }
}

fn design_seed(
    device: &str,
    algo: &str,
    window: Window,
    depth: u32,
    cones: u32,
    fmt: FixedFormat,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in device.bytes().chain(algo.bytes()) {
        eat(byte as u64);
    }
    eat(window.w as u64);
    eat(window.h as u64);
    eat(window.d as u64);
    eat(depth as u64);
    eat(cones as u64);
    eat(fmt.width as u64);
    eat(fmt.frac as u64);
    h
}

/// Map a 64-bit hash to `[0, 1)`.
fn hash01(seed: u64) -> f64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use isl_ir::{BinaryOp, Expr, FieldKind, Offset};

    fn blur() -> StencilPattern {
        let mut p = StencilPattern::new(2).with_name("blur");
        let f = p.add_field("f", FieldKind::Dynamic);
        let sum = Expr::sum([
            Expr::input(f, Offset::d2(-1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, -1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, -1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(-1, 0)), Expr::constant(2.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 0)), Expr::constant(4.0)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(1, 0)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(-1, 1)),
            Expr::binary(BinaryOp::Mul, Expr::input(f, Offset::d2(0, 1)), Expr::constant(2.0)),
            Expr::input(f, Offset::d2(1, 1)),
        ]);
        p.set_update(f, Expr::binary(BinaryOp::Div, sum, Expr::constant(16.0)))
            .unwrap();
        p
    }

    fn product_pattern() -> StencilPattern {
        // f' = f(-1) * f(+1): a general multiply per element (DSP user).
        let mut p = StencilPattern::new(1).with_name("prod");
        let f = p.add_field("f", FieldKind::Dynamic);
        p.set_update(
            f,
            Expr::binary(
                BinaryOp::Mul,
                Expr::input(f, Offset::d1(-1)),
                Expr::input(f, Offset::d1(1)),
            ),
        )
        .unwrap();
        p
    }

    #[test]
    fn deterministic_reports() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let a = s.synthesize(&p, Window::square(4), 2, 3).unwrap();
        let b = s.synthesize(&p, Window::square(4), 2, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn area_grows_with_window_and_depth() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let base = s.synthesize(&p, Window::square(2), 1, 1).unwrap();
        let wider = s.synthesize(&p, Window::square(4), 1, 1).unwrap();
        let deeper = s.synthesize(&p, Window::square(2), 3, 1).unwrap();
        assert!(wider.luts > base.luts);
        assert!(deeper.luts > base.luts);
        assert!(wider.registers > base.registers);
        assert!(deeper.registers > base.registers);
    }

    #[test]
    fn sharing_makes_area_sublinear_in_cones() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::with_options(
            &dev,
            SynthOptions { jitter: false, ..SynthOptions::default() },
        );
        let p = blur();
        let one = s.synthesize(&p, Window::square(4), 2, 1).unwrap();
        let four = s.synthesize(&p, Window::square(4), 2, 4).unwrap();
        assert!(four.luts < 4 * one.luts, "{} !< {}", four.luts, 4 * one.luts);
        assert!(four.luts > one.luts);
    }

    #[test]
    fn no_sharing_is_linear() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::with_options(
            &dev,
            SynthOptions {
                jitter: false,
                inter_cone_sharing: false,
                ..SynthOptions::default()
            },
        );
        let p = blur();
        let one = s.synthesize(&p, Window::square(3), 2, 1).unwrap();
        let three = s.synthesize(&p, Window::square(3), 2, 3).unwrap();
        // Same per-cone logic; only placement overhead may differ slightly.
        assert!(three.luts >= 3 * one.luts);
        assert!((three.luts as f64) < 3.3 * one.luts as f64);
    }

    #[test]
    fn dsp_overflow_falls_back_to_luts() {
        let dev = Device::virtex2_pro_xc2vp30(); // 136 DSPs
        let s = Synthesizer::with_options(
            &dev,
            SynthOptions {
                jitter: false,
                inter_cone_sharing: false,
                use_dsp: true,
                ..SynthOptions::default()
            },
        );
        let p = product_pattern();
        let small = s.synthesize(&p, Window::line(8), 1, 1).unwrap();
        assert!(small.dsps > 0);
        let big = s.synthesize(&p, Window::line(8), 1, 64).unwrap();
        // DSPs saturate at the device capacity; the spill lands in LUTs.
        assert_eq!(big.dsps, dev.dsps);
        assert!(big.luts > 10 * small.luts.max(1));
    }

    #[test]
    fn fmax_is_positive_and_capped() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let r = s.synthesize(&p, Window::square(4), 3, 2).unwrap();
        assert!(r.fmax_mhz > 0.0);
        assert!(r.fmax_mhz <= dev.fmax_cap_mhz);
        assert!(r.critical_path_ns > 0.0);
    }

    #[test]
    fn jitter_is_bounded() {
        let dev = Device::virtex6_xc6vlx760();
        let with = Synthesizer::new(&dev);
        let without = Synthesizer::with_options(
            &dev,
            SynthOptions { jitter: false, ..SynthOptions::default() },
        );
        let p = blur();
        for w in [1u32, 2, 3, 4, 5] {
            let a = with.synthesize(&p, Window::square(w), 2, 1).unwrap();
            let b = without.synthesize(&p, Window::square(w), 2, 1).unwrap();
            let ratio = a.luts as f64 / b.luts as f64;
            assert!((0.985..=1.015).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn latency_counts_pipeline_stages() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur(); // ends in a /16 -> free shift, adds dominate
        let r = s.synthesize(&p, Window::square(2), 1, 1).unwrap();
        assert!(r.latency_cycles >= 2); // at least an adder tree
        let deeper = s.synthesize(&p, Window::square(2), 4, 1).unwrap();
        assert!(deeper.latency_cycles > r.latency_cycles);
    }

    #[test]
    fn modeled_cpu_time_grows_superlinearly() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let small = s.synthesize(&p, Window::square(2), 1, 1).unwrap();
        let large = s.synthesize(&p, Window::square(8), 5, 1).unwrap();
        assert!(large.modeled_cpu_seconds > 10.0 * small.modeled_cpu_seconds);
    }

    #[test]
    fn registers_known_pre_synthesis() {
        let dev = Device::virtex6_xc6vlx760();
        let s = Synthesizer::new(&dev);
        let p = blur();
        let r = s.synthesize(&p, Window::square(3), 2, 5).unwrap();
        let cone = Cone::build(&p, Window::square(3), 2).unwrap();
        assert_eq!(r.registers, cone.registers() as u64);
    }
}
