//! FPGA device resource and timing models.

use std::fmt;

/// Resource capacity and first-order timing parameters of an FPGA part.
///
/// The numbers for the named constructors come from the public Xilinx data
/// sheets of the parts the paper evaluates on; timing coefficients are tuned
/// so that synthesised cone designs land in the frequency range the paper
/// reports (≈ 100 MHz on the Virtex-6).
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Part name (e.g. `xc6vlx760`).
    pub name: String,
    /// Device family (for reports).
    pub family: String,
    /// Usable logic LUTs.
    pub luts: u64,
    /// Usable flip-flops.
    pub flip_flops: u64,
    /// DSP multiplier blocks.
    pub dsps: u64,
    /// On-chip block RAM, kilobits.
    pub bram_kbits: u64,
    /// LUT combinational delay, ns.
    pub lut_delay_ns: f64,
    /// Average routing delay per logic level, ns.
    pub routing_delay_ns: f64,
    /// Carry-chain delay per bit, ns.
    pub carry_per_bit_ns: f64,
    /// DSP block combinational delay, ns.
    pub dsp_delay_ns: f64,
    /// Native operand width of one DSP multiplier block, bits (18 for the
    /// Xilinx 18×18 generation modelled here). Multiplies wider than this
    /// tile across several blocks; the techmap charges `⌈w/g⌉²` DSPs plus
    /// the recombination adders instead of assuming every multiply fits one
    /// block.
    pub dsp_input_bits: u32,
    /// Register clock-to-out plus setup, ns.
    pub ff_overhead_ns: f64,
    /// Hard frequency cap (clock tree limit), MHz.
    pub fmax_cap_mhz: f64,
    /// Off-chip memory bandwidth available to the accelerator, MB/s.
    pub offchip_bandwidth_mbs: f64,
    /// Maximum cone instances the on-chip window-buffer fabric can feed in
    /// parallel (port/interconnect limit; the paper's solutions use up to
    /// 16 cores).
    pub max_parallel_cones: u32,
}

impl Device {
    /// Xilinx Virtex-6 XC6VLX760 — the device of Figures 7 and 10.
    pub fn virtex6_xc6vlx760() -> Device {
        Device {
            name: "xc6vlx760".into(),
            family: "Virtex-6".into(),
            luts: 474_240,
            flip_flops: 948_480,
            dsps: 864,
            bram_kbits: 25_920,
            lut_delay_ns: 0.9,
            routing_delay_ns: 1.2,
            carry_per_bit_ns: 0.05,
            dsp_delay_ns: 3.4,
            dsp_input_bits: 18,
            ff_overhead_ns: 0.8,
            fmax_cap_mhz: 100.0,
            offchip_bandwidth_mbs: 6_400.0,
            max_parallel_cones: 16,
        }
    }

    /// Xilinx Virtex-II Pro XC2VP30 — the device of the literature comparison
    /// in Section 4.1 (\[16\] runs on a Virtex-II Pro).
    pub fn virtex2_pro_xc2vp30() -> Device {
        Device {
            name: "xc2vp30".into(),
            family: "Virtex-II Pro".into(),
            luts: 27_392,
            flip_flops: 27_392,
            dsps: 136,
            bram_kbits: 2_448,
            lut_delay_ns: 1.6,
            routing_delay_ns: 2.2,
            carry_per_bit_ns: 0.09,
            dsp_delay_ns: 5.5,
            dsp_input_bits: 18,
            ff_overhead_ns: 1.2,
            fmax_cap_mhz: 66.0,
            offchip_bandwidth_mbs: 1_600.0,
            max_parallel_cones: 8,
        }
    }

    /// A small multimedia-class part with "only a few kBs" of on-chip memory
    /// (Section 2.2's memory/performance-conflict discussion).
    pub fn small_multimedia() -> Device {
        Device {
            name: "mm-small".into(),
            family: "Multimedia".into(),
            luts: 14_000,
            flip_flops: 28_000,
            dsps: 40,
            bram_kbits: 540,
            lut_delay_ns: 1.2,
            routing_delay_ns: 1.6,
            carry_per_bit_ns: 0.07,
            dsp_delay_ns: 4.2,
            dsp_input_bits: 18,
            ff_overhead_ns: 1.0,
            fmax_cap_mhz: 80.0,
            offchip_bandwidth_mbs: 800.0,
            max_parallel_cones: 8,
        }
    }

    /// Slices, assuming 4 LUT / 8 FF per slice (Virtex-6 style packing).
    pub fn slices_for(&self, luts: u64, ffs: u64) -> u64 {
        (luts.div_ceil(4)).max(ffs.div_ceil(8))
    }

    /// On-chip memory in bytes.
    pub fn bram_bytes(&self) -> u64 {
        self.bram_kbits * 1024 / 8
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {} LUT / {} FF / {} DSP / {} kb BRAM",
            self.name, self.family, self.luts, self.flip_flops, self.dsps, self.bram_kbits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_have_sane_capacities() {
        let v6 = Device::virtex6_xc6vlx760();
        let v2 = Device::virtex2_pro_xc2vp30();
        let mm = Device::small_multimedia();
        assert!(v6.luts > v2.luts);
        assert!(v2.luts > 0);
        assert!(mm.bram_bytes() < 128 * 1024); // "a few kBs"
        assert!(v6.bram_bytes() > 1024 * 1024);
    }

    #[test]
    fn slice_packing() {
        let v6 = Device::virtex6_xc6vlx760();
        assert_eq!(v6.slices_for(8, 8), 2);
        assert_eq!(v6.slices_for(4, 64), 8);
        assert_eq!(v6.slices_for(0, 0), 0);
    }

    #[test]
    fn older_parts_are_slower() {
        let v6 = Device::virtex6_xc6vlx760();
        let v2 = Device::virtex2_pro_xc2vp30();
        assert!(v2.lut_delay_ns > v6.lut_delay_ns);
        assert!(v2.fmax_cap_mhz < v6.fmax_cap_mhz);
    }
}
