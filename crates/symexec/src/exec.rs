//! The symbolic executor.

use std::collections::HashMap;

use isl_frontend::{BinOp, ExprAst, Kernel, KernelInfo, LValue, Span, Stmt, UnOp};
use isl_ir::{BinaryOp, Expr, FieldId, FieldKind, Offset, StencilPattern, UnaryOp};

use crate::error::{SymExecError, SymExecErrorKind as K};
use crate::value::{IndexVal, SymValue};

/// Maximum trip count a constant loop may have before unrolling is refused.
/// Large enough for any realistic kernel-tap loop, small enough to keep the
/// "exponential growth of the number of symbols" (Section 3.2) at bay.
const MAX_UNROLL: i64 = 64;

/// Total statements the executor will run before refusing. [`MAX_UNROLL`]
/// bounds one loop, but nested constant loops multiply, so an overall step
/// budget is what actually guarantees termination in bounded time.
const MAX_STEPS: u64 = 100_000;

/// Node budget for any *stored* symbolic data expression. Repeated
/// self-referential assignment (`t = t + t` inside an unrolled loop)
/// doubles the tree per trip; this converts that exponential blowup into
/// an error. The cap also bounds expression depth, keeping the recursive
/// consumers of [`Expr`] (evaluation, compilation, drop) stack-safe.
const MAX_EXPR_NODES: usize = 4096;

/// Largest stencil-offset magnitude accepted along any axis — far beyond
/// any plausible halo, but small enough that the narrowing to [`Offset`]'s
/// `i32` components can never truncate silently.
const MAX_OFFSET: i64 = 64;

/// Symbolically execute one iteration of `kernel` and extract its
/// [`StencilPattern`].
///
/// # Errors
///
/// Returns a [`SymExecError`] when the kernel violates an ISL property
/// (translational invariance, domain narrowness, no output reads, ...) or
/// steps outside the supported C subset. The error pinpoints the source
/// location and names the violated property.
pub fn extract(kernel: &Kernel, info: &KernelInfo) -> Result<StencilPattern, SymExecError> {
    let mut pattern = StencilPattern::new(info.rank).with_name(&kernel.name);
    let field_ids: Vec<FieldId> = info
        .fields
        .iter()
        .map(|f| {
            pattern.add_field(
                &f.name,
                if f.is_dynamic() {
                    FieldKind::Dynamic
                } else {
                    FieldKind::Static
                },
            )
        })
        .collect();
    for p in &info.params {
        pattern.add_param(&p.name, p.default);
    }

    let mut exec = Executor {
        info,
        field_ids,
        env: HashMap::new(),
        bound_now: [false; 3],
        axes_ever: [false; 3],
        outputs: vec![None; info.fields.len()],
        steps: 0,
    };
    for stmt in &kernel.body {
        exec.exec(stmt)?;
    }

    for axis in 0..info.rank {
        if !exec.axes_ever[axis] {
            return Err(SymExecError::new(
                K::IncompleteLoopNest,
                format!(
                    "no spatial loop binds axis {axis} (dimension `{}`)",
                    info.dim_names[info.rank - 1 - axis]
                ),
                Span::default(),
            ));
        }
    }

    for (i, f) in info.fields.iter().enumerate() {
        if f.is_dynamic() {
            match exec.outputs[i].take() {
                Some(e) => pattern
                    .set_update(exec.field_ids[i], e)
                    .expect("field ids are valid by construction"),
                None => {
                    return Err(SymExecError::new(
                        K::MissingOutput,
                        format!("output array `{}` is never written", f.output_array().expect("dynamic")),
                        Span::default(),
                    ))
                }
            }
        }
    }

    pattern.validate().map_err(|e| {
        SymExecError::new(K::InvalidPattern, e.to_string(), Span::default())
    })?;
    Ok(pattern)
}

struct Executor<'k> {
    info: &'k KernelInfo,
    field_ids: Vec<FieldId>,
    env: HashMap<String, SymValue>,
    /// Axes bound by the spatial loops currently being executed.
    bound_now: [bool; 3],
    /// Axes bound at any point (loop-nest completeness check).
    axes_ever: [bool; 3],
    outputs: Vec<Option<Expr>>,
    /// Statements executed so far, across all unrolled loop trips.
    steps: u64,
}

/// Count nodes of `e` iteratively, stopping as soon as `cap` is exceeded —
/// the trees this guards against are exactly the ones a recursive walk
/// could not survive.
fn expr_nodes_capped(e: &Expr, cap: usize) -> usize {
    let mut stack = vec![e];
    let mut n = 0usize;
    while let Some(e) = stack.pop() {
        n += 1;
        if n > cap {
            return n;
        }
        match e {
            Expr::Input { .. } | Expr::Const(_) | Expr::Param(_) => {}
            Expr::Unary { arg, .. } => stack.push(arg),
            Expr::Binary { lhs, rhs, .. } => {
                stack.push(lhs);
                stack.push(rhs);
            }
            Expr::Select { cond, then_, else_ } => {
                stack.push(cond);
                stack.push(then_);
                stack.push(else_);
            }
        }
    }
    n
}

impl Executor<'_> {
    fn axis_of_dim(&self, name: &str) -> Option<usize> {
        self.info
            .dim_names
            .iter()
            .position(|d| d == name)
            .map(|p| self.info.rank - 1 - p)
    }

    // -- statements ---------------------------------------------------------

    fn exec(&mut self, stmt: &Stmt) -> Result<(), SymExecError> {
        self.steps += 1;
        if self.steps > MAX_STEPS {
            return Err(SymExecError::new(
                K::TripTooLarge,
                format!("kernel executes more than {MAX_STEPS} statements (nested unrolled loops?)"),
                Span::default(),
            ));
        }
        match stmt {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.exec(s)?;
                }
                Ok(())
            }
            Stmt::Decl { name, value, span } => {
                let v = self.eval(value)?;
                self.budget_value(&v, *span)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Assign { target, value } => self.exec_assign(target, value),
            Stmt::For { var, from, to, body, span } => {
                self.exec_for(var, from, to, body, *span)
            }
            Stmt::If { cond, then_, else_, span } => self.exec_if(cond, then_, else_.as_deref(), *span),
        }
    }

    fn exec_assign(&mut self, target: &LValue, value: &ExprAst) -> Result<(), SymExecError> {
        match target {
            LValue::Var(name, span) => {
                if !self.env.contains_key(name) {
                    return Err(SymExecError::new(
                        K::UnknownIdent,
                        format!("assignment to undeclared variable `{name}`"),
                        *span,
                    ));
                }
                let v = self.eval(value)?;
                self.budget_value(&v, *span)?;
                self.env.insert(name.clone(), v);
                Ok(())
            }
            LValue::Elem { array, indices, span } => {
                let Some(fi) = self.info.field_of_output(array) else {
                    if self.info.field_of_input(array).is_some() {
                        return Err(SymExecError::new(
                            K::OutputRead,
                            format!("cannot write input array `{array}`"),
                            *span,
                        ));
                    }
                    return Err(SymExecError::new(
                        K::UnknownIdent,
                        format!("unknown array `{array}` (local arrays are not supported; use scalar temporaries)"),
                        *span,
                    ));
                };
                // Every axis must be live: writes happen inside the full nest.
                for axis in 0..self.info.rank {
                    if !self.bound_now[axis] {
                        return Err(SymExecError::new(
                            K::WriteNotAtCenter,
                            format!("output write outside the spatial loop nest (axis {axis} unbound)"),
                            *span,
                        ));
                    }
                }
                let offset = self.resolve_indices(array, indices, *span)?;
                if offset != Offset::ZERO {
                    return Err(SymExecError::new(
                        K::WriteNotAtCenter,
                        format!("output `{array}` must be written at the loop point, found offset {offset}"),
                        *span,
                    ));
                }
                let v = self.eval(value)?;
                let expr = self.to_data(v, *span)?;
                self.budget_expr(&expr, *span)?;
                if self.outputs[fi].is_some() {
                    return Err(SymExecError::new(
                        K::DoubleWrite,
                        format!("output `{array}` is written more than once per iteration"),
                        *span,
                    ));
                }
                self.outputs[fi] = Some(expr);
                Ok(())
            }
        }
    }

    fn exec_for(
        &mut self,
        var: &str,
        from: &ExprAst,
        to: &ExprAst,
        body: &Stmt,
        span: Span,
    ) -> Result<(), SymExecError> {
        let from_v = self.eval(from)?;
        let to_v = self.eval(to)?;
        match (&from_v, &to_v) {
            // Constant trip count: unroll.
            (SymValue::Num(_), SymValue::Num(_)) => {
                let (a, b) = (
                    from_v.as_int().ok_or_else(|| {
                        SymExecError::new(K::BadBound, "non-integer loop bound", span)
                    })?,
                    to_v.as_int().ok_or_else(|| {
                        SymExecError::new(K::BadBound, "non-integer loop bound", span)
                    })?,
                );
                if b - a > MAX_UNROLL {
                    return Err(SymExecError::new(
                        K::TripTooLarge,
                        format!("constant loop has {} iterations; limit is {MAX_UNROLL}", b - a),
                        span,
                    ));
                }
                let saved = self.env.get(var).cloned();
                for k in a..b {
                    self.env.insert(var.to_string(), SymValue::Num(k as f64));
                    self.exec(body)?;
                }
                match saved {
                    Some(v) => self.env.insert(var.to_string(), v),
                    None => self.env.remove(var),
                };
                Ok(())
            }
            // Spatial loop: bound mentions a frame dimension.
            (_, SymValue::Dim { name, .. }) => {
                if from_v.as_int().is_none() {
                    return Err(SymExecError::new(
                        K::BadBound,
                        "spatial loop must start at a constant",
                        span,
                    ));
                }
                let axis = self.axis_of_dim(name).ok_or_else(|| {
                    SymExecError::new(K::BadBound, format!("unknown dimension `{name}`"), span)
                })?;
                if self.bound_now[axis] {
                    return Err(SymExecError::new(
                        K::AxisRebound,
                        format!("axis of dimension `{name}` is already bound by an enclosing loop"),
                        span,
                    ));
                }
                self.bound_now[axis] = true;
                self.axes_ever[axis] = true;
                let saved = self.env.get(var).cloned();
                self.env
                    .insert(var.to_string(), SymValue::Index(IndexVal::axis(axis)));
                let result = self.exec(body);
                match saved {
                    Some(v) => self.env.insert(var.to_string(), v),
                    None => self.env.remove(var),
                };
                self.bound_now[axis] = false;
                result
            }
            _ => Err(SymExecError::new(
                K::BadBound,
                "loop bound is neither constant nor a frame dimension",
                span,
            )),
        }
    }

    fn exec_if(
        &mut self,
        cond: &ExprAst,
        then_: &Stmt,
        else_: Option<&Stmt>,
        span: Span,
    ) -> Result<(), SymExecError> {
        let c = self.eval(cond)?;
        match c {
            SymValue::Num(v) => {
                if v != 0.0 {
                    self.exec(then_)
                } else if let Some(e) = else_ {
                    self.exec(e)
                } else {
                    Ok(())
                }
            }
            SymValue::Index(_) | SymValue::Dim { .. } => Err(SymExecError::new(
                K::PositionDependentBranch,
                "branch condition depends on the spatial position; ISL results must be translation-invariant",
                span,
            )),
            SymValue::Data(ce) => {
                // Fork, execute both branches, merge with selects.
                let env0 = self.env.clone();
                let out0 = self.outputs.clone();
                self.exec(then_)?;
                let env_t = std::mem::replace(&mut self.env, env0.clone());
                let out_t = std::mem::replace(&mut self.outputs, out0.clone());
                if let Some(e) = else_ {
                    self.exec(e)?;
                }
                let env_e = std::mem::replace(&mut self.env, env0.clone());
                let out_e = std::mem::replace(&mut self.outputs, out0.clone());

                // Merge locals that existed before the branch.
                for (name, pre) in &env0 {
                    let tv = env_t.get(name).unwrap_or(pre);
                    let ev = env_e.get(name).unwrap_or(pre);
                    let merged = if tv == ev {
                        tv.clone()
                    } else {
                        let t = self.to_data(tv.clone(), span)?;
                        let e = self.to_data(ev.clone(), span)?;
                        SymValue::Data(Expr::select(ce.clone(), t, e))
                    };
                    self.budget_value(&merged, span)?;
                    self.env.insert(name.clone(), merged);
                }
                // Merge outputs.
                for i in 0..out0.len() {
                    let merged = match (&out_t[i], &out_e[i]) {
                        (t, e) if t == e => t.clone(),
                        (Some(t), Some(e)) => {
                            Some(Expr::select(ce.clone(), t.clone(), e.clone()))
                        }
                        _ => {
                            return Err(SymExecError::new(
                                K::MissingOutput,
                                "an output is written on only one side of a data-dependent branch",
                                span,
                            ))
                        }
                    };
                    self.outputs[i] = merged;
                }
                Ok(())
            }
        }
    }

    // -- expressions --------------------------------------------------------

    fn eval(&self, expr: &ExprAst) -> Result<SymValue, SymExecError> {
        match expr {
            ExprAst::Num(v) => Ok(SymValue::Num(*v)),
            ExprAst::Ident(name, span) => self.eval_ident(name, *span),
            ExprAst::Index { array, indices, span } => self.eval_access(array, indices, *span),
            ExprAst::Unary { op, arg } => self.eval_unary(*op, arg),
            ExprAst::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            ExprAst::Call { func, args, span } => self.eval_call(func, args, *span),
            ExprAst::Ternary { cond, then_, else_ } => {
                let c = self.eval(cond)?;
                let span = cond.span();
                match c {
                    SymValue::Num(v) => {
                        if v != 0.0 {
                            self.eval(then_)
                        } else {
                            self.eval(else_)
                        }
                    }
                    SymValue::Index(_) | SymValue::Dim { .. } => Err(SymExecError::new(
                        K::PositionDependentBranch,
                        "ternary condition depends on the spatial position",
                        span,
                    )),
                    SymValue::Data(ce) => {
                        let t = self.eval(then_)?;
                        let e = self.eval(else_)?;
                        let t = self.to_data(t, span)?;
                        let e = self.to_data(e, span)?;
                        Ok(SymValue::Data(Expr::select(ce, t, e)))
                    }
                }
            }
        }
    }

    fn eval_ident(&self, name: &str, span: Span) -> Result<SymValue, SymExecError> {
        if let Some(v) = self.env.get(name) {
            return Ok(v.clone());
        }
        if self.info.dim_names.iter().any(|d| d == name) {
            return Ok(SymValue::Dim { name: name.to_string(), offset: 0 });
        }
        if let Some(pi) = self.info.param_index(name) {
            return Ok(SymValue::Data(Expr::param(isl_ir::ParamId::new(pi as u16))));
        }
        if self.info.field_of_input(name).is_some() || self.info.field_of_output(name).is_some() {
            return Err(SymExecError::new(
                K::UnsupportedOp,
                format!("array `{name}` used without indices"),
                span,
            ));
        }
        Err(SymExecError::new(
            K::UnknownIdent,
            format!("unknown identifier `{name}`"),
            span,
        ))
    }

    fn eval_access(
        &self,
        array: &str,
        indices: &[ExprAst],
        span: Span,
    ) -> Result<SymValue, SymExecError> {
        if let Some(fi) = self.info.field_of_input(array) {
            let offset = self.resolve_indices(array, indices, span)?;
            return Ok(SymValue::Data(Expr::input(self.field_ids[fi], offset)));
        }
        if self.info.field_of_output(array).is_some() {
            return Err(SymExecError::new(
                K::OutputRead,
                format!(
                    "kernel reads output array `{array}`; an ISL iteration may only read the previous frame"
                ),
                span,
            ));
        }
        Err(SymExecError::new(
            K::UnknownIdent,
            format!("unknown array `{array}`"),
            span,
        ))
    }

    /// Resolve index expressions to a relative [`Offset`], enforcing
    /// translational invariance.
    fn resolve_indices(
        &self,
        array: &str,
        indices: &[ExprAst],
        span: Span,
    ) -> Result<Offset, SymExecError> {
        if indices.len() != self.info.rank {
            return Err(SymExecError::new(
                K::NonAffineIndex,
                format!(
                    "array `{array}` indexed with {} subscripts but has rank {}",
                    indices.len(),
                    self.info.rank
                ),
                span,
            ));
        }
        let mut per_axis = [0i64; 3];
        for (p, idx) in indices.iter().enumerate() {
            let expected_axis = self.info.rank - 1 - p;
            let v = self.eval(idx)?;
            let iv = match v {
                SymValue::Index(iv) => iv,
                SymValue::Num(_) => {
                    return Err(SymExecError::new(
                        K::AbsoluteIndex,
                        format!(
                            "subscript {p} of `{array}` is a constant; absolute accesses break translational invariance"
                        ),
                        span,
                    ))
                }
                SymValue::Data(_) => {
                    return Err(SymExecError::new(
                        K::DataDependentIndex,
                        format!("subscript {p} of `{array}` depends on data values"),
                        span,
                    ))
                }
                SymValue::Dim { .. } => {
                    return Err(SymExecError::new(
                        K::NonAffineIndex,
                        format!("subscript {p} of `{array}` uses a frame dimension"),
                        span,
                    ))
                }
            };
            let Some((axis, off)) = iv.as_unit_axis() else {
                return Err(SymExecError::new(
                    K::NonAffineIndex,
                    format!(
                        "subscript {p} of `{array}` is not `loop_var + constant` (translational invariance)"
                    ),
                    span,
                ));
            };
            if axis != expected_axis {
                return Err(SymExecError::new(
                    K::NonAffineIndex,
                    format!(
                        "subscript {p} of `{array}` uses the wrong loop variable (transposed access is not a translation)"
                    ),
                    span,
                ));
            }
            if off.unsigned_abs() > MAX_OFFSET as u64 {
                return Err(SymExecError::new(
                    K::OffsetTooLarge,
                    format!(
                        "subscript {p} of `{array}` reaches {off} elements from the loop point; limit is ±{MAX_OFFSET}"
                    ),
                    span,
                ));
            }
            per_axis[axis] = off;
        }
        // The bound above makes this narrowing lossless by construction.
        let to_i32 = |v: i64| v as i32;
        Ok(Offset::d3(
            to_i32(per_axis[0]),
            to_i32(per_axis[1]),
            to_i32(per_axis[2]),
        ))
    }

    fn eval_unary(&self, op: UnOp, arg: &ExprAst) -> Result<SymValue, SymExecError> {
        let span = arg.span();
        let v = self.eval(arg)?;
        match (op, v) {
            (UnOp::Neg, SymValue::Num(v)) => Ok(SymValue::Num(-v)),
            (UnOp::Neg, SymValue::Index(iv)) => Ok(SymValue::Index(iv.scale(-1))),
            (UnOp::Neg, SymValue::Data(e)) => {
                Ok(SymValue::Data(Expr::unary(UnaryOp::Neg, e)))
            }
            (UnOp::Neg, SymValue::Dim { .. }) => Err(SymExecError::new(
                K::UnsupportedOp,
                "cannot negate a frame dimension",
                span,
            )),
            (UnOp::Not, SymValue::Num(v)) => Ok(SymValue::Num(f64::from(v == 0.0))),
            (UnOp::Not, SymValue::Data(e)) => Ok(SymValue::Data(Expr::binary(
                BinaryOp::Sub,
                Expr::constant(1.0),
                e,
            ))),
            (UnOp::Not, _) => Err(SymExecError::new(
                K::IndexAsData,
                "`!` applied to a spatial index",
                span,
            )),
        }
    }

    fn eval_binary(
        &self,
        op: BinOp,
        lhs: &ExprAst,
        rhs: &ExprAst,
    ) -> Result<SymValue, SymExecError> {
        let span = lhs.span();
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;

        // Index/bound arithmetic first.
        match (&l, &r) {
            (SymValue::Index(a), SymValue::Index(b)) => {
                return match op {
                    BinOp::Add => Ok(SymValue::Index(a.add(*b))),
                    BinOp::Sub => Ok(SymValue::Index(a.sub(*b))),
                    _ if is_comparison(op) => Err(position_dependent_cmp(span)),
                    _ => Err(SymExecError::new(
                        K::NonAffineIndex,
                        format!("operation `{}` between spatial indices", op.symbol()),
                        span,
                    )),
                };
            }
            (SymValue::Index(a), SymValue::Num(_)) => {
                if let Some(k) = r.as_int() {
                    return match op {
                        BinOp::Add => Ok(SymValue::Index(a.add(IndexVal::constant(k)))),
                        BinOp::Sub => Ok(SymValue::Index(a.sub(IndexVal::constant(k)))),
                        BinOp::Mul => Ok(SymValue::Index(a.scale(k))),
                        _ if is_comparison(op) => Err(position_dependent_cmp(span)),
                        _ => Err(SymExecError::new(
                            K::NonAffineIndex,
                            format!("operation `{}` on a spatial index", op.symbol()),
                            span,
                        )),
                    };
                }
                return Err(SymExecError::new(
                    K::NonAffineIndex,
                    "non-integer arithmetic on a spatial index",
                    span,
                ));
            }
            (SymValue::Num(_), SymValue::Index(b)) => {
                if let Some(k) = l.as_int() {
                    return match op {
                        BinOp::Add => Ok(SymValue::Index(b.add(IndexVal::constant(k)))),
                        BinOp::Sub => {
                            Ok(SymValue::Index(b.scale(-1).add(IndexVal::constant(k))))
                        }
                        BinOp::Mul => Ok(SymValue::Index(b.scale(k))),
                        _ if is_comparison(op) => Err(position_dependent_cmp(span)),
                        _ => Err(SymExecError::new(
                            K::NonAffineIndex,
                            format!("operation `{}` on a spatial index", op.symbol()),
                            span,
                        )),
                    };
                }
                return Err(SymExecError::new(
                    K::NonAffineIndex,
                    "non-integer arithmetic on a spatial index",
                    span,
                ));
            }
            (SymValue::Dim { name, offset }, SymValue::Num(_)) => {
                if let Some(k) = r.as_int() {
                    return match op {
                        BinOp::Add => Ok(SymValue::Dim { name: name.clone(), offset: offset + k }),
                        BinOp::Sub => Ok(SymValue::Dim { name: name.clone(), offset: offset - k }),
                        _ => Err(SymExecError::new(
                            K::BadBound,
                            format!("operation `{}` on a frame dimension", op.symbol()),
                            span,
                        )),
                    };
                }
                return Err(SymExecError::new(K::BadBound, "non-integer dimension arithmetic", span));
            }
            (SymValue::Dim { .. }, _) | (_, SymValue::Dim { .. }) => {
                return Err(SymExecError::new(
                    K::BadBound,
                    "frame dimensions may only be adjusted by constants",
                    span,
                ));
            }
            (SymValue::Index(_), SymValue::Data(_)) | (SymValue::Data(_), SymValue::Index(_)) => {
                return Err(SymExecError::new(
                    K::DataDependentIndex,
                    "mixing spatial indices and data values in one expression",
                    span,
                ));
            }
            _ => {}
        }

        // Pure numeric folding (needed inside unrolled loops).
        if let (SymValue::Num(a), SymValue::Num(b)) = (&l, &r) {
            let (a, b) = (*a, *b);
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::Lt => f64::from(a < b),
                BinOp::Le => f64::from(a <= b),
                BinOp::Gt => f64::from(a > b),
                BinOp::Ge => f64::from(a >= b),
                BinOp::Eq => f64::from(a == b),
                BinOp::Ne => f64::from(a != b),
                BinOp::And => f64::from(a != 0.0 && b != 0.0),
                BinOp::Or => f64::from(a != 0.0 || b != 0.0),
            };
            return Ok(SymValue::Num(v));
        }

        // Data path.
        let le = self.to_data(l, span)?;
        let re = self.to_data(r, span)?;
        let data = match op {
            BinOp::Add => Expr::binary(BinaryOp::Add, le, re),
            BinOp::Sub => Expr::binary(BinaryOp::Sub, le, re),
            BinOp::Mul => Expr::binary(BinaryOp::Mul, le, re),
            BinOp::Div => Expr::binary(BinaryOp::Div, le, re),
            BinOp::Rem => {
                return Err(SymExecError::new(
                    K::UnsupportedOp,
                    "`%` on data values has no hardware mapping in this flow",
                    span,
                ))
            }
            BinOp::Lt => Expr::binary(BinaryOp::Lt, le, re),
            BinOp::Le => Expr::binary(BinaryOp::Le, le, re),
            BinOp::Gt => Expr::binary(BinaryOp::Gt, le, re),
            BinOp::Ge => Expr::binary(BinaryOp::Ge, le, re),
            // eq(a,b) = (a <= b) * (a >= b); ne = 1 - eq.
            BinOp::Eq => Expr::binary(
                BinaryOp::Mul,
                Expr::binary(BinaryOp::Le, le.clone(), re.clone()),
                Expr::binary(BinaryOp::Ge, le, re),
            ),
            BinOp::Ne => Expr::binary(
                BinaryOp::Sub,
                Expr::constant(1.0),
                Expr::binary(
                    BinaryOp::Mul,
                    Expr::binary(BinaryOp::Le, le.clone(), re.clone()),
                    Expr::binary(BinaryOp::Ge, le, re),
                ),
            ),
            // Boolean algebra over {0,1}-valued operands.
            BinOp::And => Expr::binary(BinaryOp::Mul, le, re),
            BinOp::Or => Expr::binary(BinaryOp::Max, le, re),
        };
        Ok(SymValue::Data(data))
    }

    fn eval_call(
        &self,
        func: &str,
        args: &[ExprAst],
        span: Span,
    ) -> Result<SymValue, SymExecError> {
        let data_args = |exec: &Self, n: usize| -> Result<Vec<Expr>, SymExecError> {
            if args.len() != n {
                return Err(SymExecError::new(
                    K::UnsupportedCall,
                    format!("`{func}` expects {n} argument(s), got {}", args.len()),
                    span,
                ));
            }
            args.iter()
                .map(|a| exec.eval(a).and_then(|v| exec.to_data(v, span)))
                .collect()
        };
        match func {
            "sqrtf" | "sqrt" => {
                let a = data_args(self, 1)?;
                Ok(SymValue::Data(Expr::unary(UnaryOp::Sqrt, a.into_iter().next().expect("one arg"))))
            }
            "fabsf" | "fabs" | "abs" => {
                let a = data_args(self, 1)?;
                Ok(SymValue::Data(Expr::unary(UnaryOp::Abs, a.into_iter().next().expect("one arg"))))
            }
            "fminf" | "fmin" => {
                let mut a = data_args(self, 2)?;
                let r = a.pop().expect("two args");
                let l = a.pop().expect("two args");
                Ok(SymValue::Data(Expr::binary(BinaryOp::Min, l, r)))
            }
            "fmaxf" | "fmax" => {
                let mut a = data_args(self, 2)?;
                let r = a.pop().expect("two args");
                let l = a.pop().expect("two args");
                Ok(SymValue::Data(Expr::binary(BinaryOp::Max, l, r)))
            }
            "hypotf" | "hypot" => {
                let mut a = data_args(self, 2)?;
                let r = a.pop().expect("two args");
                let l = a.pop().expect("two args");
                let sum = Expr::binary(
                    BinaryOp::Add,
                    Expr::binary(BinaryOp::Mul, l.clone(), l),
                    Expr::binary(BinaryOp::Mul, r.clone(), r),
                );
                Ok(SymValue::Data(Expr::unary(UnaryOp::Sqrt, sum)))
            }
            other => Err(SymExecError::new(
                K::UnsupportedCall,
                format!("unsupported call `{other}` (supported: sqrtf, fabsf, fminf, fmaxf, hypotf)"),
                span,
            )),
        }
    }

    /// Enforce [`MAX_EXPR_NODES`] on a data expression about to be stored.
    fn budget_expr(&self, e: &Expr, span: Span) -> Result<(), SymExecError> {
        if expr_nodes_capped(e, MAX_EXPR_NODES) > MAX_EXPR_NODES {
            return Err(SymExecError::new(
                K::SymbolicBlowup,
                format!(
                    "symbolic expression exceeds {MAX_EXPR_NODES} nodes (self-referential accumulation in an unrolled loop?)"
                ),
                span,
            ));
        }
        Ok(())
    }

    fn budget_value(&self, v: &SymValue, span: Span) -> Result<(), SymExecError> {
        match v {
            SymValue::Data(e) => self.budget_expr(e, span),
            _ => Ok(()),
        }
    }

    fn to_data(&self, v: SymValue, span: Span) -> Result<Expr, SymExecError> {
        match v {
            SymValue::Data(e) => Ok(e),
            SymValue::Num(v) => Ok(Expr::constant(v)),
            SymValue::Index(_) => Err(SymExecError::new(
                K::IndexAsData,
                "a spatial index is used as a data value; results must not depend on position",
                span,
            )),
            SymValue::Dim { .. } => Err(SymExecError::new(
                K::IndexAsData,
                "a frame dimension is used as a data value",
                span,
            )),
        }
    }
}

fn is_comparison(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

fn position_dependent_cmp(span: Span) -> SymExecError {
    SymExecError::new(
        K::PositionDependentBranch,
        "comparison on a spatial index makes the result position-dependent",
        span,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_str;
    use crate::error::SymExecErrorKind;

    fn err_kind(src: &str) -> SymExecErrorKind {
        compile_str(src).unwrap_err().kind
    }

    const BLUR_1D: &str = r#"
#pragma isl iterations 8
void blur(const float in[N], float out[N]) {
    for (int i = 0; i < N; i++)
        out[i] = (in[i-1] + 2.0f*in[i] + in[i+1]) / 4.0f;
}
"#;

    #[test]
    fn blur_1d_pattern() {
        let (p, info) = compile_str(BLUR_1D).unwrap();
        assert_eq!(p.rank(), 1);
        assert_eq!(p.radius(), 1);
        assert_eq!(info.iterations, Some(8));
        let f = p.dynamic_fields()[0];
        let reads = p.update(f).unwrap().reads();
        assert_eq!(
            reads,
            vec![
                (f, Offset::d1(-1)),
                (f, Offset::d1(0)),
                (f, Offset::d1(1)),
            ]
        );
    }

    #[test]
    fn jacobi_2d_offsets() {
        let (p, _) = compile_str(
            r#"void j(const float in[H][W], float out[H][W]) {
                for (int y = 1; y < H - 1; y++)
                    for (int x = 1; x < W - 1; x++)
                        out[y][x] = (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1]) * 0.25f;
            }"#,
        )
        .unwrap();
        let f = p.dynamic_fields()[0];
        let reads = p.update(f).unwrap().reads();
        assert_eq!(reads.len(), 4);
        assert!(reads.contains(&(f, Offset::d2(0, -1))));
        assert!(reads.contains(&(f, Offset::d2(0, 1))));
        assert!(reads.contains(&(f, Offset::d2(-1, 0))));
        assert!(reads.contains(&(f, Offset::d2(1, 0))));
    }

    #[test]
    fn constant_trip_loop_unrolls() {
        let (p, _) = compile_str(
            r#"void conv(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    float acc = 0.0f;
                    for (int k = -1; k <= 1; k++)
                        acc += in[i + k];
                    out[i] = acc / 3.0f;
                }
            }"#,
        )
        .unwrap();
        let f = p.dynamic_fields()[0];
        assert_eq!(p.update(f).unwrap().reads().len(), 3);
        assert_eq!(p.radius(), 1);
    }

    #[test]
    fn scalar_temps_and_params() {
        let (p, _) = compile_str(
            r#"#pragma isl param tau 0.25
            void relax(const float u[H][W], float u_out[H][W], float tau) {
                for (int y = 0; y < H; y++)
                    for (int x = 0; x < W; x++) {
                        float lap = u[y-1][x] + u[y+1][x] + u[y][x-1] + u[y][x+1] - 4.0f*u[y][x];
                        u_out[y][x] = u[y][x] + tau * lap;
                    }
            }"#,
        )
        .unwrap();
        assert_eq!(p.params().len(), 1);
        assert_eq!(p.params()[0].default, 0.25);
        assert_eq!(p.radius(), 1);
    }

    #[test]
    fn static_field_supported() {
        let (p, _) = compile_str(
            r#"void fid(const float u[H][W], const float g[H][W], float u_out[H][W]) {
                for (int y = 0; y < H; y++)
                    for (int x = 0; x < W; x++)
                        u_out[y][x] = 0.5f * u[y][x] + 0.5f * g[y][x];
            }"#,
        )
        .unwrap();
        assert_eq!(p.static_fields().len(), 1);
        assert_eq!(p.dynamic_fields().len(), 1);
    }

    #[test]
    fn two_separate_nests_allowed() {
        let (p, _) = compile_str(
            r#"void two(const float a[H][W], const float b[H][W],
                       float a_out[H][W], float b_out[H][W]) {
                for (int y = 0; y < H; y++)
                    for (int x = 0; x < W; x++)
                        a_out[y][x] = b[y][x];
                for (int y = 0; y < H; y++)
                    for (int x = 0; x < W; x++)
                        b_out[y][x] = a[y][x];
            }"#,
        )
        .unwrap();
        assert_eq!(p.dynamic_fields().len(), 2);
    }

    #[test]
    fn data_branch_becomes_select() {
        let (p, _) = compile_str(
            r#"void clamp(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    float v = in[i];
                    if (v > 1.0f)
                        v = 1.0f;
                    out[i] = v;
                }
            }"#,
        )
        .unwrap();
        let f = p.dynamic_fields()[0];
        let s = p.update(f).unwrap().to_string();
        assert!(s.contains("sel("), "expected a select, got {s}");
    }

    #[test]
    fn ternary_becomes_select() {
        let (p, _) = compile_str(
            r#"void t(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++)
                    out[i] = in[i] < 0.0f ? 0.0f : in[i];
            }"#,
        )
        .unwrap();
        let f = p.dynamic_fields()[0];
        assert!(p.update(f).unwrap().to_string().contains("sel("));
    }

    // --- property violations ------------------------------------------------

    #[test]
    fn scaled_index_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[2*i];
            }",
        );
        assert_eq!(k, SymExecErrorKind::NonAffineIndex);
    }

    #[test]
    fn absolute_index_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[5];
            }",
        );
        assert_eq!(k, SymExecErrorKind::AbsoluteIndex);
    }

    #[test]
    fn transposed_access_rejected() {
        let k = err_kind(
            "void f(const float in[H][W], float out[H][W]) {
                for (int y = 0; y < H; y++)
                    for (int x = 0; x < W; x++)
                        out[y][x] = in[x][y];
            }",
        );
        assert_eq!(k, SymExecErrorKind::NonAffineIndex);
    }

    #[test]
    fn output_read_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = out[i-1] + in[i];
            }",
        );
        assert_eq!(k, SymExecErrorKind::OutputRead);
    }

    #[test]
    fn data_dependent_index_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[i + in[i]];
            }",
        );
        assert_eq!(k, SymExecErrorKind::DataDependentIndex);
    }

    #[test]
    fn position_dependent_branch_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    if (i < 3)
                        out[i] = in[i];
                    else
                        out[i] = in[i-1];
                }
            }",
        );
        assert_eq!(k, SymExecErrorKind::PositionDependentBranch);
    }

    #[test]
    fn index_as_data_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[i] + i;
            }",
        );
        assert_eq!(k, SymExecErrorKind::DataDependentIndex);
    }

    #[test]
    fn write_off_center_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i+1] = in[i];
            }",
        );
        assert_eq!(k, SymExecErrorKind::WriteNotAtCenter);
    }

    #[test]
    fn missing_output_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) { float t = in[i]; }
            }",
        );
        assert_eq!(k, SymExecErrorKind::MissingOutput);
    }

    #[test]
    fn double_write_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) { out[i] = in[i]; out[i] = in[i-1]; }
            }",
        );
        assert_eq!(k, SymExecErrorKind::DoubleWrite);
    }

    #[test]
    fn incomplete_nest_rejected() {
        let k = err_kind(
            "void f(const float in[H][W], float out[H][W]) {
                for (int y = 0; y < H; y++) { float t = 0.0f; }
            }",
        );
        assert_eq!(k, SymExecErrorKind::IncompleteLoopNest);
    }

    #[test]
    fn huge_constant_loop_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    float acc = 0.0f;
                    for (int k = 0; k < 1000; k++) acc += in[i];
                    out[i] = acc;
                }
            }",
        );
        assert_eq!(k, SymExecErrorKind::TripTooLarge);
    }

    #[test]
    fn unsupported_call_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = expf(in[i]);
            }",
        );
        assert_eq!(k, SymExecErrorKind::UnsupportedCall);
    }

    #[test]
    fn conditional_output_write_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    if (in[i] > 0.0f)
                        out[i] = in[i];
                }
            }",
        );
        assert_eq!(k, SymExecErrorKind::MissingOutput);
    }

    #[test]
    fn axis_rebound_rejected() {
        let k = err_kind(
            "void f(const float in[H][W], float out[H][W]) {
                for (int y = 0; y < H; y++)
                    for (int y2 = 0; y2 < H; y2++)
                        out[y][y2] = in[y][y2];
            }",
        );
        assert_eq!(k, SymExecErrorKind::AxisRebound);
    }

    #[test]
    fn rem_on_data_rejected() {
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[i] % 2.0f;
            }",
        );
        assert_eq!(k, SymExecErrorKind::UnsupportedOp);
    }

    #[test]
    fn self_doubling_accumulator_rejected() {
        // `t = t + t` doubles the symbolic tree every unrolled trip; without
        // the node budget this exhausts memory instead of erroring.
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    float t = in[i];
                    for (int k = 0; k < 60; k++) t = t + t;
                    out[i] = t;
                }
            }",
        );
        assert_eq!(k, SymExecErrorKind::SymbolicBlowup);
    }

    #[test]
    fn nested_constant_loops_hit_step_budget() {
        // Each loop is within MAX_UNROLL, but the nest multiplies: the step
        // budget has to catch it, in bounded time.
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) {
                    float t = 0.0f;
                    for (int a = 0; a < 60; a++)
                      for (int b = 0; b < 60; b++)
                        for (int c = 0; c < 60; c++)
                          t = 0.0f;
                    out[i] = t + in[i];
                }
            }",
        );
        assert_eq!(k, SymExecErrorKind::TripTooLarge);
    }

    #[test]
    fn huge_offset_rejected_not_truncated() {
        // 2^32 narrows to 0 as i32 — before the bound this was silently
        // accepted as a centre read.
        let k = err_kind(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[i + 4294967296];
            }",
        );
        assert_eq!(k, SymExecErrorKind::OffsetTooLarge);
    }

    #[test]
    fn halo_sized_offsets_still_accepted() {
        let (p, _) = compile_str(
            "void f(const float in[N], float out[N]) {
                for (int i = 0; i < N; i++) out[i] = in[i - 8] + in[i + 8];
            }",
        )
        .unwrap();
        assert_eq!(p.radius(), 8);
    }

    #[test]
    fn chambolle_like_kernel_extracts() {
        let (p, info) = compile_str(
            r#"
#pragma isl iterations 10
#pragma isl param tau 0.25
#pragma isl param lambda 0.1
void chambolle(const float px[H][W], const float py[H][W], const float g[H][W],
               float px_out[H][W], float py_out[H][W], float tau, float lambda) {
    for (int y = 0; y < H; y++) {
        for (int x = 0; x < W; x++) {
            float div_c = px[y][x] - px[y][x-1] + py[y][x] - py[y-1][x];
            float div_r = px[y][x+1] - px[y][x] + py[y][x+1] - py[y-1][x+1];
            float div_d = px[y+1][x] - px[y+1][x-1] + py[y+1][x] - py[y][x];
            float u_c = div_c - g[y][x] / lambda;
            float u_r = div_r - g[y][x+1] / lambda;
            float u_d = div_d - g[y+1][x] / lambda;
            float gx = u_r - u_c;
            float gy = u_d - u_c;
            float nrm = sqrtf(gx*gx + gy*gy);
            float den = 1.0f + tau * nrm;
            px_out[y][x] = (px[y][x] + tau * gx) / den;
            py_out[y][x] = (py[y][x] + tau * gy) / den;
        }
    }
}
"#,
        )
        .unwrap();
        assert_eq!(p.dynamic_fields().len(), 2);
        assert_eq!(p.static_fields().len(), 1);
        assert_eq!(p.radius(), 1);
        assert_eq!(p.params().len(), 2);
        assert_eq!(info.iterations, Some(10));
        // Both updates must involve sqrt (the gradient norm).
        for f in p.dynamic_fields() {
            assert!(p.update(f).unwrap().to_string().contains("sqrt"));
        }
    }
}
