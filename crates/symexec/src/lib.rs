//! # isl-symexec — symbolic execution of ISL kernels
//!
//! Implements the dependency-analysis phase of the DAC 2013 flow
//! (Section 3.2): the C kernel is *executed symbolically* — variables hold
//! expressions instead of numbers — for **one generic element of one
//! iteration**, which suffices because of the two ISL properties the paper
//! leans on:
//!
//! * **translational invariance** — the dependency schema of every element
//!   is a translation of every other's, so tracking one element yields the
//!   whole frame's equations. The executor *verifies* this instead of
//!   assuming it: every array index must be `loop_var + constant`; any
//!   data-dependent or position-dependent indexing is rejected with a
//!   diagnostic.
//! * **iteration stationarity** — dependencies between `f_{i+1}` and `f_i`
//!   are the same for every `i`, so one symbolic iteration is the building
//!   block for cones of any depth (cone unrolling happens in `isl-ir`).
//!
//! Spatial loops (bounds involving frame dimensions) are executed **once**
//! with the loop variable bound to a symbolic axis; constant-trip loops
//! (e.g. an inner loop over kernel taps) are **unrolled**; `if`/ternaries on
//! data become hardware selects.
//!
//! ```
//! use isl_symexec::compile_str;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (pattern, info) = compile_str(r#"
//! #pragma isl iterations 10
//! void blur(const float in[H][W], float out[H][W]) {
//!     for (int y = 0; y < H; y++)
//!         for (int x = 0; x < W; x++)
//!             out[y][x] = (in[y][x-1] + 2.0f*in[y][x] + in[y][x+1]) / 4.0f;
//! }
//! "#)?;
//! assert_eq!(pattern.radius(), 1);
//! assert_eq!(info.iterations, Some(10));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;
mod value;

pub use error::{SymExecError, SymExecErrorKind};
pub use exec::extract;

use isl_frontend::{analyze, parse, KernelInfo};
use isl_ir::StencilPattern;

/// Parse, analyse and symbolically execute a kernel source string, producing
/// the stencil pattern plus the signature-level kernel info (iterations,
/// border hint, parameter defaults).
///
/// # Errors
///
/// Returns [`SymExecError`] on any lexical, syntactic, semantic or
/// symbolic-execution failure; the error carries a source location.
pub fn compile_str(source: &str) -> Result<(StencilPattern, KernelInfo), SymExecError> {
    let kernel = parse(source).map_err(SymExecError::from_frontend)?;
    let info = analyze(&kernel).map_err(SymExecError::from_frontend)?;
    let pattern = extract(&kernel, &info)?;
    Ok((pattern, info))
}
