//! Symbolic-execution error type.

use std::error::Error;
use std::fmt;

use isl_frontend::{FrontendError, Span};

/// Classification of symbolic-execution failures — each corresponds to a
/// property the target class of algorithms must satisfy (Section 2 of the
/// paper) or to a supported-subset limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymExecErrorKind {
    /// An error reported by the frontend (lexer/parser/sema).
    Frontend,
    /// An array index is not `loop_var + constant` — translational
    /// invariance does not hold.
    NonAffineIndex,
    /// An array index is a bare constant — an absolute (position-pinned)
    /// access, which breaks translational invariance.
    AbsoluteIndex,
    /// An array index depends on data values.
    DataDependentIndex,
    /// The kernel reads an *output* array inside the iteration
    /// (Gauss-Seidel style updates are not ISLs in the paper's sense).
    OutputRead,
    /// A spatial index variable is used as a data value — the result would
    /// be position-dependent.
    IndexAsData,
    /// A branch condition depends on the spatial position.
    PositionDependentBranch,
    /// Unsupported function call.
    UnsupportedCall,
    /// Unsupported operation on data values (e.g. `%`).
    UnsupportedOp,
    /// The spatial loop nest does not bind every axis of the frame rank.
    IncompleteLoopNest,
    /// Two nested spatial loops bind the same axis.
    AxisRebound,
    /// An output element is written somewhere other than the loop point
    /// `out[y][x]`.
    WriteNotAtCenter,
    /// A dynamic field's output array is never written.
    MissingOutput,
    /// An output element is written more than once per iteration.
    DoubleWrite,
    /// A constant-trip loop exceeds the unrolling limit.
    TripTooLarge,
    /// A loop bound could not be classified as spatial or constant.
    BadBound,
    /// Reference to an undefined variable.
    UnknownIdent,
    /// The extracted pattern failed `StencilPattern` validation (e.g.
    /// domain-narrowness bound exceeded).
    InvalidPattern,
    /// A symbolic data expression grew beyond the node budget (e.g.
    /// repeated self-referential assignment in an unrolled loop doubles
    /// the expression every trip).
    SymbolicBlowup,
    /// A stencil offset's magnitude is beyond any plausible halo.
    OffsetTooLarge,
}

impl fmt::Display for SymExecErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SymExecErrorKind::Frontend => "frontend error",
            SymExecErrorKind::NonAffineIndex => "non-affine array index",
            SymExecErrorKind::AbsoluteIndex => "absolute array index",
            SymExecErrorKind::DataDependentIndex => "data-dependent array index",
            SymExecErrorKind::OutputRead => "read of an output array",
            SymExecErrorKind::IndexAsData => "spatial index used as data",
            SymExecErrorKind::PositionDependentBranch => "position-dependent branch",
            SymExecErrorKind::UnsupportedCall => "unsupported function call",
            SymExecErrorKind::UnsupportedOp => "unsupported operation",
            SymExecErrorKind::IncompleteLoopNest => "incomplete spatial loop nest",
            SymExecErrorKind::AxisRebound => "axis bound twice",
            SymExecErrorKind::WriteNotAtCenter => "output write not at the loop point",
            SymExecErrorKind::MissingOutput => "missing output write",
            SymExecErrorKind::DoubleWrite => "output written twice",
            SymExecErrorKind::TripTooLarge => "constant loop too long to unroll",
            SymExecErrorKind::BadBound => "unclassifiable loop bound",
            SymExecErrorKind::UnknownIdent => "unknown identifier",
            SymExecErrorKind::InvalidPattern => "extracted pattern is invalid",
            SymExecErrorKind::SymbolicBlowup => "symbolic expression too large",
            SymExecErrorKind::OffsetTooLarge => "stencil offset too large",
        };
        f.write_str(s)
    }
}

/// A symbolic-execution failure with location and explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct SymExecError {
    /// Failure classification.
    pub kind: SymExecErrorKind,
    /// Human-oriented explanation.
    pub message: String,
    /// Source location (1-based line/column), when known.
    pub span: Span,
}

impl SymExecError {
    /// Build an error.
    pub fn new(kind: SymExecErrorKind, message: impl Into<String>, span: Span) -> Self {
        SymExecError {
            kind,
            message: message.into(),
            span,
        }
    }

    /// Wrap a frontend error.
    pub fn from_frontend(e: FrontendError) -> Self {
        SymExecError {
            kind: SymExecErrorKind::Frontend,
            message: e.to_string(),
            span: e.span,
        }
    }
}

impl fmt::Display for SymExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}: {}", self.span, self.kind, self.message)
    }
}

impl Error for SymExecError {}
