//! Symbolic values and index arithmetic.

use isl_ir::Expr;

/// An affine index form `Σ coeff[a] · axis_a + offset`.
///
/// Translational invariance requires every array index to reduce to exactly
/// one axis with coefficient 1 plus a constant; the executor builds general
/// affine forms so it can *diagnose* violations precisely (e.g. `2*x` or
/// `x + y`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexVal {
    /// Coefficient per spatial axis (0 = x/innermost).
    pub coeff: [i64; 3],
    /// Constant displacement.
    pub offset: i64,
}

impl IndexVal {
    /// The index form of a spatial loop variable bound to `axis`.
    pub fn axis(axis: usize) -> Self {
        let mut coeff = [0i64; 3];
        coeff[axis] = 1;
        IndexVal { coeff, offset: 0 }
    }

    /// A pure-constant index.
    pub fn constant(k: i64) -> Self {
        IndexVal { coeff: [0; 3], offset: k }
    }

    /// If this form is `axis_a + offset` (single unit coefficient), return
    /// `(a, offset)`; `None` otherwise (including pure constants).
    pub fn as_unit_axis(&self) -> Option<(usize, i64)> {
        let mut found = None;
        for (a, &c) in self.coeff.iter().enumerate() {
            match c {
                0 => {}
                1 if found.is_none() => found = Some(a),
                _ => return None,
            }
        }
        found.map(|a| (a, self.offset))
    }

    /// Whether the form uses no axis at all.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_constant(&self) -> bool {
        self.coeff == [0; 3]
    }

    fn zip(self, rhs: IndexVal, f: impl Fn(i64, i64) -> i64) -> IndexVal {
        IndexVal {
            coeff: [
                f(self.coeff[0], rhs.coeff[0]),
                f(self.coeff[1], rhs.coeff[1]),
                f(self.coeff[2], rhs.coeff[2]),
            ],
            offset: f(self.offset, rhs.offset),
        }
    }

    /// Componentwise sum.
    pub fn add(self, rhs: IndexVal) -> IndexVal {
        self.zip(rhs, |a, b| a + b)
    }

    /// Componentwise difference.
    pub fn sub(self, rhs: IndexVal) -> IndexVal {
        self.zip(rhs, |a, b| a - b)
    }

    /// Scale by a constant.
    pub fn scale(self, k: i64) -> IndexVal {
        IndexVal {
            coeff: [self.coeff[0] * k, self.coeff[1] * k, self.coeff[2] * k],
            offset: self.offset * k,
        }
    }
}

/// A symbolic value flowing through the executor.
#[derive(Debug, Clone, PartialEq)]
pub enum SymValue {
    /// A numeric literal — context decides whether it acts as an integer
    /// (index arithmetic, loop bounds) or as data (a constant operand).
    Num(f64),
    /// An affine spatial index.
    Index(IndexVal),
    /// A frame-dimension size with a constant adjustment, e.g. `H - 1`;
    /// only meaningful inside loop bounds.
    Dim {
        /// Which dimension (name as declared).
        name: String,
        /// Constant adjustment.
        offset: i64,
    },
    /// A data expression.
    Data(Expr),
}

impl SymValue {
    /// Integer view of a numeric literal, when it is integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SymValue::Num(v) if v.fract() == 0.0 && v.abs() < 9e15 => Some(*v as i64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_form() {
        let x = IndexVal::axis(0);
        assert_eq!(x.as_unit_axis(), Some((0, 0)));
        let shifted = x.add(IndexVal::constant(-2));
        assert_eq!(shifted.as_unit_axis(), Some((0, -2)));
    }

    #[test]
    fn non_unit_forms_rejected() {
        let x = IndexVal::axis(0);
        assert_eq!(x.scale(2).as_unit_axis(), None);
        let y = IndexVal::axis(1);
        assert_eq!(x.add(y).as_unit_axis(), None);
        assert_eq!(IndexVal::constant(3).as_unit_axis(), None);
        assert!(IndexVal::constant(3).is_constant());
    }

    #[test]
    fn sub_cancels_axis() {
        let x = IndexVal::axis(0);
        let d = x.sub(x);
        assert!(d.is_constant());
        assert_eq!(d.offset, 0);
    }

    #[test]
    fn num_as_int() {
        assert_eq!(SymValue::Num(3.0).as_int(), Some(3));
        assert_eq!(SymValue::Num(2.5).as_int(), None);
        assert_eq!(SymValue::Index(IndexVal::axis(0)).as_int(), None);
    }
}
