//! Fuzzing the persistence layer: random store images, random corruption.
//!
//! The `isl-persist` on-disk format promises two things that are easy to
//! claim and easy to get wrong:
//!
//! 1. **Exact round trips** — an image written by
//!    [`isl_persist::save_bytes`] loads back bit-identically through
//!    [`isl_persist::load_bytes`], with zero records skipped.
//! 2. **Total, honest loads** — *any* byte sequence loads without a
//!    panic, every surviving record is one that was actually written
//!    (checksum-verified, never a spliced hybrid), and everything else is
//!    *counted* as skipped rather than silently dropped.
//!
//! [`run_persist_campaign`] turns those promises into a standing
//! adversarial process: each iteration builds a random record set, checks
//! the clean round trip, then attacks the image with bit flips, byte
//! runs of garbage, truncation and duplicated regions, and re-loads. A
//! violation is caught (panics included, via `catch_unwind`), minimised
//! by byte-range delta-debugging and reported as a
//! replayable [`PersistFailure`] — the fixture files under
//! `tests/corpus/persist/` replay through CI forever after
//! ([`write_fixtures`] generates the canonical set).

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use isl_persist::{load_bytes, save_bytes, LoadReport, RawRecord};

use crate::rng::Rng;

/// A minimised persistence finding: the corrupted image plus what went
/// wrong when it was loaded.
#[derive(Debug, Clone)]
pub struct PersistFailure {
    /// Name for the persisted fixture (`shrunk-<seed>-<iteration>`).
    pub name: String,
    /// What the load did wrong (panic message or invariant violation).
    pub detail: String,
    /// The (shrunk) image that triggers it — replay with
    /// [`replay_image`].
    pub image: Vec<u8>,
}

/// Outcome tally of a persistence campaign ([`run_persist_campaign`]).
#[derive(Debug, Clone, Default)]
pub struct PersistCampaignReport {
    /// Iterations attempted.
    pub iterations: usize,
    /// Clean images that round-tripped bit-identically.
    pub round_trips: usize,
    /// Corrupted images loaded (each iteration attacks several times).
    pub attacks: usize,
    /// Corrupt records skipped — and counted — across all attacked loads.
    pub records_skipped: usize,
    /// Version-bump loads that correctly invalidated wholesale.
    pub invalidations: usize,
    /// Minimised violations (empty on a healthy format).
    pub failures: Vec<PersistFailure>,
}

/// The app version the campaign stamps its images with (arbitrary but
/// fixed so fixtures stay replayable).
pub const FUZZ_APP_VERSION: u64 = 0xF022;

fn random_records(rng: &mut Rng) -> Vec<RawRecord> {
    let n = 1 + rng.below(8);
    (0..n)
        .map(|i| {
            // An index prefix keeps keys unique, so last-wins dedup
            // cannot legitimately drop a record during the round trip.
            let mut key = vec![i as u8];
            for _ in 0..rng.below(32) {
                key.push(rng.u64() as u8);
            }
            let value = (0..rng.below(160)).map(|_| rng.u64() as u8).collect();
            RawRecord {
                kind: rng.below(7) as u8,
                stamp: i as u64,
                key,
                value,
            }
        })
        .collect()
}

fn by_key(records: &[RawRecord]) -> BTreeMap<(u8, Vec<u8>), Vec<u8>> {
    records
        .iter()
        .map(|r| ((r.kind, r.key.clone()), r.value.clone()))
        .collect()
}

/// Load `image` and check the corruption contract against the records
/// that were originally written: the load returns (no panic), and every
/// survivor is bit-identical to an original record. Returns the load
/// report on success, a violation message on failure.
///
/// # Errors
///
/// A human-readable description of the violated invariant.
pub fn replay_image(
    image: &[u8],
    originals: &BTreeMap<(u8, Vec<u8>), Vec<u8>>,
) -> Result<LoadReport, String> {
    let report = catch_unwind(AssertUnwindSafe(|| load_bytes(image, FUZZ_APP_VERSION)))
        .map_err(|p| {
            let msg = p
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            format!("load_bytes panicked: {msg}")
        })?;
    for r in &report.records {
        match originals.get(&(r.kind, r.key.clone())) {
            Some(v) if *v == r.value => {}
            Some(_) => {
                return Err(format!(
                    "survivor (kind {}, key {:02x?}) has a value never written",
                    r.kind, r.key
                ))
            }
            None => {
                return Err(format!(
                    "survivor (kind {}, key {:02x?}) was never written at all",
                    r.kind, r.key
                ))
            }
        }
    }
    Ok(report)
}

/// One random corruption of `image` in place.
fn attack(rng: &mut Rng, image: &mut Vec<u8>) {
    if image.is_empty() {
        return;
    }
    match rng.below(4) {
        // Flip 1–8 random bits anywhere in the image.
        0 => {
            for _ in 0..=rng.below(8) {
                let at = rng.below(image.len());
                image[at] ^= 1 << rng.below(8);
            }
        }
        // Overwrite a run with garbage.
        1 => {
            let at = rng.below(image.len());
            let run = 1 + rng.below(24.min(image.len() - at));
            for b in &mut image[at..at + run] {
                *b = rng.u64() as u8;
            }
        }
        // Truncate mid-record.
        2 => image.truncate(rng.below(image.len())),
        // Duplicate a region (stutters record magics past the scanner).
        3 => {
            let at = rng.below(image.len());
            let run = 1 + rng.below(16.min(image.len() - at));
            let dup: Vec<u8> = image[at..at + run].to_vec();
            let insert = rng.below(image.len());
            image.splice(insert..insert, dup);
        }
        _ => unreachable!(),
    }
}

/// Byte-range delta-debugging: repeatedly try deleting chunks of the
/// image, keeping each deletion only while `failing` still holds, until a
/// full pass removes nothing. Bounded by `budget` predicate evaluations.
fn shrink_image(mut image: Vec<u8>, mut budget: usize, failing: impl Fn(&[u8]) -> bool) -> Vec<u8> {
    let mut chunk = (image.len() / 2).max(1);
    while budget > 0 {
        let mut removed = false;
        let mut at = 0;
        while at < image.len() && budget > 0 {
            let end = (at + chunk).min(image.len());
            let mut candidate = Vec::with_capacity(image.len() - (end - at));
            candidate.extend_from_slice(&image[..at]);
            candidate.extend_from_slice(&image[end..]);
            budget -= 1;
            if failing(&candidate) {
                image = candidate;
                removed = true;
            } else {
                at = end;
            }
        }
        if !removed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    image
}

/// Run a seeded persistence campaign: `iterations` random record sets,
/// each round-tripped clean, version-bumped, and attacked with random
/// corruption several times. Violations are shrunk (`shrink_budget`
/// predicate evaluations each; 0 keeps raw images) and reported.
pub fn run_persist_campaign(
    iterations: usize,
    seed: u64,
    shrink_budget: usize,
) -> PersistCampaignReport {
    let _span = isl_telemetry::span("fuzz", "persist campaign");
    let mut rng = Rng::new(seed);
    let mut report = PersistCampaignReport::default();
    for i in 0..iterations {
        report.iterations += 1;
        isl_telemetry::add("fuzz.persist.iters", 1);
        let records = random_records(&mut rng);
        let originals = by_key(&records);
        let clean = save_bytes(FUZZ_APP_VERSION, &records);

        // 1. Clean round trip: bit-identical, nothing skipped.
        match replay_image(&clean, &originals) {
            Ok(r) if r.records.len() == originals.len() && r.skipped_corrupt == 0 => {
                report.round_trips += 1;
            }
            Ok(r) => report.failures.push(PersistFailure {
                name: format!("shrunk-{seed:#x}-{i}-roundtrip"),
                detail: format!(
                    "clean image lost records: {} of {} survived, {} skipped",
                    r.records.len(),
                    originals.len(),
                    r.skipped_corrupt
                ),
                image: clean.clone(),
            }),
            Err(detail) => report.failures.push(PersistFailure {
                name: format!("shrunk-{seed:#x}-{i}-roundtrip"),
                detail,
                image: clean.clone(),
            }),
        }

        // 2. Version bump invalidates wholesale — never a partial load.
        let bumped = load_bytes(&clean, FUZZ_APP_VERSION + 1);
        if bumped.invalidated && bumped.records.is_empty() {
            report.invalidations += 1;
        } else {
            report.failures.push(PersistFailure {
                name: format!("shrunk-{seed:#x}-{i}-version"),
                detail: format!(
                    "version bump leaked {} records (invalidated: {})",
                    bumped.records.len(),
                    bumped.invalidated
                ),
                image: clean.clone(),
            });
        }

        // 3. Random corruption: survivors must be honest, panics are
        //    findings.
        for _ in 0..3 {
            report.attacks += 1;
            let mut image = clean.clone();
            attack(&mut rng, &mut image);
            match replay_image(&image, &originals) {
                Ok(r) => report.records_skipped += r.skipped_corrupt,
                Err(detail) => {
                    let shrunk = if shrink_budget > 0 {
                        shrink_image(image.clone(), shrink_budget, |img| {
                            replay_image(img, &originals).is_err()
                        })
                    } else {
                        image
                    };
                    isl_telemetry::add("fuzz.persist.failures", 1);
                    report.failures.push(PersistFailure {
                        name: format!("shrunk-{seed:#x}-{i}-corrupt"),
                        detail,
                        image: shrunk,
                    });
                }
            }
        }
    }
    report
}

/// Write the canonical corruption fixtures into `dir`: one small store
/// image per attack family, each expected to load with the survivor
/// counts recorded in `MANIFEST.txt` (`<file> <records> <survivors>` per
/// line). The tests crate replays these in CI; regenerate with
/// `isl-fuzz persist --write-fixtures DIR` after a format-version bump.
///
/// # Errors
///
/// A message naming the file that could not be written.
pub fn write_fixtures(dir: &std::path::Path) -> Result<Vec<String>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    // One record per artifact kind the core store persists (1–6), with
    // deterministic pseudo-random payloads: rich enough that every attack
    // family can lose *some* records while others survive.
    let mut rng = Rng::new(0x1511_F1EC);
    let records: Vec<RawRecord> = (1u8..=6)
        .map(|kind| RawRecord {
            kind,
            stamp: u64::from(kind),
            key: (0..8 + usize::from(kind)).map(|_| rng.u64() as u8).collect(),
            value: (0..24 * usize::from(kind)).map(|_| rng.u64() as u8).collect(),
        })
        .collect();
    let originals = by_key(&records);
    let clean = save_bytes(FUZZ_APP_VERSION, &records);
    let total = originals.len();

    let mut fixtures: Vec<(String, Vec<u8>)> = vec![("clean".into(), clean.clone())];
    // One deterministic image per attack family, derived from the same
    // clean image so the manifest's survivor counts stay meaningful.
    for (name, kick) in [
        ("bit-flips", 0usize),
        ("garbage-run", 1),
        ("truncated", 2),
        ("duplicated-region", 3),
    ] {
        // Re-seed per family so editing one family never shifts another.
        let mut frng = Rng::new(0x1511_F1EC ^ kick as u64);
        let mut image = clean.clone();
        loop {
            attack(&mut frng, &mut image);
            // Keep attacking until this family's image actually loses a
            // record, so every fixture exercises the skip path.
            let r = load_bytes(&image, FUZZ_APP_VERSION);
            if r.records.len() < total || r.skipped_corrupt > 0 {
                break;
            }
            image = clean.clone();
        }
        fixtures.push((name.into(), image));
    }

    let mut manifest = String::new();
    let mut written = Vec::new();
    for (name, image) in &fixtures {
        let report = replay_image(image, &originals)
            .map_err(|e| format!("fixture {name} violates the contract: {e}"))?;
        let file = format!("{name}.islstore");
        std::fs::write(dir.join(&file), image)
            .map_err(|e| format!("write {file}: {e}"))?;
        manifest.push_str(&format!(
            "{file} {total} {} {}\n",
            report.records.len(),
            report.skipped_corrupt
        ));
        written.push(file);
    }
    std::fs::write(dir.join("MANIFEST.txt"), &manifest)
        .map_err(|e| format!("write MANIFEST.txt: {e}"))?;
    Ok(written)
}

/// Replay every fixture in `dir` against its `MANIFEST.txt` expectations.
/// Returns the fixture names on success.
///
/// # Errors
///
/// A message naming the first fixture whose load panics, produces a
/// dishonest survivor count, or drifts from the manifest.
pub fn replay_fixtures(dir: &std::path::Path) -> Result<Vec<String>, String> {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.txt"))
        .map_err(|e| format!("read {}/MANIFEST.txt: {e}", dir.display()))?;
    let mut names = Vec::new();
    for line in manifest.lines().filter(|l| !l.trim().is_empty()) {
        let mut parts = line.split_whitespace();
        let (file, total, survivors, skipped) = (|| {
            Some((
                parts.next()?,
                parts.next()?.parse::<usize>().ok()?,
                parts.next()?.parse::<usize>().ok()?,
                parts.next()?.parse::<usize>().ok()?,
            ))
        })()
        .ok_or_else(|| format!("bad manifest line: {line:?}"))?;
        let image = std::fs::read(dir.join(file)).map_err(|e| format!("read {file}: {e}"))?;
        let report = catch_unwind(AssertUnwindSafe(|| load_bytes(&image, FUZZ_APP_VERSION)))
            .map_err(|_| format!("{file}: load_bytes panicked"))?;
        if report.records.len() != survivors || report.skipped_corrupt != skipped {
            return Err(format!(
                "{file}: expected {survivors}/{total} survivors ({skipped} skipped), \
                 got {}/{total} ({} skipped)",
                report.records.len(),
                report.skipped_corrupt
            ));
        }
        names.push(file.to_string());
    }
    if names.is_empty() {
        return Err(format!("no fixtures listed in {}/MANIFEST.txt", dir.display()));
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_persist_campaign_is_clean_and_deterministic() {
        let a = run_persist_campaign(40, 0xBADC0DE, 200);
        assert_eq!(a.iterations, 40);
        assert!(
            a.failures.is_empty(),
            "persistence violation: {} ({} bytes)",
            a.failures[0].detail,
            a.failures[0].image.len()
        );
        assert_eq!(a.round_trips, 40);
        assert_eq!(a.invalidations, 40);
        assert!(a.records_skipped > 0, "no attack ever hit a record");
        let b = run_persist_campaign(40, 0xBADC0DE, 200);
        assert_eq!(a.records_skipped, b.records_skipped);
    }

    #[test]
    fn shrinker_minimises_a_synthetic_failure() {
        // "Failure" = image still contains the byte 0x7F somewhere.
        let image: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        let shrunk = shrink_image(image, 10_000, |img| img.contains(&0x7F));
        assert_eq!(shrunk, vec![0x7F]);
    }

    #[test]
    fn fixtures_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("isl-fuzz-fixtures-{}", std::process::id()));
        let written = write_fixtures(&dir).unwrap();
        assert!(written.len() >= 5);
        let replayed = replay_fixtures(&dir).unwrap();
        assert_eq!(written, replayed);
        std::fs::remove_dir_all(&dir).ok();
    }
}
