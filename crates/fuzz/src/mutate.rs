//! Frontend robustness fuzzing: mutated and mangled source text.
//!
//! The differential fuzzer only ever feeds the frontend *mostly valid*
//! programs. This module attacks from the other side: it takes real kernel
//! sources, applies byte- and token-level mutations (flips, deletions,
//! duplications, dictionary splices, truncations) and asserts the frontend
//! **returns** for every input — a structured [`isl_frontend::FrontendError`]
//! or [`isl_symexec::SymExecError`] is fine, a panic is a finding.
//!
//! Caveat: `catch_unwind` cannot catch stack exhaustion, so unguarded
//! parser recursion would abort the process rather than show up in the
//! report — that failure mode is closed structurally by the parser's
//! nesting budget (`ErrorKind::NestingTooDeep`) and pinned by the frontend
//! unit tests.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// Tokens spliced into mutated sources: the grammar's own keywords plus
/// values chosen to stress numeric edges.
const DICTIONARY: [&str; 24] = [
    "for", "if", "else", "(", ")", "[", "]", "{", "}", ";", "float", "int",
    "void", "#pragma isl iterations 3", "?", ":", "+", "-", "*", "/",
    "1e308", "4294967296", "0.0f", "!",
];

/// A panicking input, preserved verbatim for triage.
#[derive(Debug, Clone)]
pub struct PanicCase {
    /// The exact source text that made the frontend panic.
    pub source: String,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// Outcome tally of one mutation campaign.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Inputs attempted.
    pub iterations: usize,
    /// Inputs the full pipeline accepted.
    pub compiled: usize,
    /// Inputs rejected with a structured error.
    pub rejected: usize,
    /// Inputs that made the frontend panic — always a bug.
    pub panics: Vec<PanicCase>,
}

fn mutate_once(rng: &mut Rng, src: &mut String) {
    let bytes = src.len();
    match rng.below(5) {
        0 if bytes > 0 => {
            // Flip one byte to a random printable character.
            let pos = rng.below(bytes);
            let ch = (0x20 + rng.below(0x5f)) as u8;
            let mut b = std::mem::take(src).into_bytes();
            b[pos] = ch;
            *src = String::from_utf8_lossy(&b).into_owned();
        }
        1 if bytes > 2 => {
            // Delete a short range.
            let start = rng.below(bytes - 1);
            let len = 1 + rng.below((bytes - start).min(16));
            let mut b = std::mem::take(src).into_bytes();
            b.drain(start..start + len);
            *src = String::from_utf8_lossy(&b).into_owned();
        }
        2 if bytes > 2 => {
            // Duplicate a short range in place.
            let start = rng.below(bytes - 1);
            let len = 1 + rng.below((bytes - start).min(16));
            let chunk: Vec<u8> = src.as_bytes()[start..start + len].to_vec();
            let mut b = std::mem::take(src).into_bytes();
            b.splice(start..start, chunk);
            *src = String::from_utf8_lossy(&b).into_owned();
        }
        3 => {
            // Splice a dictionary token at a random byte position.
            let tok = *rng.pick(&DICTIONARY);
            let pos = if bytes == 0 { 0 } else { rng.below(bytes) };
            let mut b = std::mem::take(src).into_bytes();
            b.splice(pos..pos, tok.bytes());
            *src = String::from_utf8_lossy(&b).into_owned();
        }
        _ if bytes > 1 => {
            // Truncate (byte-wise; lossy re-validation repairs any split
            // multi-byte character).
            let keep = rng.below(bytes);
            let mut b = std::mem::take(src).into_bytes();
            b.truncate(keep);
            *src = String::from_utf8_lossy(&b).into_owned();
        }
        _ => {}
    }
}

/// Run `iterations` mutated inputs derived from `seeds` through the full
/// frontend (`lex` → `parse` → `analyze` → symbolic execution).
///
/// The default panic hook is silenced for the duration of the campaign so
/// a million rejections do not flood stderr; it is restored before
/// returning.
pub fn fuzz_frontend(seeds: &[&str], iterations: usize, seed: u64) -> MutationReport {
    assert!(!seeds.is_empty(), "need at least one seed source");
    let mut rng = Rng::new(seed);
    let mut report = MutationReport::default();

    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    for _ in 0..iterations {
        let mut src = seeds[rng.below(seeds.len())].to_string();
        for _ in 0..1 + rng.below(4) {
            mutate_once(&mut rng, &mut src);
        }
        report.iterations += 1;
        match catch_unwind(AssertUnwindSafe(|| isl_symexec::compile_str(&src))) {
            Ok(Ok(_)) => report.compiled += 1,
            Ok(Err(_)) => report.rejected += 1,
            Err(payload) => {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                report.panics.push(PanicCase { source: src, message });
            }
        }
    }

    std::panic::set_hook(prev_hook);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutation_campaign_finds_no_panics_in_the_frontend() {
        let seeds: Vec<&str> = vec![
            isl_algorithms::gaussian::SOURCE,
            isl_algorithms::chambolle::SOURCE,
        ];
        let report = fuzz_frontend(&seeds, 300, 0xF00D);
        assert_eq!(report.iterations, 300);
        assert_eq!(
            report.compiled + report.rejected,
            300,
            "frontend panicked on: {:?}",
            report.panics.first().map(|p| &p.message)
        );
        assert!(report.panics.is_empty());
    }

    #[test]
    fn mutations_are_deterministic() {
        let seeds = vec!["void k(const float a[N], float a_out[N]) { }"];
        let a = fuzz_frontend(&seeds, 50, 7);
        let b = fuzz_frontend(&seeds, 50, 7);
        assert_eq!(a.compiled, b.compiled);
        assert_eq!(a.rejected, b.rejected);
    }
}
