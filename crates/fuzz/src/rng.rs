//! Deterministic random source for the fuzzer.
//!
//! A thin convenience layer over [`isl_sim::synthetic::SplitMix64`] — the
//! same generator that produces the repo's synthetic workload frames — so
//! every fuzzing campaign is exactly replayable from its 64-bit seed.

use isl_sim::synthetic::SplitMix64;

/// Seeded generator with the sampling helpers the fuzzer needs.
#[derive(Debug)]
pub struct Rng(SplitMix64);

impl Rng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    /// Next raw 64-bit word.
    pub fn u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.0.next_f64()
    }

    /// Uniform in `0..n` (`n` must be positive).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.u64() % n as u64) as usize
    }

    /// Uniform in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + (self.u64() % (hi - lo + 1) as u64) as i64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of `xs`.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(0xDEAD_BEEF);
        let mut b = Rng::new(0xDEAD_BEEF);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn helpers_stay_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(5) < 5);
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
